"""Packaging for the :mod:`repro` distribution.

Metadata lives here (not in a ``pyproject.toml`` build table) because
the offline environment lacks the ``wheel`` package, which modern
``pip install -e .`` (PEP 660) requires; ``python setup.py develop``
installs an editable egg-link without it.

Every subpackage is enumerated explicitly — ``find_packages`` silently
drops a package whose ``__init__.py`` goes missing, and an incomplete
wheel is exactly the kind of failure that only surfaces downstream.
The ``py.typed`` marker ships so type checkers consume the inline
annotations (PEP 561).
"""

import pathlib
import re

from setuptools import setup

_HERE = pathlib.Path(__file__).parent
_VERSION = re.search(
    r'__version__ = "([^"]+)"',
    (_HERE / "src" / "repro" / "_version.py").read_text(),
).group(1)

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.api",
    "repro.backend",
    "repro.core",
    "repro.data",
    "repro.distributed",
    "repro.experiments",
    "repro.hashing",
    "repro.join",
    "repro.mechanisms",
    "repro.privacy",
    "repro.reliability",
    "repro.service",
    "repro.sketches",
    "repro.transform",
]

setup(
    name="repro-ldp-join-sketch",
    version=_VERSION,
    description=(
        "Sketches-based join size estimation under local differential "
        "privacy (ICDE 2024 reproduction, grown into a sharded, "
        "multi-backend estimation library)"
    ),
    long_description=(_HERE / "README.md").read_text(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        "numba": ["numba>=0.58"],
        "test": ["pytest", "hypothesis"],
    },
    package_dir={"": "src"},
    packages=PACKAGES,
    package_data={"repro": ["py.typed"]},
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.experiments.cli:main",
            "repro-lint = repro.analysis.runner:main",
        ]
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Typing :: Typed",
    ],
)
