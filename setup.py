"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, which modern
``pip install -e .`` (PEP 660) requires; ``python setup.py develop``
installs an editable egg-link without it.  All project metadata lives in
``pyproject.toml``; this file only enables the legacy code path.
"""

from setuptools import setup

setup()
