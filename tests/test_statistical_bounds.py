"""Statistical tests of the paper's error bounds (Theorems 4 and 5).

These are not point-estimate checks but *bound* checks: the empirical
spread of the estimators must respect the variance bound of Theorem 4 and
the tail bound of Theorem 5.  Because the bounds are upper bounds, the
assertions are one-sided and therefore robust — a failure means the
implementation is noisier than the theory permits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchParams, build_sketch, encode_reports
from repro.hashing import HashPairs
from repro.join import FrequencyVector, exact_join_size

from .conftest import zipf_values


def run_estimates(a, b, params, runs, seed):
    """Collect `runs` independent Eq. 5 estimates and per-row estimators."""
    rng = np.random.default_rng(seed)
    medians, rows = [], []
    for _ in range(runs):
        pairs = HashPairs(params.k, params.m, rng)
        sa = build_sketch(encode_reports(a, params, pairs, rng), pairs)
        sb = build_sketch(encode_reports(b, params, pairs, rng), pairs)
        rows.extend(sa.row_inner_products(sb).tolist())
        medians.append(sa.join_size(sb))
    return np.asarray(medians), np.asarray(rows)


class TestTheorem4VarianceBound:
    def test_row_estimator_variance_within_bound(self):
        """Var[MA[j] MB[j]] <= (2/m)(F1+ (k c^2 - 1)/2)^2 (F1'+...)^2."""
        params = SketchParams(k=2, m=64, epsilon=2.0)
        a = zipf_values(4_000, 128, 1.3, seed=1)
        b = zipf_values(4_000, 128, 1.3, seed=2)
        _, rows = run_estimates(a, b, params, runs=40, seed=3)

        c2 = params.c_epsilon**2
        half_noise = (params.k * c2 - 1) / 2.0
        bound = (2.0 / params.m) * (a.size + half_noise) ** 2 * (b.size + half_noise) ** 2
        observed = float(np.var(rows))
        # With 80 samples the variance estimate itself has ~20% noise;
        # the theoretical bound is loose enough that 1.0x suffices.
        assert observed < bound

    def test_variance_decreases_with_m(self):
        a = zipf_values(3_000, 128, 1.3, seed=4)
        b = zipf_values(3_000, 128, 1.3, seed=5)

        def spread(m: int) -> float:
            params = SketchParams(k=2, m=m, epsilon=4.0)
            _, rows = run_estimates(a, b, params, runs=25, seed=6)
            return float(np.var(rows))

        assert spread(256) < spread(16)


class TestTheorem5TailBound:
    def test_median_of_k_rows_concentrates(self):
        """Pr[|Est - J| >= 4/sqrt(m) (F1 + ...)^2] <= delta for k=4log(1/delta)."""
        delta = 0.05
        k = max(1, int(np.ceil(4 * np.log(1 / delta))))
        params = SketchParams(k=k, m=256, epsilon=2.0)
        a = zipf_values(4_000, 128, 1.2, seed=7)
        b = zipf_values(4_000, 128, 1.2, seed=8)
        truth = exact_join_size(a, b, 128)
        medians, _ = run_estimates(a, b, params, runs=30, seed=9)

        half_noise = (params.k * params.c_epsilon**2 - 1) / 2.0
        radius = (4.0 / np.sqrt(params.m)) * (a.size + half_noise) * (b.size + half_noise)
        failures = float(np.mean(np.abs(medians - truth) >= radius))
        # Binomial(30, 0.05) exceeds 9 failures with probability < 1e-5.
        assert failures <= 0.3

    def test_median_tighter_than_single_row(self):
        """The k-row median spreads less than individual rows."""
        params = SketchParams(k=9, m=128, epsilon=2.0)
        a = zipf_values(3_000, 128, 1.2, seed=10)
        b = zipf_values(3_000, 128, 1.2, seed=11)
        medians, rows = run_estimates(a, b, params, runs=30, seed=12)
        truth = exact_join_size(a, b, 128)
        median_mad = float(np.median(np.abs(medians - truth)))
        row_mad = float(np.median(np.abs(rows - truth)))
        assert median_mad <= row_mad * 1.2


class TestFrequencyEstimatorSpread:
    def test_frequency_error_scales_with_sqrt_f1(self):
        """Theorem 7's estimator noise grows ~ sqrt(F1) (DESIGN.md noise floor)."""
        params = SketchParams(k=5, m=256, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=13)

        def spread(n: int) -> float:
            values = zipf_values(n, 1024, 1.05, seed=14)
            rng = np.random.default_rng(15)
            absent = np.arange(900, 1000)  # essentially unused values
            errors = []
            for _ in range(10):
                sketch = build_sketch(encode_reports(values, params, pairs, rng), pairs)
                errors.extend(np.abs(sketch.frequencies(absent)).tolist())
            return float(np.mean(errors))

        small, large = spread(2_000), spread(32_000)
        ratio = large / small
        # sqrt(32000/2000) = 4; allow wide tolerance around it.
        assert 2.0 < ratio < 8.0
