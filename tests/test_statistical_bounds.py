"""Statistical tests of the paper's error bounds (Theorems 4 and 5).

These are not point-estimate checks but *bound* checks: the empirical
spread of the estimators must respect the variance bound of Theorem 4 and
the tail bound of Theorem 5.  Because the bounds are upper bounds, the
assertions are one-sided and therefore robust — a failure means the
implementation is noisier than the theory permits.

Hardening convention (audited against flakes):

* every test draws from **pinned seeds**, so each assertion is fully
  deterministic — a failure is a code change, never unlucky dice;
* tolerances are **derived, not guessed**: each compares the paper's
  closed-form bound (Theorem 4 variance / Theorem 5 tail radius) against
  the *z-inflated upper edge* of the empirical statistic's sampling
  distribution, with the z-score written next to the formula.  Re-seeding
  the suite therefore keeps the failure probability below the stated
  z-level instead of silently depending on one lucky stream;
* genuinely stochastic comparisons that lack a clean closed form (the
  MAD ratio, the sqrt(F1) scaling law) assert a fixed-seed deterministic
  bound with at least 2x margin over the measured value, stated inline.
"""

from __future__ import annotations

import numpy as np

from repro.core import SketchParams, build_sketch, encode_reports
from repro.hashing import HashPairs
from repro.join import exact_join_size

from .conftest import zipf_values

#: z-score of the one-sided confidence edges used below.  With z = 4 a
#: re-seeded run exceeds its tolerance with probability < 4e-5 per
#: assertion (normal approximation); the pinned seeds make the checked-in
#: suite deterministic regardless.
Z_SCORE = 4.0


def run_estimates(a, b, params, runs, seed):
    """Collect `runs` independent Eq. 5 estimates and per-row estimators."""
    rng = np.random.default_rng(seed)
    medians, rows = [], []
    for _ in range(runs):
        pairs = HashPairs(params.k, params.m, rng)
        sa = build_sketch(encode_reports(a, params, pairs, rng), pairs)
        sb = build_sketch(encode_reports(b, params, pairs, rng), pairs)
        rows.extend(sa.row_inner_products(sb).tolist())
        medians.append(sa.join_size(sb))
    return np.asarray(medians), np.asarray(rows)


def variance_upper_edge(samples: np.ndarray, z: float = Z_SCORE) -> float:
    """One-sided z-confidence upper edge of a sample-variance estimate.

    The sample variance of ``R`` draws has relative standard error
    ``≈ sqrt(2 / (R - 1))`` (delta method on the chi-square), so the
    bound check compares ``var * (1 + z * sqrt(2 / (R - 1)))`` — not the
    bare point estimate — against the theoretical ceiling.
    """
    r = samples.size
    return float(np.var(samples)) * (1.0 + z * np.sqrt(2.0 / (r - 1)))


def binomial_upper_edge(p: float, n: int, z: float = Z_SCORE) -> float:
    """One-sided z-confidence edge of an empirical failure rate."""
    return p + z * np.sqrt(p * (1.0 - p) / n)


class TestTheorem4VarianceBound:
    def test_row_estimator_variance_within_bound(self):
        """Var[MA[j] MB[j]] <= (2/m)(F1+ (k c^2 - 1)/2)^2 (F1'+...)^2."""
        params = SketchParams(k=2, m=64, epsilon=2.0)
        a = zipf_values(4_000, 128, 1.3, seed=1)
        b = zipf_values(4_000, 128, 1.3, seed=2)
        _, rows = run_estimates(a, b, params, runs=40, seed=3)

        c2 = params.c_epsilon**2
        half_noise = (params.k * c2 - 1) / 2.0
        bound = (2.0 / params.m) * (a.size + half_noise) ** 2 * (b.size + half_noise) ** 2
        # 80 row samples: even the z = 4 upper edge of the empirical
        # variance (x1.64) must clear the Theorem 4 ceiling — the measured
        # ratio on these seeds is ~0.016, two orders of magnitude inside.
        assert variance_upper_edge(rows) < bound

    def test_variance_decreases_with_m(self):
        a = zipf_values(3_000, 128, 1.3, seed=4)
        b = zipf_values(3_000, 128, 1.3, seed=5)

        def spread(m: int) -> float:
            params = SketchParams(k=2, m=m, epsilon=4.0)
            _, rows = run_estimates(a, b, params, runs=25, seed=6)
            return float(np.var(rows))

        # Theorem 4 scales the noise-dominated variance term by 1/m; on
        # this workload the measured 16x width increase shrinks the
        # variance ~3.6x.  Assert a 2x floor — half the measured effect —
        # so the direction is checked with margin rather than by a bare
        # inequality that one lucky stream could satisfy.
        assert 2.0 * spread(256) < spread(16)


class TestTheorem5TailBound:
    def test_median_of_k_rows_concentrates(self):
        """Pr[|Est - J| >= 4/sqrt(m) (F1 + ...)^2] <= delta for k=4log(1/delta)."""
        delta = 0.05
        runs = 30
        k = max(1, int(np.ceil(4 * np.log(1 / delta))))
        params = SketchParams(k=k, m=256, epsilon=2.0)
        a = zipf_values(4_000, 128, 1.2, seed=7)
        b = zipf_values(4_000, 128, 1.2, seed=8)
        truth = exact_join_size(a, b, 128)
        medians, _ = run_estimates(a, b, params, runs=runs, seed=9)

        half_noise = (params.k * params.c_epsilon**2 - 1) / 2.0
        radius = (4.0 / np.sqrt(params.m)) * (a.size + half_noise) * (b.size + half_noise)
        failures = float(np.mean(np.abs(medians - truth) >= radius))
        # The tail bound promises a failure rate <= delta; the assertion
        # allows the z = 4 binomial upper edge of that rate over `runs`
        # trials (~0.21 for delta=0.05, n=30).  Measured rate on these
        # seeds: 0.0.
        assert failures <= binomial_upper_edge(delta, runs)

    def test_median_tighter_than_single_row(self):
        """The k-row median spreads less than individual rows."""
        params = SketchParams(k=9, m=128, epsilon=2.0)
        a = zipf_values(3_000, 128, 1.2, seed=10)
        b = zipf_values(3_000, 128, 1.2, seed=11)
        medians, rows = run_estimates(a, b, params, runs=30, seed=12)
        truth = exact_join_size(a, b, 128)
        median_mad = float(np.median(np.abs(medians - truth)))
        row_mad = float(np.median(np.abs(rows - truth)))
        # No clean closed form for the MAD ratio of a 9-row median, so
        # this is a fixed-seed deterministic bound: the median must not
        # spread *more* than single rows (ratio <= 1.0); measured ratio
        # on these seeds is ~0.49, a 2x margin.
        assert median_mad <= row_mad


class TestFrequencyEstimatorSpread:
    def test_frequency_error_scales_with_sqrt_f1(self):
        """Theorem 7's estimator noise grows ~ sqrt(F1) (DESIGN.md noise floor)."""
        params = SketchParams(k=5, m=256, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=13)

        def spread(n: int) -> float:
            values = zipf_values(n, 1024, 1.05, seed=14)
            rng = np.random.default_rng(15)
            absent = np.arange(900, 1000)  # essentially unused values
            errors = []
            for _ in range(10):
                sketch = build_sketch(encode_reports(values, params, pairs, rng), pairs)
                errors.extend(np.abs(sketch.frequencies(absent)).tolist())
            return float(np.mean(errors))

        small, large = spread(2_000), spread(32_000)
        ratio = large / small
        # sqrt(32000/2000) = 4 is the theoretical ratio; each spread()
        # averages 1000 absolute errors, so its sampling noise is small
        # and a factor-2 window around 4 (fixed-seed deterministic) holds
        # with wide margin.
        assert 2.0 < ratio < 8.0
