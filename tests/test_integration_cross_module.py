"""Cross-module integration tests.

These tests stitch together multiple subsystems the way a downstream user
would — data generators feeding protocol drivers scored against the exact
join substrate — and assert *relationships between methods* rather than
absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LDPJoinSketchAggregator,
    SketchParams,
    encode_reports,
    run_ldp_join_sketch,
)
from repro.data import ZipfGenerator, make_join_instance
from repro.hashing import HashPairs
from repro.mechanisms import LDPJoinSketchOracle
from repro.sketches import FastAGMSSketch


class TestEpsilonLimit:
    """eps -> infinity removes the privacy noise, not the sketch noise."""

    def test_large_epsilon_approaches_fast_agms_accuracy(self):
        instance = ZipfGenerator(512, alpha=1.4).make_join_instance(40_000, rng=1)
        truth = instance.true_join_size
        params = SketchParams(k=9, m=512, epsilon=100.0)

        ldp_errors, fagms_errors = [], []
        for seed in range(4):
            ldp = run_ldp_join_sketch(
                instance.values_a, instance.values_b, params, seed=seed
            ).estimate
            ldp_errors.append(abs(ldp - truth) / truth)
            pairs = HashPairs(params.k, params.m, seed)
            sa = FastAGMSSketch(pairs)
            sa.update_batch(instance.values_a)
            sb = FastAGMSSketch(pairs)
            sb.update_batch(instance.values_b)
            fagms_errors.append(abs(sa.inner_product(sb) - truth) / truth)

        # Row/column sampling keeps LDPJoinSketch noisier than FAGMS even
        # without privacy noise, but within a moderate factor.
        assert np.mean(ldp_errors) < 0.2
        assert np.mean(fagms_errors) <= np.mean(ldp_errors)

    def test_error_monotone_in_epsilon_on_average(self):
        instance = ZipfGenerator(512, alpha=1.3).make_join_instance(30_000, rng=2)
        truth = instance.true_join_size

        def mean_error(epsilon: float) -> float:
            params = SketchParams(k=9, m=256, epsilon=epsilon)
            return float(
                np.mean(
                    [
                        abs(
                            run_ldp_join_sketch(
                                instance.values_a, instance.values_b, params, seed=s
                            ).estimate
                            - truth
                        )
                        for s in range(6)
                    ]
                )
            )

        assert mean_error(8.0) < mean_error(0.3)


class TestOracleSketchConsistency:
    """The frequency-oracle adapter and raw protocol agree exactly."""

    def test_oracle_sketch_equals_manual_construction(self):
        domain = 128
        values = ZipfGenerator(domain, alpha=1.2).sample(5_000, rng=3)
        oracle = LDPJoinSketchOracle(domain, 4.0, seed=4, k=3, m=64)
        oracle.collect(values, rng=np.random.default_rng(5))

        manual = LDPJoinSketchAggregator(oracle.params, oracle.pairs)
        manual.ingest(
            encode_reports(values, oracle.params, oracle.pairs, np.random.default_rng(5))
        )
        assert np.allclose(oracle.sketch().counts, manual.sketch().counts)


class TestRegistryToProtocolPipeline:
    @pytest.mark.parametrize("name", ["facebook", "tpcds"])
    def test_registry_instance_flows_through_protocol(self, name):
        instance = make_join_instance(name, scale=0.003, seed=6)
        params = SketchParams(k=5, m=256, epsilon=8.0)
        result = run_ldp_join_sketch(
            instance.values_a, instance.values_b, params, seed=7
        )
        assert np.isfinite(result.estimate)
        assert result.uplink_bits == (instance.size_a + instance.size_b) * params.report_bits

    def test_split_mode_self_join_larger_than_independent(self):
        # "split" shares the realised empirical distribution, which for a
        # fixed population usually raises the realised join size slightly;
        # mostly this guards that both modes produce valid instances.
        gen = ZipfGenerator(256, alpha=1.5)
        split = gen.make_join_instance(20_000, rng=8, mode="split")
        indep = gen.make_join_instance(20_000, rng=8, mode="independent")
        assert split.true_join_size > 0
        assert indep.true_join_size > 0
