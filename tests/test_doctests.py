"""Keep the docstring examples executable."""

from __future__ import annotations

import doctest

import pytest

import repro.join.exact
import repro.transform.hadamard

MODULES = [repro.transform.hadamard, repro.join.exact]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
    assert result.attempted > 0
