"""Chaos property suite: random fault schedules vs the byte-identity bar.

The headline invariant of the fault-tolerance layer, enforced for every
registry method and shard count: **for any absorbable fault schedule**
(every raising spec dies out within the retry budget) **the final merged
estimate is byte-identical to the fault-free run** — faults are invisible
in the output, not merely tolerated.  Unabsorbable schedules must instead
degrade *accountably*: the result names exactly the shards that were
lost and the coverage it rescaled by.

Schedules come from :meth:`FaultPlan.random`, itself a pure function of
a drawn seed, so every failing example shrinks to a replayable plan.
Run under ``HYPOTHESIS_PROFILE=ci`` this file is fully derandomized.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import get_estimator
from repro.data.base import JoinInstance
from repro.distributed import estimate_sharded
from repro.errors import ShardLostError
from repro.reliability import FaultPlan, FaultSpec

from .conftest import zipf_values

#: Same acceptance grid as the merge-invariance suite.
SHARD_COUNTS = (1, 2, 3, 7, 16)
DOMAIN = 64
N = 1_600
EPSILON = 4.0

METHOD_CONFIGS = {
    "fagms": (dict(k=3, m=32), "hash"),
    "krr": (dict(), "hash"),
    "olh": (dict(), "hash"),
    "flh": (dict(pool_size=16), "hash"),
    "hcms": (dict(k=3, m=32), "hash"),
    "ldp-join-sketch": (dict(k=3, m=32), "hash"),
    "ldp-join-sketch-plus": (dict(k=3, m=32), "range"),
    "compass": (dict(k=3, m=32), "hash"),
}

#: Retry budget of every chaos run; random plans draw ``times <= 2``, so
#: every schedule in the absorbable tests satisfies ``absorbable_by(3)``.
RETRIES = 3
MAX_TIMES = RETRIES - 1


def _instance() -> JoinInstance:
    return JoinInstance(
        name="chaos-zipf",
        values_a=zipf_values(N, DOMAIN, 1.2, seed=21),
        values_b=zipf_values(N, DOMAIN, 1.1, seed=22),
        domain_size=DOMAIN,
    )


INSTANCE = _instance()

#: Fault-free reference runs, computed once per (method, K) cell.
_BASELINES: dict = {}


def _fields(result):
    return (result.estimate, result.uplink_bits, result.sketch_bytes)


def _run(name: str, num_shards: int, **reliability):
    options, strategy = METHOD_CONFIGS[name]
    estimator = get_estimator(name, **options)
    return estimate_sharded(
        estimator,
        INSTANCE,
        EPSILON,
        num_shards=num_shards,
        seed=77,
        strategy=strategy,
        merge="tree",
        **reliability,
    )


def _baseline(name: str, num_shards: int):
    key = (name, num_shards)
    if key not in _BASELINES:
        _BASELINES[key] = _fields(_run(name, num_shards))
    return _BASELINES[key]


class TestAbsorbableSchedulesAreByteInvisible:
    """8 methods x K in {1, 2, 3, 7, 16} x random absorbable schedules."""

    @pytest.mark.parametrize("name", sorted(METHOD_CONFIGS))
    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_random_schedule_leaves_no_trace(self, name, data):
        num_shards = data.draw(st.sampled_from(SHARD_COUNTS), label="K")
        plan_seed = data.draw(st.integers(0, 2**16), label="plan_seed")
        num_faults = data.draw(st.integers(1, 3), label="num_faults")
        plan = FaultPlan.random(
            plan_seed,
            points=("shard.collect",),
            num_faults=num_faults,
            num_shards=num_shards,
            max_times=MAX_TIMES,
            kinds=("error", "crash"),
        )
        assert plan.absorbable_by(RETRIES)
        chaotic = _run(name, num_shards, retries=RETRIES, fault_plan=plan)
        assert _fields(chaotic) == _baseline(name, num_shards), (
            f"{name} K={num_shards}: absorbable plan {plan.to_dict()} "
            f"changed the result"
        )

    @pytest.mark.parametrize("name", sorted(METHOD_CONFIGS))
    def test_replaying_one_plan_is_deterministic(self, name):
        """The same plan payload produces the same faulted run twice."""
        plan_payload = FaultPlan.random(
            5, points=("shard.collect",), num_faults=2, num_shards=3,
            max_times=MAX_TIMES,
        ).to_dict()
        first = _run(
            name, 3, retries=RETRIES, fault_plan=FaultPlan.from_dict(plan_payload)
        )
        second = _run(
            name, 3, retries=RETRIES, fault_plan=FaultPlan.from_dict(plan_payload)
        )
        assert _fields(first) == _fields(second)


class TestUnabsorbableSchedulesDegradeAccountably:
    """Past-budget faults must surface in the loss ledger, exactly."""

    @pytest.mark.parametrize(
        "name", ["ldp-join-sketch", "krr", "ldp-join-sketch-plus"]
    )
    @given(data=st.data())
    @settings(max_examples=6, deadline=None)
    def test_lost_shards_are_accounted(self, name, data):
        num_shards = data.draw(st.sampled_from((2, 3, 7)), label="K")
        doomed = sorted(
            data.draw(
                st.sets(
                    st.integers(0, num_shards - 1),
                    min_size=1,
                    max_size=num_shards - 1,
                ),
                label="doomed",
            )
        )
        plan = FaultPlan(
            [
                FaultSpec(
                    point="shard.collect", kind="error", times=99, match={"shard": s}
                )
                for s in doomed
            ],
            name="doomed-shards",
        )
        assert not plan.absorbable_by(RETRIES)
        try:
            result = _run(
                name, num_shards, retries=RETRIES, fault_plan=plan, degraded=True
            )
        except ShardLostError as error:
            # Degenerate split: the doomed shards held every client of a
            # stream, so there is no surviving coverage to rescale.  The
            # loss is still accounted, just as a typed error.
            assert tuple(sorted(error.lost)) == tuple(doomed)
            return
        ledger = result.extras["degraded"]
        assert ledger["shards_lost"] == doomed
        assert 0.0 < ledger["coverage"]["A"] <= 1.0
        assert 0.0 < ledger["coverage"]["B"] <= 1.0
        assert ledger["bound_factor"] >= 1.0

    @pytest.mark.parametrize("name", ["ldp-join-sketch", "krr"])
    def test_losing_every_shard_is_typed(self, name):
        plan = FaultPlan([FaultSpec(point="shard.collect", kind="error", times=99)])
        with pytest.raises(ShardLostError) as excinfo:
            _run(name, 2, retries=2, fault_plan=plan, degraded=True)
        assert excinfo.value.lost == (0, 1)


class TestSweepChaos:
    """Random schedules over the pool's worker-entry fault points."""

    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_absorbable_worker_faults_are_byte_invisible(self, data):
        from repro.experiments.sweep import plan_grid, run_sweep

        def make_plan():
            return plan_grid(
                [INSTANCE.name],
                {"LDPJoinSketch": get_estimator("ldp-join-sketch", k=3, m=32)},
                [2.0],
                2,
                seed=55,
                shards=2,
                instances={INSTANCE.name: INSTANCE},
            )

        key = "sweep-baseline"
        if key not in _BASELINES:
            _BASELINES[key] = [
                [r.estimate for r in block]
                for block in run_sweep(make_plan(), workers=2)
            ]
        plan_seed = data.draw(st.integers(0, 2**16), label="plan_seed")
        plan = FaultPlan.random(
            plan_seed,
            points=("sweep.shard", "shard.collect"),
            num_faults=2,
            num_shards=2,
            max_times=MAX_TIMES,
            kinds=("error", "crash"),
        )
        assert plan.absorbable_by(RETRIES)
        got = [
            [r.estimate for r in block]
            for block in run_sweep(
                make_plan(), workers=2, retries=RETRIES, fault_plan=plan
            )
        ]
        assert got == _BASELINES[key], (
            f"sweep chaos plan {plan.to_dict()} changed the records"
        )
