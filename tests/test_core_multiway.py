"""Tests for the Section VI multiway extension (:mod:`repro.core.multiway`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LDPCompassProtocol
from repro.core.multiway import MiddleReportBatch
from repro.errors import IncompatibleSketchError, ParameterError
from repro.join import exact_multiway_chain_size
from repro.privacy import c_epsilon
from repro.sketches import CompassChainSketches
from repro.transform import hadamard_matrix

from .conftest import zipf_values


def make_chain_data(domain: int, size: int, seed: int):
    t1 = zipf_values(size, domain, 1.3, seed)
    t2 = (zipf_values(size, domain, 1.3, seed + 1), zipf_values(size, domain, 1.3, seed + 2))
    t3 = zipf_values(size, domain, 1.3, seed + 3)
    return t1, t2, t3


class TestConstruction:
    def test_middle_reports_shape_and_bits(self):
        protocol = LDPCompassProtocol([16, 8], k=3, epsilon=2.0, seed=1)
        reports = protocol.encode_middle(0, [1, 2, 3], [4, 5, 6], rng=2)
        assert len(reports) == 3
        assert reports.m_left == 16 and reports.m_right == 8
        # 1 sign + ceil(log2 3)=2 + log2 16=4 + log2 8=3.
        assert reports.report_bits == 1 + 2 + 4 + 3
        assert reports.total_bits == 3 * reports.report_bits

    def test_middle_report_validation(self):
        with pytest.raises(ParameterError, match="equal-length"):
            MiddleReportBatch(
                np.array([1]), np.array([0, 0]), np.array([0]), np.array([0]),
                k=2, m_left=4, m_right=4, epsilon=1.0,
            )

    def test_middle_column_length_mismatch(self):
        protocol = LDPCompassProtocol([8, 8], k=2, epsilon=1.0, seed=3)
        with pytest.raises(ParameterError, match="equal length"):
            protocol.encode_middle(0, [1, 2], [3])

    def test_single_report_transform_identity(self):
        """Server inversion: one report contributes
        k*c_eps*y*H[l1,:]^T outer H[l2,:] to its replica."""
        protocol = LDPCompassProtocol([8, 4], k=2, epsilon=3.0, seed=4)
        reports = protocol.encode_middle(0, [5], [2], rng=5)
        sketch = protocol.build_middle(0, reports)
        j = int(reports.replicas[0])
        l1, l2 = int(reports.left_cols[0]), int(reports.right_cols[0])
        y = float(reports.ys[0])
        h1 = hadamard_matrix(8)
        h2 = hadamard_matrix(4)
        expected = (
            protocol.k
            * c_epsilon(3.0)
            * y
            * np.outer(h1[:, l1], h2[l2, :])
        )
        assert np.allclose(sketch.counts[j], expected)
        other = 1 - j
        assert not sketch.counts[other].any()

    def test_middle_cell_expectation(self):
        """E[M~[j, h_A(a), h_B(b)]] = xi_A(a) xi_B(b) * count."""
        protocol = LDPCompassProtocol([16, 16], k=2, epsilon=4.0, seed=6)
        a_val, b_val, count = 3, 9, 4000
        left = np.full(count, a_val, dtype=np.int64)
        right = np.full(count, b_val, dtype=np.int64)
        rng = np.random.default_rng(7)
        total = np.zeros((2, 16, 16))
        runs = 40
        for _ in range(runs):
            sketch = protocol.build_middle(0, protocol.encode_middle(0, left, right, rng))
            total += sketch.counts
        mean = total / runs
        lp = protocol.attribute_pairs[0]
        rp = protocol.attribute_pairs[1]
        for j in range(2):
            cell = mean[j, lp.bucket(j, np.array([a_val]))[0], rp.bucket(j, np.array([b_val]))[0]]
            sign = lp.sign(j, np.array([a_val]))[0] * rp.sign(j, np.array([b_val]))[0]
            # sd per run ~ sqrt(k c^2 count) ~ 130; mean of 40 runs ~ 20.
            assert abs(cell - sign * count) < 6 * 25

    def test_report_shape_mismatch_rejected(self):
        protocol = LDPCompassProtocol([8, 8], k=2, epsilon=1.0, seed=8)
        other = LDPCompassProtocol([16, 8], k=2, epsilon=1.0, seed=9)
        reports = other.encode_middle(0, [1], [1], rng=10)
        with pytest.raises(IncompatibleSketchError):
            protocol.build_middle(0, reports)


class TestChainEstimation:
    def test_three_way_accuracy_large_budget(self):
        domain = 64
        t1, t2, t3 = make_chain_data(domain, 30_000, seed=11)
        truth = exact_multiway_chain_size((t1, t3), [t2], [domain, domain])
        protocol = LDPCompassProtocol([256, 256], k=9, epsilon=50.0, seed=12)
        rng = np.random.default_rng(13)
        first = protocol.build_end(0, protocol.encode_end(0, t1, rng))
        mid = protocol.build_middle(0, protocol.encode_middle(0, *t2, rng))
        last = protocol.build_end(1, protocol.encode_end(1, t3, rng))
        est = protocol.estimate_chain(first, [mid], last)
        assert abs(est - truth) / truth < 0.5

    def test_three_way_tracks_compass_shape(self):
        """Both estimators answer the same query; under a huge budget the
        LDP estimate should sit in the same range as COMPASS's."""
        domain = 64
        t1, t2, t3 = make_chain_data(domain, 20_000, seed=14)
        truth = exact_multiway_chain_size((t1, t3), [t2], [domain, domain])
        compass = CompassChainSketches([256, 256], k=9, seed=15)
        c_est = compass.estimate_chain(
            compass.build_end(0, t1),
            [compass.build_middle(0, *t2)],
            compass.build_end(1, t3),
        )
        protocol = LDPCompassProtocol([256, 256], k=9, epsilon=50.0, seed=16)
        rng = np.random.default_rng(17)
        l_est = protocol.estimate_chain(
            protocol.build_end(0, protocol.encode_end(0, t1, rng)),
            [protocol.build_middle(0, protocol.encode_middle(0, *t2, rng))],
            protocol.build_end(1, protocol.encode_end(1, t3, rng)),
        )
        assert abs(c_est - truth) / truth < 0.2
        assert abs(l_est - truth) / truth < 0.6

    def test_four_way_runs_and_is_positive(self):
        domain = 32
        rng = np.random.default_rng(18)
        t1 = zipf_values(20_000, domain, 1.4, 19)
        m1 = (zipf_values(20_000, domain, 1.4, 20), zipf_values(20_000, domain, 1.4, 21))
        m2 = (zipf_values(20_000, domain, 1.4, 22), zipf_values(20_000, domain, 1.4, 23))
        t4 = zipf_values(20_000, domain, 1.4, 24)
        truth = exact_multiway_chain_size((t1, t4), [m1, m2], [domain] * 3)
        protocol = LDPCompassProtocol([128] * 3, k=9, epsilon=50.0, seed=25)
        est = protocol.estimate_chain(
            protocol.build_end(0, protocol.encode_end(0, t1, rng)),
            [
                protocol.build_middle(0, protocol.encode_middle(0, *m1, rng)),
                protocol.build_middle(1, protocol.encode_middle(1, *m2, rng)),
            ],
            protocol.build_end(2, protocol.encode_end(2, t4, rng)),
        )
        assert abs(est - truth) / truth < 1.0

    def test_epsilon_reduces_error_on_average(self):
        domain = 32
        t1, t2, t3 = make_chain_data(domain, 10_000, seed=26)
        truth = exact_multiway_chain_size((t1, t3), [t2], [domain, domain])

        def mean_error(epsilon: float) -> float:
            errors = []
            for seed in range(5):
                protocol = LDPCompassProtocol([64, 64], k=9, epsilon=epsilon, seed=27)
                rng = np.random.default_rng(100 + seed)
                est = protocol.estimate_chain(
                    protocol.build_end(0, protocol.encode_end(0, t1, rng)),
                    [protocol.build_middle(0, protocol.encode_middle(0, *t2, rng))],
                    protocol.build_end(1, protocol.encode_end(1, t3, rng)),
                )
                errors.append(abs(est - truth))
            return float(np.mean(errors))

        assert mean_error(8.0) < mean_error(0.5)

    def test_wrong_middle_count(self):
        protocol = LDPCompassProtocol([8, 8], k=2, epsilon=1.0, seed=28)
        rng = np.random.default_rng(29)
        first = protocol.build_end(0, protocol.encode_end(0, [1], rng))
        last = protocol.build_end(1, protocol.encode_end(1, [1], rng))
        with pytest.raises(IncompatibleSketchError, match="middle"):
            protocol.estimate_chain(first, [], last)

    def test_foreign_end_sketch(self):
        protocol = LDPCompassProtocol([8, 8], k=2, epsilon=1.0, seed=30)
        other = LDPCompassProtocol([8, 8], k=2, epsilon=1.0, seed=31)
        rng = np.random.default_rng(32)
        first = other.build_end(0, other.encode_end(0, [1], rng))
        mid = protocol.build_middle(0, protocol.encode_middle(0, [1], [1], rng))
        last = protocol.build_end(1, protocol.encode_end(1, [1], rng))
        with pytest.raises(IncompatibleSketchError):
            protocol.estimate_chain(first, [mid], last)

    def test_attribute_out_of_range(self):
        protocol = LDPCompassProtocol([8], k=2, epsilon=1.0, seed=33)
        with pytest.raises(ParameterError):
            protocol.encode_end(1, [0])

    def test_width_must_be_power_of_two(self):
        with pytest.raises(ParameterError, match="power of two"):
            LDPCompassProtocol([12], k=2, epsilon=1.0)


class TestBatchedChainProduct:
    """The replica-batched matmul forms equal the per-replica loops."""

    @staticmethod
    def _loop_chain(first, middles, last):
        k = first.params.k
        estimates = np.empty(k, dtype=np.float64)
        for j in range(k):
            acc = first.counts[j]
            for mid in middles:
                acc = acc @ mid.counts[j]
            estimates[j] = float(acc @ last.counts[j])
        return float(np.median(estimates))

    @staticmethod
    def _loop_cycle(tables):
        k = tables[0].k
        estimates = np.empty(k, dtype=np.float64)
        for j in range(k):
            acc = tables[0].counts[j]
            for sketch in tables[1:]:
                acc = acc @ sketch.counts[j]
            estimates[j] = float(np.trace(acc))
        return float(np.median(estimates))

    def test_estimate_chain_matches_loop(self):
        protocol = LDPCompassProtocol([16, 8, 16], k=5, epsilon=4.0, seed=90)
        t1, (m1l, m1r), t2 = make_chain_data(16, 600, 91)
        rng = np.random.default_rng(92)
        first = protocol.build_end(0, protocol.encode_end(0, t1, rng))
        mid_a = protocol.build_middle(0, protocol.encode_middle(0, m1l, m1r % 8, rng))
        mid_b = protocol.build_middle(1, protocol.encode_middle(1, m1r % 8, m1l, rng))
        last = protocol.build_end(2, protocol.encode_end(2, t2, rng))
        vectorized = protocol.estimate_chain(first, [mid_a, mid_b], last)
        loop = self._loop_chain(first, [mid_a, mid_b], last)
        np.testing.assert_allclose(vectorized, loop, rtol=1e-9)

    def test_estimate_cycle_matches_loop(self):
        protocol = LDPCompassProtocol([8, 8, 8], k=4, epsilon=4.0, seed=95)
        rng = np.random.default_rng(96)
        tables = []
        for idx in range(3):
            left = zipf_values(400, 8, 1.3, 97 + idx)
            right = zipf_values(400, 8, 1.3, 100 + idx)
            tables.append(
                protocol.build_cycle_table(
                    idx, protocol.encode_cycle_table(idx, left, right, rng)
                )
            )
        vectorized = protocol.estimate_cycle(tables)
        loop = self._loop_cycle(tables)
        np.testing.assert_allclose(vectorized, loop, rtol=1e-9)
