"""Property suite for sharded mergeable aggregation (repro.distributed).

The core guarantee, enforced for every registry method: for any shard
count K and any merge topology, the reduced state — and every
deterministic field of the resulting :class:`EstimateResult` — is
byte-identical to the single-aggregator run, and K = 1 replays the
unsharded estimate bit for bit.  On top of that, partial merging is a
monoid: associative, commutative (for element-wise sums), with the empty
partial as identity.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import JoinSession, get_estimator
from repro.backend import backend_available, use_backend
from repro.core import SketchParams
from repro.data.base import JoinInstance
from repro.distributed import (
    ShardPlanner,
    estimate_sharded,
    merge_sequential,
    merge_tree,
    prepare_shard_run,
)

from .conftest import zipf_values

#: Shard counts of the invariance grid (deliberately including 1, primes
#: and a power of two deeper than one tree level).
SHARD_COUNTS = (1, 2, 3, 7, 16)

#: Compute backends to pin the grid to (numba rows skip when absent).
BACKENDS = [name for name in ("numpy", "numba") if backend_available(name)]

#: Small shared shapes so the 8-method grid stays fast.
DOMAIN = 64
N = 1_600
EPSILON = 4.0

#: Every registered method with small-configuration options and the
#: partition strategy its sharded run uses in this suite (LDPJoinSketch+
#: needs >= 4 users per shard, which the balanced range split guarantees).
METHOD_CONFIGS = {
    "fagms": (dict(k=3, m=32), "hash"),
    "krr": (dict(), "hash"),
    "olh": (dict(), "hash"),
    "flh": (dict(pool_size=16), "hash"),
    "hcms": (dict(k=3, m=32), "hash"),
    "ldp-join-sketch": (dict(k=3, m=32), "hash"),
    "ldp-join-sketch-plus": (dict(k=3, m=32), "range"),
    "compass": (dict(k=3, m=32), "hash"),
}


@pytest.fixture(scope="module")
def instance() -> JoinInstance:
    return JoinInstance(
        name="prop-zipf",
        values_a=zipf_values(N, DOMAIN, 1.2, seed=21),
        values_b=zipf_values(N, DOMAIN, 1.1, seed=22),
        domain_size=DOMAIN,
    )


def _make(name: str):
    options, strategy = METHOD_CONFIGS[name]
    return get_estimator(name, **options), strategy


def _deterministic_fields(result):
    return (result.estimate, result.uplink_bits, result.sketch_bytes)


class TestShardCountInvariance:
    """Acceptance grid: 8 methods x K in {1, 2, 3, 7, 16}."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(METHOD_CONFIGS))
    def test_tree_merge_matches_single_aggregator(self, name, backend, instance):
        estimator, strategy = _make(name)
        with use_backend(backend):
            serial = estimator.estimate(instance, EPSILON, seed=77)
            for num_shards in SHARD_COUNTS:
                tree = estimate_sharded(
                    estimator,
                    instance,
                    EPSILON,
                    num_shards=num_shards,
                    seed=77,
                    strategy=strategy,
                    merge="tree",
                )
                single = estimate_sharded(
                    estimator,
                    instance,
                    EPSILON,
                    num_shards=num_shards,
                    seed=77,
                    strategy=strategy,
                    merge="sequential",
                )
                assert _deterministic_fields(tree) == _deterministic_fields(single), (
                    f"{name}: tree != single-aggregator at K={num_shards}"
                )
                if num_shards == 1:
                    assert _deterministic_fields(tree) == _deterministic_fields(
                        serial
                    ), f"{name}: K=1 does not replay the unsharded estimate"

    @pytest.mark.parametrize("name", ["ldp-join-sketch", "krr", "flh", "hcms", "olh", "fagms"])
    def test_merged_partial_state_is_byte_identical(self, name, instance):
        """Not just the estimate: the reduced accumulators match bitwise."""
        estimator, strategy = _make(name)
        for num_shards in (2, 7, 16):
            run = prepare_shard_run(
                estimator,
                instance,
                EPSILON,
                num_shards=num_shards,
                seed=31,
                strategy=strategy,
            )
            partials = run.collect_all()
            tree = merge_tree(partials)
            single = merge_sequential(partials)
            assert set(tree.arrays) == set(single.arrays)
            for key in tree.arrays:
                assert tree.arrays[key].dtype == single.arrays[key].dtype
                np.testing.assert_array_equal(tree.arrays[key], single.arrays[key])
            assert tree.counters == single.counters

    def test_shard_runs_are_rebuildable(self, instance):
        """A run re-planned from the same arguments emits identical partials
        (what lets pool workers rebuild plans instead of shipping them)."""
        estimator, strategy = _make("ldp-join-sketch")
        kwargs = dict(num_shards=5, seed=13, strategy=strategy)
        first = prepare_shard_run(estimator, instance, EPSILON, **kwargs)
        second = prepare_shard_run(estimator, instance, EPSILON, **kwargs)
        for s in range(5):
            a, b = first.collect(s), second.collect(s)
            assert a.fingerprint == b.fingerprint
            assert set(a.arrays) == set(b.arrays)
            for key in a.arrays:
                assert a.arrays[key].dtype == b.arrays[key].dtype
                np.testing.assert_array_equal(a.arrays[key], b.arrays[key])
            # Counters match except wall-clock accounting.
            for key in a.counters:
                if "seconds" not in key:
                    assert a.counters[key] == b.counters[key]


class TestSessionLevelInvariance:
    """JoinSession.collect_sharded vs distributed partials, per K."""

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("strategy", ["hash", "range"])
    def test_distributed_partials_reproduce_collect_sharded(
        self, num_shards, strategy
    ):
        params = SketchParams(k=3, m=32, epsilon=2.0)
        values_a = zipf_values(900, DOMAIN, 1.3, seed=5)
        values_b = zipf_values(1_100, DOMAIN, 1.2, seed=6)

        reference = JoinSession(params, seed=42)
        reference.collect_sharded(
            "A", values_a, num_shards=num_shards, strategy=strategy, seed=101
        )
        reference.collect_sharded(
            "B", values_b, num_shards=num_shards, strategy=strategy, seed=102
        )

        coordinator = JoinSession(params, pairs=reference.pairs)
        partials = []
        for stream, values, seed in (("A", values_a, 101), ("B", values_b, 102)):
            planner = ShardPlanner(num_shards, strategy=strategy)
            for shard_values, shard_seed in zip(
                planner.split(values), planner.shard_seeds(seed)
            ):
                shard = coordinator.spawn_shard()
                shard.collect(stream, shard_values, seed=shard_seed)
                partials.append(shard.to_partial())
        coordinator.merge(merge_tree(partials))

        for stream in ("A", "B"):
            np.testing.assert_array_equal(
                coordinator._streams[stream].raw, reference._streams[stream].raw
            )
            assert coordinator.num_reports(stream) == reference.num_reports(stream)
        assert coordinator.estimate().estimate == reference.estimate().estimate

    def test_collect_sharded_k1_is_plain_collect(self):
        """The identity plan: K=1 reproduces today's figures bit for bit."""
        params = SketchParams(k=3, m=32, epsilon=2.0)
        values = zipf_values(700, DOMAIN, 1.3, seed=7)
        plain = JoinSession(params, seed=9)
        plain.collect("A", values)
        sharded = JoinSession(params, seed=9)
        sharded.collect_sharded("A", values, num_shards=1)
        np.testing.assert_array_equal(
            sharded._streams["A"].raw, plain._streams["A"].raw
        )


class TestMergeAlgebra:
    """Partial merging is a monoid (hypothesis over shard populations)."""

    @staticmethod
    def _partials(value_lists, seed_base):
        params = SketchParams(k=2, m=16, epsilon=1.5)
        coordinator = JoinSession(params, seed=3)
        partials = []
        for i, values in enumerate(value_lists):
            shard = coordinator.spawn_shard()
            if len(values):
                shard.collect("A", np.asarray(values, dtype=np.int64), seed=seed_base + i)
            partials.append(shard.to_partial())
        return partials

    values_lists = st.lists(
        st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=40),
        min_size=3,
        max_size=3,
    )

    @given(values_lists, st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=25, deadline=None)
    def test_associativity(self, lists, seed_base):
        p1, p2, p3 = self._partials(lists, seed_base)
        left = p1.copy().merge(p2.copy()).merge(p3.copy())
        right = p1.copy().merge(p2.copy().merge(p3.copy()))
        assert left == right

    @given(values_lists, st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=25, deadline=None)
    def test_commutativity(self, lists, seed_base):
        p1, p2, _ = self._partials(lists, seed_base)
        assert p1.copy().merge(p2.copy()) == p2.copy().merge(p1.copy())

    @given(values_lists, st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=25, deadline=None)
    def test_identity_element(self, lists, seed_base):
        partials = self._partials(lists, seed_base)
        empty = self._partials([[]], 0)[0]
        # Strip the empty shard's (zero-report) stream entry so it is the
        # true identity: no streams, no charges, only matching fingerprints.
        merged_with_empty = partials[0].copy().merge(empty)
        alone = partials[0].copy()
        for key in alone.arrays:
            np.testing.assert_array_equal(
                merged_with_empty.arrays[key], alone.arrays[key]
            )
        assert merged_with_empty.counters.get("stream:A:num_reports", 0.0) == (
            alone.counters.get("stream:A:num_reports", 0.0)
        )

    def test_concat_stores_commute_at_the_estimate_level(self):
        """OLH partials hold per-user stores (concatenation is order-
        sensitive state), but the support scan sums exact integers, so
        either merge order yields the same estimates."""
        inst = JoinInstance(
            name="olh-comm",
            values_a=zipf_values(400, DOMAIN, 1.2, seed=41),
            values_b=zipf_values(400, DOMAIN, 1.2, seed=42),
            domain_size=DOMAIN,
        )
        estimator, _ = _make("olh")
        run = prepare_shard_run(estimator, inst, EPSILON, num_shards=2, seed=8)
        p0, p1 = run.collect_all()
        forward = run.finalize(merge_sequential([p0, p1]))
        backward = run.finalize(merge_sequential([p1, p0]))
        assert forward.estimate == backward.estimate


class TestSweepViaPartials:
    """sweep --shards: partial-shipping stays bit-identical for every N."""

    def test_worker_invariance(self):
        from repro.experiments.sweep import plan_grid, run_sweep

        inst = JoinInstance(
            name="sweep-shards",
            values_a=zipf_values(1_200, DOMAIN, 1.2, seed=61),
            values_b=zipf_values(1_200, DOMAIN, 1.1, seed=62),
            domain_size=DOMAIN,
        )

        def estimates(shards, workers):
            plan = plan_grid(
                ["sweep-shards"],
                {"LDPJoinSketch": get_estimator("ldp-join-sketch", k=3, m=32)},
                [2.0, 8.0],
                3,
                seed=55,
                shards=shards,
                instances={"sweep-shards": inst},
            )
            return tuple(
                r.estimate for block in run_sweep(plan, workers=workers) for r in block
            )

        unsharded = estimates(None, 1)
        assert estimates(1, 1) == unsharded  # identity plan
        assert estimates(1, 2) == unsharded  # partial shipping, K=1
        sharded = estimates(4, 1)
        assert estimates(4, 2) == sharded
        assert estimates(4, 3) == sharded
