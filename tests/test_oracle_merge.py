"""Sharded-collection merge path of the LDP frequency oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IncompatibleSketchError
from repro.mechanisms import (
    FLHOracle,
    HadamardResponseOracle,
    HCMSOracle,
    KRROracle,
    LDPJoinSketchOracle,
    OLHOracle,
    OUEOracle,
)

from .conftest import zipf_values

DOMAIN = 128
EPSILON = 4.0


def _factories():
    return {
        "krr": lambda seed: KRROracle(DOMAIN, EPSILON, seed),
        "oue": lambda seed: OUEOracle(DOMAIN, EPSILON, seed),
        "olh": lambda seed: OLHOracle(DOMAIN, EPSILON, seed),
        "flh": lambda seed: FLHOracle(DOMAIN, EPSILON, seed, pool_size=32),
        "hcms": lambda seed: HCMSOracle(DOMAIN, EPSILON, seed, k=3, m=64),
        "ldpjs": lambda seed: LDPJoinSketchOracle(DOMAIN, EPSILON, seed, k=3, m=64),
        "hr": lambda seed: HadamardResponseOracle(DOMAIN, EPSILON, seed),
    }


@pytest.mark.parametrize("name", sorted(_factories()))
def test_merged_shards_match_single_collection(name):
    """Two shards with shared hashes reproduce one oracle's estimates.

    The perturbation draws differ between the single and sharded runs (the
    generator streams diverge), so we compare each merged estimate against
    the truth rather than bit-for-bit; state bookkeeping must match exactly.
    """
    make = _factories()[name]
    values = zipf_values(30_000, DOMAIN, 1.2, seed=3)
    half = values.size // 2

    merged = make(7)
    shard = make(7)  # same seed => shared published hashes/pools
    merged.collect(values[:half], rng=1)
    shard.collect(values[half:], rng=2)
    merged.merge(shard)

    assert merged.num_reports == values.size
    candidates = np.arange(8)
    truth = np.array([(values == c).sum() for c in candidates], dtype=float)
    estimates = merged.frequencies(candidates)
    # Unbiased estimators at this n: generous 4-sigma-ish bound.
    assert np.all(np.abs(estimates - truth) < 3_000)


def test_merge_rejects_mismatched_configuration():
    a = KRROracle(DOMAIN, EPSILON, 1)
    with pytest.raises(IncompatibleSketchError, match="domain"):
        a.merge(KRROracle(DOMAIN * 2, EPSILON, 1))
    with pytest.raises(IncompatibleSketchError, match="budget"):
        a.merge(KRROracle(DOMAIN, 8.0, 1))
    with pytest.raises(IncompatibleSketchError, match="cannot merge"):
        a.merge(OUEOracle(DOMAIN, EPSILON, 1))


def test_merge_rejects_unshared_hashes():
    values = zipf_values(1_000, DOMAIN, 1.2, seed=4)
    for make in (_factories()["flh"], _factories()["hcms"], _factories()["ldpjs"]):
        a, b = make(1), make(2)  # different seeds => different hashes
        a.collect(values, rng=1)
        b.collect(values, rng=2)
        with pytest.raises(IncompatibleSketchError, match="share"):
            a.merge(b)


class TestCentralizedCompatibilityGate:
    """Every mismatch class flows through ``require_merge_compatible``:
    the checks (and messages) are uniform across oracles, not a per-class
    hand-rolled subset — k, m, g, pool size, epsilon and hash seed are
    all rejected even when the base domain/budget checks pass."""

    def test_flh_rejects_mismatched_g_and_pool_size(self):
        a = FLHOracle(DOMAIN, EPSILON, 1, g=4, pool_size=32)
        with pytest.raises(IncompatibleSketchError, match="g mismatch"):
            a.merge(FLHOracle(DOMAIN, EPSILON, 1, g=8, pool_size=32))
        with pytest.raises(IncompatibleSketchError, match="pool_size mismatch"):
            a.merge(FLHOracle(DOMAIN, EPSILON, 1, g=4, pool_size=64))

    def test_olh_rejects_mismatched_g(self):
        a = OLHOracle(DOMAIN, EPSILON, 1, g=4)
        with pytest.raises(IncompatibleSketchError, match="g mismatch"):
            a.merge(OLHOracle(DOMAIN, EPSILON, 1, g=8))

    def test_hcms_rejects_mismatched_shape(self):
        a = HCMSOracle(DOMAIN, EPSILON, 1, k=3, m=64)
        with pytest.raises(IncompatibleSketchError, match="k mismatch"):
            a.merge(HCMSOracle(DOMAIN, EPSILON, 1, k=4, m=64))
        with pytest.raises(IncompatibleSketchError, match="m mismatch"):
            a.merge(HCMSOracle(DOMAIN, EPSILON, 1, k=3, m=32))

    def test_ldpjs_rejects_mismatched_shape(self):
        a = LDPJoinSketchOracle(DOMAIN, EPSILON, 1, k=3, m=64)
        with pytest.raises(IncompatibleSketchError, match="k mismatch"):
            a.merge(LDPJoinSketchOracle(DOMAIN, EPSILON, 1, k=4, m=64))
        with pytest.raises(IncompatibleSketchError, match="m mismatch"):
            a.merge(LDPJoinSketchOracle(DOMAIN, EPSILON, 1, k=3, m=32))

    def test_hash_seed_mismatch_names_the_published_state(self):
        """Seed mismatches surface as 'share the published ...' errors,
        never as silent state corruption."""
        a = FLHOracle(DOMAIN, EPSILON, 1, g=4, pool_size=32)
        b = FLHOracle(DOMAIN, EPSILON, 2, g=4, pool_size=32)
        with pytest.raises(
            IncompatibleSketchError, match="share the published hash pool"
        ):
            a.merge(b)

    def test_epsilon_mismatch_checked_before_state_is_touched(self):
        values = zipf_values(500, DOMAIN, 1.2, seed=4)
        a = FLHOracle(DOMAIN, EPSILON, 1, g=4, pool_size=32)
        a.collect(values, rng=1)
        before = a._counts.copy()
        b = FLHOracle(DOMAIN, 2.0, 1, g=4, pool_size=32)
        b.collect(values, rng=2)
        with pytest.raises(IncompatibleSketchError, match="budget"):
            a.merge(b)
        np.testing.assert_array_equal(a._counts, before)
        assert a.num_reports == values.size
