"""Tests for the ``repro-experiments`` command line."""

from __future__ import annotations

import csv
import subprocess
import sys

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.figures import ALL_EXPERIMENTS


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.experiment == "fig5"
        assert args.scale == 0.002
        assert args.trials is None
        assert args.out is None

    def test_run_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig8", "--scale", "0.01", "--trials", "5", "--seed", "9", "--out", str(tmp_path)]
        )
        assert args.scale == 0.01
        assert args.trials == 5
        assert args.seed == 9

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_all_is_accepted(self):
        args = build_parser().parse_args(["run", "all"])
        assert args.experiment == "all"

    def test_run_workers_flag(self):
        args = build_parser().parse_args(["run", "fig5", "--workers", "4"])
        assert args.workers == 4

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.datasets == ["zipf-1.1"]
        assert args.trial_axis == "exact"
        assert args.workers == 1

    def test_sweep_options(self):
        args = build_parser().parse_args(
            [
                "sweep", "--datasets", "facebook", "movielens",
                "--methods", "ldp-join-sketch", "hcms",
                "--epsilons", "1", "4", "--trials", "3",
                "--workers", "2", "--trial-axis", "grouped",
            ]
        )
        assert args.datasets == ["facebook", "movielens"]
        assert args.methods == ["ldp-join-sketch", "hcms"]
        assert args.epsilons == [1.0, 4.0]
        assert args.trial_axis == "grouped"


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_EXPERIMENTS:
            assert name in out

    def test_run_table2_writes_csv(self, tmp_path, capsys):
        code = main(["run", "table2", "--scale", "0.0003", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        with (tmp_path / "table2.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "dataset"
        assert len(rows) == 7  # header + six datasets

    def test_run_fig7_without_out(self, capsys):
        assert main(["run", "fig7", "--scale", "0.0003"]) == 0
        assert "communication" in capsys.readouterr().out

    def test_sweep_command_runs(self, tmp_path, capsys):
        code = main(
            [
                "sweep", "--datasets", "facebook", "--methods", "ldp-join-sketch",
                "--epsilons", "4", "--trials", "2", "--scale", "0.0005",
                "--k", "4", "--m", "64", "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LDPJoinSketch" in out
        with (tmp_path / "sweep.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "dataset"
        assert len(rows) == 2

    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "fig15" in result.stdout


class TestLintSubcommand:
    """``repro-experiments lint`` forwards to :mod:`repro.analysis`."""

    def test_lint_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 diagnostic(s)" in capsys.readouterr().out

    def test_lint_flags_violation(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "RPR101" in capsys.readouterr().out

    def test_lint_forwards_leading_options(self, capsys):
        # argparse REMAINDER cannot capture a leading --flag; the lint
        # subcommand is intercepted before parsing so this must work.
        assert main(["lint", "--list-rules"]) == 0
        assert "RPR103" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", str(tmp_path), "--format=json"]) == 1
        assert '"code": "RPR101"' in capsys.readouterr().out

    def test_lint_appears_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "lint" in capsys.readouterr().out

    def test_lint_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "lint", "--list-rules"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "RPR101" in result.stdout
