"""Tests for LDPJoinSketch+ (Algorithms 3 and 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LDPJoinSketchPlus, SketchParams
from repro.errors import ParameterError, ProtocolError
from repro.join import exact_join_size

from .conftest import zipf_values


def make_protocol(**overrides):
    defaults = dict(sample_rate=0.2, threshold=0.01)
    defaults.update(overrides)
    params = defaults.pop("params", SketchParams(k=5, m=256, epsilon=8.0))
    return LDPJoinSketchPlus(params, **defaults)


class TestConfiguration:
    def test_sample_rate_validation(self):
        with pytest.raises(ParameterError):
            make_protocol(sample_rate=0.0)
        with pytest.raises(ParameterError):
            make_protocol(sample_rate=1.0)

    def test_threshold_validation(self):
        with pytest.raises(ParameterError):
            make_protocol(threshold=0.0)
        with pytest.raises(ParameterError):
            make_protocol(threshold=1.5)

    def test_phase1_budget_must_match(self):
        with pytest.raises(ParameterError, match="same privacy budget"):
            make_protocol(phase1_params=SketchParams(k=5, m=256, epsilon=2.0))

    def test_phase1_shape_may_differ(self):
        protocol = make_protocol(phase1_params=SketchParams(k=3, m=64, epsilon=8.0))
        assert protocol.phase1_params.m == 64


class TestUserSplitting:
    def test_split_partitions_users(self):
        protocol = make_protocol(sample_rate=0.25)
        values = np.arange(1_000)
        rng = np.random.default_rng(1)
        sample, g1, g2 = protocol._split_users(values, rng, "A")
        assert sample.size == 250
        assert abs(g1.size - g2.size) <= 1
        recombined = np.sort(np.concatenate([sample, g1, g2]))
        assert np.array_equal(recombined, values)

    def test_too_few_users_rejected(self):
        protocol = make_protocol()
        with pytest.raises(ProtocolError, match="at least 4"):
            protocol._split_users(np.arange(3), np.random.default_rng(2), "A")

    def test_estimate_rejects_tiny_inputs(self):
        protocol = make_protocol()
        with pytest.raises(ProtocolError):
            protocol.estimate(np.arange(2), np.arange(100), 100, 3)


class TestEndToEnd:
    def test_accurate_on_skewed_data_with_large_budget(self):
        # eps=50 kills the privacy noise; remaining error is sketch error.
        protocol = make_protocol(
            params=SketchParams(k=5, m=512, epsilon=50.0), threshold=0.005
        )
        a = zipf_values(30_000, 256, 1.4, seed=4)
        b = zipf_values(30_000, 256, 1.4, seed=5)
        truth = exact_join_size(a, b, 256)
        result = protocol.estimate(a, b, 256, rng=6)
        assert abs(result.estimate - truth) / truth < 0.2

    def test_low_high_decomposition_sums_to_estimate(self):
        protocol = make_protocol()
        a = zipf_values(10_000, 128, 1.3, seed=7)
        b = zipf_values(10_000, 128, 1.3, seed=8)
        result = protocol.estimate(a, b, 128, rng=9)
        assert result.estimate == pytest.approx(
            result.low_estimate + result.high_estimate
        )

    def test_frequent_items_found_on_heavy_head(self):
        protocol = make_protocol(threshold=0.05)
        head = np.full(20_000, 3, dtype=np.int64)
        tail = zipf_values(10_000, 128, 1.05, seed=10)
        values = np.concatenate([head, tail])
        result = protocol.estimate(values, values, 128, rng=11)
        assert 3 in result.frequent_items

    def test_high_mass_estimates_clipped_to_population(self):
        protocol = make_protocol(threshold=0.05)
        values = np.full(5_000, 9, dtype=np.int64)
        result = protocol.estimate(values, values, 64, rng=12)
        assert 0.0 <= result.high_freq_mass_a <= values.size
        assert 0.0 <= result.high_freq_mass_b <= values.size

    def test_bit_accounting(self):
        params = SketchParams(k=5, m=256, epsilon=8.0)
        protocol = make_protocol(params=params, sample_rate=0.2)
        n = 10_000
        a = zipf_values(n, 64, 1.2, seed=13)
        result = protocol.estimate(a, a, 64, rng=14)
        sample = int(round(0.2 * n))
        assert result.phase1_bits == 2 * sample * params.report_bits
        assert result.phase2_bits == 2 * (n - sample) * params.report_bits
        assert result.fi_broadcast_bits == result.frequent_items.size * 6  # log2(64)

    def test_deterministic_given_seed(self):
        protocol = make_protocol()
        a = zipf_values(5_000, 64, 1.2, seed=15)
        r1 = protocol.estimate(a, a, 64, rng=16)
        r2 = protocol.estimate(a, a, 64, rng=16)
        assert r1.estimate == r2.estimate
        assert np.array_equal(r1.frequent_items, r2.frequent_items)

    def test_paper_faithful_correction_changes_result(self):
        a = np.concatenate(
            [np.full(8_000, 2, dtype=np.int64), zipf_values(8_000, 64, 1.1, 17)]
        )
        corrected = make_protocol(threshold=0.05).estimate(a, a, 64, rng=18)
        faithful = make_protocol(threshold=0.05, paper_faithful_correction=True).estimate(
            a, a, 64, rng=18
        )
        # Same randomness, different non-target subtraction -> different answer.
        assert corrected.estimate != faithful.estimate

    def test_group_mass_scaling(self):
        protocol = make_protocol()
        # 40% of the population mass, group of 100 out of 1000 users.
        assert protocol._group_mass(400.0, 100, 1000) == pytest.approx(40.0)
        faithful = make_protocol(paper_faithful_correction=True)
        assert faithful._group_mass(400.0, 100, 1000) == pytest.approx(400.0)

    def test_group_mass_clipped(self):
        protocol = make_protocol()
        assert protocol._group_mass(-5.0, 100, 1000) == 0.0
        assert protocol._group_mass(2_000.0, 100, 1000) == pytest.approx(100.0)


class TestSeparationMechanism:
    """Algorithm 5's claim: the partial join sizes are recovered separately.

    A plain sketch cannot answer "join size of the infrequent values only"
    at all — the frequent mass drowns it.  LDPJoinSketch+ can, because FAP
    reduces frequent values to removable uniform mass.  (End-to-end
    dominance over plain LDPJoinSketch requires the paper's tens of
    millions of users, where collision error towers over LDP noise; see
    EXPERIMENTS.md.)
    """

    def test_partial_join_sizes_recovered(self):
        from repro.join import FrequencyVector

        params = SketchParams(k=9, m=256, epsilon=50.0)
        rng_data = np.random.default_rng(19)
        heavy = np.repeat(np.array([7, 19, 101], dtype=np.int64), 25_000)
        tail_a = rng_data.integers(0, 512, size=60_000)
        tail_b = rng_data.integers(0, 512, size=60_000)
        a = np.concatenate([heavy, tail_a])
        b = np.concatenate([heavy, tail_b])

        plus = LDPJoinSketchPlus(params, sample_rate=0.2, threshold=0.05)
        result = plus.estimate(a, b, 512, rng=20)
        fi = result.frequent_items
        assert {7, 19, 101} <= set(fi.tolist())

        fa = FrequencyVector.from_values(a, 512)
        fb = FrequencyVector.from_values(b, 512)
        true_high = fa.restrict(fi).inner(fb.restrict(fi))
        true_low = fa.exclude(fi).inner(fb.exclude(fi))
        # The heavy part carries ~99% of the join; both parts must come
        # back at the right scale rather than bleeding into each other.
        assert result.high_estimate == pytest.approx(true_high, rel=0.15)
        assert abs(result.low_estimate - true_low) < 0.05 * true_high

    def test_comparable_to_plain_at_moderate_scale(self):
        """LDPJS+ stays within a small factor of plain LDPJS when FI is
        clean — the regression guard for the laptop-scale regime."""
        from repro.core import run_ldp_join_sketch

        params = SketchParams(k=9, m=128, epsilon=8.0)
        a = zipf_values(50_000, 1024, 1.3, seed=21)
        b = zipf_values(50_000, 1024, 1.3, seed=22)
        truth = exact_join_size(a, b, 1024)
        plus = LDPJoinSketchPlus(params, sample_rate=0.2, threshold=0.02)
        errors_plain, errors_plus = [], []
        for seed in range(5):
            plain = run_ldp_join_sketch(a, b, params, seed=seed).estimate
            errors_plain.append(abs(plain - truth))
            errors_plus.append(abs(plus.estimate(a, b, 1024, rng=seed).estimate - truth))
        assert np.mean(errors_plus) < 10 * np.mean(errors_plain) + 0.05 * truth
