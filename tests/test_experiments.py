"""Tests for the experiment harness (metrics, methods, runner, reporting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ZipfGenerator
from repro.errors import ParameterError
from repro.experiments import (
    FAGMSMethod,
    FLHMethod,
    HCMSMethod,
    KRRMethod,
    LDPJoinSketchMethod,
    LDPJoinSketchPlusMethod,
    ResultTable,
    absolute_error,
    default_methods,
    mean_squared_error,
    relative_error,
    run_trials,
    summarize,
)
from repro.experiments.harness import TrialRecord


@pytest.fixture(scope="module")
def instance():
    return ZipfGenerator(128, alpha=1.4).make_join_instance(8_000, rng=1)


class TestMetrics:
    def test_absolute_error_scalar(self):
        assert absolute_error(100.0, [90.0]) == 10.0

    def test_absolute_error_mean(self):
        assert absolute_error(100.0, [90.0, 130.0]) == 20.0

    def test_relative_error(self):
        assert relative_error(50.0, [60.0]) == pytest.approx(0.2)

    def test_relative_error_zero_truth(self):
        with pytest.raises(ParameterError):
            relative_error(0.0, [1.0])

    def test_mse(self):
        assert mean_squared_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(2.5)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ParameterError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_estimates_rejected(self):
        with pytest.raises(ParameterError):
            absolute_error(1.0, [])


class TestMethods:
    @pytest.mark.parametrize(
        "method",
        [
            FAGMSMethod(5, 128),
            KRRMethod(),
            FLHMethod(pool_size=64),
            HCMSMethod(5, 128),
            LDPJoinSketchMethod(5, 128),
            LDPJoinSketchPlusMethod(5, 128, 0.2, 0.05),
        ],
        ids=lambda m: m.name,
    )
    def test_each_method_estimates(self, method, instance):
        result = method.estimate(instance, epsilon=8.0, seed=2)
        truth = instance.true_join_size
        assert np.isfinite(result.estimate)
        # Generous sanity bound: right order of magnitude.
        assert abs(result.estimate - truth) < 3 * truth
        assert result.offline_seconds > 0
        assert result.uplink_bits > 0

    def test_default_methods_lineup(self):
        methods = default_methods()
        assert list(methods) == [
            "FAGMS",
            "k-RR",
            "Apple-HCMS",
            "FLH",
            "LDPJoinSketch",
            "LDPJoinSketch+",
        ]

    def test_default_methods_include_filter(self):
        methods = default_methods(include=["FAGMS", "LDPJoinSketch"])
        assert list(methods) == ["FAGMS", "LDPJoinSketch"]

    def test_fagms_is_nonprivate(self):
        assert FAGMSMethod().private is False
        assert LDPJoinSketchMethod().private is True

    def test_olh_method_runs(self, instance):
        from repro.experiments.methods import OLHMethod

        result = OLHMethod().estimate(instance, epsilon=8.0, seed=9)
        truth = instance.true_join_size
        assert abs(result.estimate - truth) < 3 * truth

    def test_calibration_flag_changes_estimate(self, instance):
        calibrated = KRRMethod(calibrate=True).estimate(instance, 1.0, seed=10)
        raw = KRRMethod(calibrate=False).estimate(instance, 1.0, seed=10)
        assert calibrated.estimate != raw.estimate

    def test_report_bits_for(self):
        assert LDPJoinSketchMethod(16, 1024).report_bits_for(10**6, 4.0) == 1 + 4 + 10
        assert KRRMethod().report_bits_for(1024, 4.0) == 10
        assert FAGMSMethod().report_bits_for(1024, 4.0) == 10


class TestHarness:
    def test_run_trials_count_and_fields(self, instance):
        method = FAGMSMethod(3, 64)
        records = run_trials(method, instance, epsilon=4.0, trials=3, seed=3)
        assert len(records) == 3
        for record in records:
            assert record.method == "FAGMS"
            assert record.dataset == instance.name
            assert record.truth == instance.true_join_size

    def test_trials_vary_by_seed(self, instance):
        method = LDPJoinSketchMethod(3, 64)
        records = run_trials(method, instance, epsilon=4.0, trials=3, seed=4)
        assert len({r.estimate for r in records}) == 3

    def test_deterministic_given_seed(self, instance):
        method = LDPJoinSketchMethod(3, 64)
        r1 = run_trials(method, instance, epsilon=4.0, trials=2, seed=5)
        r2 = run_trials(method, instance, epsilon=4.0, trials=2, seed=5)
        assert [x.estimate for x in r1] == [x.estimate for x in r2]

    def test_summarize_aggregates(self):
        records = [
            TrialRecord("m", "d", 1.0, 100.0, 90.0, 0.1, 0.01, 8, 64),
            TrialRecord("m", "d", 1.0, 100.0, 130.0, 0.3, 0.03, 8, 64),
        ]
        stats = summarize(records)
        assert stats["ae"] == pytest.approx(20.0)
        assert stats["re"] == pytest.approx(0.2)
        assert stats["mean_estimate"] == pytest.approx(110.0)
        assert stats["offline_seconds"] == pytest.approx(0.2)

    def test_summarize_empty(self):
        assert summarize([]) == {}

    def test_record_error_properties(self):
        record = TrialRecord("m", "d", 1.0, 200.0, 150.0, 0.0, 0.0, 0, 0)
        assert record.absolute_error == 50.0
        assert record.relative_error == 0.25


class TestResultTable:
    def make_table(self):
        table = ResultTable("Demo", ["method", "value"])
        table.add_row("a", 1.5)
        table.add_row("b", 2_000_000.0)
        return table

    def test_add_row_width_checked(self):
        table = ResultTable("T", ["x"])
        with pytest.raises(ParameterError):
            table.add_row(1, 2)

    def test_text_rendering(self):
        text = self.make_table().to_text()
        assert "Demo" in text
        assert "method" in text
        assert "2.000e+06" in text

    def test_notes_rendered(self):
        table = self.make_table()
        table.add_note("hello")
        assert "note: hello" in table.to_text()

    def test_column_extraction(self):
        assert self.make_table().column("method") == ["a", "b"]

    def test_column_missing(self):
        with pytest.raises(ParameterError):
            self.make_table().column("nope")

    def test_filtered(self):
        table = self.make_table()
        sub = table.filtered(method="a")
        assert len(sub.rows) == 1
        assert sub.rows[0][1] == 1.5

    def test_csv_roundtrip(self, tmp_path):
        import csv

        path = self.make_table().to_csv(tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["method", "value"]
        assert rows[1][0] == "a"
        assert len(rows) == 3

    def test_str_is_text(self):
        table = self.make_table()
        assert str(table) == table.to_text()
