"""Shared fixtures for the test suite.

Statistical tests follow one convention throughout: fixed seeds, sample
sizes chosen so the checked tolerance is at least four standard deviations
of the estimator under test.  Nothing here is flaky-by-design; a failure
means a code change moved an estimator, not that the dice were unlucky.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import SketchParams
from repro.hashing import HashPairs

try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is optional
    pass
else:
    # "ci" pins the property suites for continuous integration: no
    # wall-clock deadline (shared runners stall unpredictably), a
    # derandomized example stream (the run is a pure function of the test
    # code, so CI failures reproduce locally), and no example database
    # (no state leaking between runs).  The default "dev" profile keeps
    # hypothesis' randomised exploration for local development.
    _hypothesis_settings.register_profile(
        "ci", deadline=None, derandomize=True, database=None
    )
    _hypothesis_settings.register_profile("dev", deadline=None)
    _hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_params() -> SketchParams:
    """A tiny sketch configuration for exact/enumeration tests."""
    return SketchParams(k=3, m=8, epsilon=1.0)


@pytest.fixture
def small_pairs(small_params: SketchParams) -> HashPairs:
    """Hash pairs matching ``small_params``."""
    return HashPairs(small_params.k, small_params.m, seed=7)


@pytest.fixture
def medium_params() -> SketchParams:
    """A medium configuration for statistical tests."""
    return SketchParams(k=5, m=64, epsilon=4.0)


@pytest.fixture
def medium_pairs(medium_params: SketchParams) -> HashPairs:
    """Hash pairs matching ``medium_params``."""
    return HashPairs(medium_params.k, medium_params.m, seed=11)


def zipf_values(n: int, domain: int, alpha: float, seed: int) -> np.ndarray:
    """Skewed test data: ``n`` Zipf(``alpha``) draws over ``[0, domain)``."""
    ranks = np.arange(1, domain + 1, dtype=np.float64)
    pmf = ranks**-alpha
    pmf /= pmf.sum()
    generator = np.random.default_rng(seed)
    cdf = np.cumsum(pmf)
    cdf[-1] = 1.0
    return np.searchsorted(cdf, generator.random(n), side="right").astype(np.int64)


@pytest.fixture
def skewed_pair():
    """Two independent skewed streams plus their domain."""
    domain = 512
    return (
        zipf_values(20_000, domain, 1.3, seed=1),
        zipf_values(20_000, domain, 1.3, seed=2),
        domain,
    )
