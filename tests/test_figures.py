"""Miniature integration runs of every figure experiment.

Each test runs the figure function at a tiny scale and checks the table's
*structure* (columns, row coverage) plus cheap sanity conditions on the
numbers.  Shape fidelity against the paper is the benchmark suite's job;
these tests guarantee the experiment code paths stay runnable.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures

TINY = dict(scale=0.0003, trials=1, seed=5)


@pytest.fixture(scope="module")
def fig5_table():
    return figures.fig5_accuracy(datasets=("tpcds", "facebook"), **TINY)


class TestTable2:
    def test_rows_and_columns(self):
        table = figures.table2_datasets(scale=0.0003, seed=5)
        assert len(table.rows) == 6
        assert "paper_domain" in table.headers
        sizes = table.column("sample_size")
        assert all(s >= 100 for s in sizes)


class TestFig5:
    def test_all_methods_present(self, fig5_table):
        methods = set(fig5_table.column("method"))
        assert methods == {
            "FAGMS",
            "k-RR",
            "Apple-HCMS",
            "FLH",
            "LDPJoinSketch",
            "LDPJoinSketch+",
        }

    def test_re_nonnegative(self, fig5_table):
        assert all(re >= 0 for re in fig5_table.column("re"))

    def test_truth_consistent_within_dataset(self, fig5_table):
        for dataset in ("tpcds", "facebook"):
            truths = set(fig5_table.filtered(dataset=dataset).column("truth"))
            assert len(truths) == 1


class TestFig6:
    def test_space_grows_with_m(self):
        table = figures.fig6_space(widths=(256, 512), **TINY)
        ldpjs = table.filtered(method="LDPJoinSketch")
        spaces = ldpjs.column("space_kb")
        assert spaces[1] > spaces[0]

    def test_plus_uses_more_space_at_same_m(self):
        table = figures.fig6_space(widths=(256,), **TINY)
        plus_space = table.filtered(method="LDPJoinSketch+").column("space_kb")[0]
        plain_space = table.filtered(method="LDPJoinSketch").column("space_kb")[0]
        assert plus_space == pytest.approx(3 * plain_space)


class TestFig7:
    def test_bits_accounting(self):
        table = figures.fig7_communication(scale=0.0003, seed=5)
        for row_clients, row_bits, row_total in zip(
            table.column("clients"), table.column("bits_per_report"), table.column("total_bits")
        ):
            assert row_total == row_clients * row_bits

    def test_krr_costs_most_on_large_domain(self):
        table = figures.fig7_communication(scale=0.0003, seed=5, datasets=("zipf-1.1",))
        bits = dict(zip(table.column("method"), table.column("bits_per_report")))
        assert bits["k-RR"] >= bits["LDPJoinSketch"]


class TestFig8:
    def test_grid_coverage(self):
        table = figures.fig8_epsilon(
            datasets=("facebook",), epsilons=(1.0, 8.0), **TINY
        )
        assert len(table.rows) == 6 * 2  # methods x epsilons
        assert set(table.column("epsilon")) == {1.0, 8.0}


class TestFig9:
    def test_sweep_structure(self):
        table = figures.fig9_sketch_size(
            datasets=("facebook",), widths=(256,), depths=(5,), **TINY
        )
        sweeps = set(table.column("sweep"))
        assert sweeps == {"m", "k"}
        assert len(table.rows) == 8  # 4 methods x (1 width + 1 depth)


class TestFig10:
    def test_rates_covered(self):
        table = figures.fig10_sampling_rate(rates=(0.1, 0.3), scale=0.0003, trials=1, seed=5)
        assert table.column("r") == [0.1, 0.3]


class TestFig11:
    def test_thresholds_covered_and_fi_monotone(self):
        table = figures.fig11_threshold(
            thresholds=(0.01, 0.2), scale=0.0003, trials=1, seed=5
        )
        fi_sizes = table.column("fi_size")
        assert fi_sizes[0] >= fi_sizes[1]  # larger theta -> fewer frequent items


class TestFig12:
    def test_alpha_panels(self):
        table = figures.fig12_skewness(alphas=(1.1, 1.9), **TINY)
        assert set(table.column("dataset")) == {"zipf-1.1", "zipf-1.9"}


class TestFig13:
    def test_timings_positive(self):
        table = figures.fig13_efficiency(datasets=("facebook",), **TINY)
        assert all(t > 0 for t in table.column("offline_seconds"))
        assert all(t >= 0 for t in table.column("online_seconds"))


class TestFig14:
    def test_mechanisms_and_mse(self):
        table = figures.fig14_frequency(
            datasets=("facebook",), epsilons=(1.0, 8.0), scale=0.0003, trials=1, seed=5
        )
        assert set(table.column("mechanism")) == {
            "k-RR",
            "Apple-HCMS",
            "FLH",
            "LDPJoinSketch",
        }
        assert all(mse >= 0 for mse in table.column("mse"))

    def test_krr_improves_with_epsilon(self):
        table = figures.fig14_frequency(
            datasets=("facebook",), epsilons=(0.5, 8.0), scale=0.0003, trials=1, seed=5
        )
        krr = table.filtered(mechanism="k-RR")
        assert krr.column("mse")[0] > krr.column("mse")[1]


class TestFig15:
    def test_queries_and_methods(self):
        table = figures.fig15_multiway(
            epsilons=(2.0,), scale=0.0003, trials=1, seed=5, domain=128, m=64,
            flh_pool_size=16,
        )
        queries = set(table.column("query"))
        assert queries == {"3-way", "4-way"}
        three_way = set(table.filtered(query="3-way").column("method"))
        assert three_way == {"Compass", "LDPJoinSketch", "k-RR", "Apple-HCMS", "FLH"}
        four_way = set(table.filtered(query="4-way").column("method"))
        assert four_way == {"Compass", "LDPJoinSketch"}


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {"table2"} | {f"fig{i}" for i in range(5, 16)}
        assert set(figures.ALL_EXPERIMENTS) == expected
