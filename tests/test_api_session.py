"""Tests for :class:`repro.api.JoinSession` — incremental, mergeable,
serialisable collection."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EstimateResult, JoinSession
from repro.core import SketchParams, build_sketch, encode_reports
from repro.errors import IncompatibleSketchError, ParameterError, ProtocolError
from repro.join import exact_join_size

from .conftest import zipf_values


@pytest.fixture
def params() -> SketchParams:
    return SketchParams(k=5, m=128, epsilon=4.0)


@pytest.fixture
def streams():
    return (
        zipf_values(20_000, 256, 1.3, seed=1),
        zipf_values(20_000, 256, 1.3, seed=2),
    )


class TestCollectAndEstimate:
    def test_two_way_estimate_is_reasonable(self, params, streams):
        a, b = streams
        truth = exact_join_size(a, b, 256)
        session = JoinSession(params.with_epsilon(8.0), seed=3)
        session.collect("A", a)
        session.collect("B", b)
        result = session.estimate()
        assert isinstance(result, EstimateResult)
        assert abs(result.estimate - truth) / truth < 0.5

    def test_accounting(self, params, streams):
        a, b = streams
        session = JoinSession(params, seed=3)
        session.collect("A", a)
        session.collect("B", b)
        result = session.estimate("A", "B")
        assert result.uplink_bits == (a.size + b.size) * params.report_bits
        assert result.sketch_bytes == 2 * params.k * params.m * 8
        assert result.offline_seconds > 0
        assert result.online_seconds >= 0
        assert result.ledger.worst_case_epsilon() == pytest.approx(4.0)
        assert {g for g, _, _ in result.ledger.charges} == {"A", "B"}

    def test_incremental_equals_one_shot(self, params, streams):
        """Batch boundaries don't matter: pre-transform integer sums."""
        a, b = streams
        pairs_owner = JoinSession(params, seed=9)
        shared = pairs_owner.pairs

        one_shot = JoinSession(params, pairs=shared)
        # chunk_size >= n pins the fused path to the single-batch RNG
        # stream, so the pre-encoded batches below carry the same reports.
        one_shot.collect("A", a, seed=11, chunk_size=a.size)
        one_shot.collect("B", b, seed=12, chunk_size=b.size)

        incremental = JoinSession(params, pairs=shared)
        # Same client reports, delivered as pre-encoded wire batches in
        # three chunks per stream.
        for values, stream, seed in ((a, "A", 11), (b, "B", 12)):
            batch = encode_reports(values, params, shared[0], np.random.default_rng(seed))
            for lo, hi in ((0, 7_000), (7_000, 7_001), (7_001, values.size)):
                from repro.core import ReportBatch

                incremental.collect(
                    stream,
                    ReportBatch(
                        batch.ys[lo:hi], batch.rows[lo:hi], batch.cols[lo:hi], params
                    ),
                )
        e1 = one_shot.estimate().estimate
        e2 = incremental.estimate().estimate
        assert e1 == e2  # bit-for-bit

    def test_collect_seed_matches_manual_encoding(self, params, streams):
        """collect(values, seed=s) is exactly Algorithm 1 under seed s."""
        a, _ = streams
        session = JoinSession(params, seed=4)
        session.collect("A", a, seed=21, chunk_size=a.size)
        manual = build_sketch(
            encode_reports(a, params, session.pairs[0], np.random.default_rng(21)),
            session.pairs[0],
        )
        # Same reports; only the accumulation grouping differs, and the
        # integer path is exact, so counters agree to float tolerance
        # (absolute, scaled to the largest counter — near-zero cells have
        # no meaningful relative error).
        np.testing.assert_allclose(
            session.sketch("A").counts,
            manual.counts,
            rtol=1e-9,
            atol=1e-9 * float(np.abs(manual.counts).max()),
        )

    def test_frequencies_and_second_moment(self, params):
        values = np.repeat(np.arange(8), 2_000)
        session = JoinSession(params.with_epsilon(8.0), seed=5)
        session.collect("X", values)
        est = session.frequencies("X", np.arange(8))
        assert np.all(np.abs(est - 2_000) < 1_500)
        f2 = session.second_moment("X")
        truth = float(8 * 2_000**2)
        assert abs(f2 - truth) / truth < 0.5

    def test_empty_stream_queries_rejected(self, params):
        session = JoinSession(params, seed=6)
        session.collect("A", np.zeros(0, dtype=np.int64))
        with pytest.raises(ProtocolError, match="no reports"):
            session.sketch("A")
        with pytest.raises(ProtocolError, match="unknown stream"):
            session.sketch("missing")

    def test_report_batch_params_must_match(self, params, streams):
        a, _ = streams
        session = JoinSession(params, seed=7)
        other = SketchParams(params.k, params.m, 9.0)
        bad = encode_reports(a, other, session.pairs[0], np.random.default_rng(0))
        with pytest.raises(IncompatibleSketchError, match="do not match"):
            session.collect("A", bad)

    def test_stream_attribute_binding_enforced(self, params):
        session = JoinSession(params, attribute_widths=[128, 128], seed=8)
        session.collect("T1", np.arange(10), attribute=0)
        with pytest.raises(ProtocolError, match="bound to attribute"):
            session.collect("T1", np.arange(10), attribute=1)
        with pytest.raises(ProtocolError, match="end tables"):
            session.collect_pair("T1", np.arange(10), np.arange(10))


class TestSharding:
    def test_merged_shards_reproduce_single_sketch_bitwise(self, params, streams):
        a, b = streams
        coordinator = JoinSession(params, seed=42)
        single = JoinSession(params, pairs=coordinator.pairs)
        (a1, a2), (b1, b2) = np.array_split(a, 2), np.array_split(b, 2)
        single.collect("A", a1, seed=1)
        single.collect("A", a2, seed=2)
        single.collect("B", b1, seed=3)
        single.collect("B", b2, seed=4)

        shard1 = coordinator.spawn_shard()
        shard2 = coordinator.spawn_shard()
        shard1.collect("A", a1, seed=1)
        shard1.collect("B", b1, seed=3)
        shard2.collect("A", a2, seed=2)
        shard2.collect("B", b2, seed=4)
        coordinator.merge(shard1).merge(shard2)

        assert coordinator.estimate().estimate == single.estimate().estimate
        np.testing.assert_array_equal(
            coordinator.sketch("A").counts, single.sketch("A").counts
        )
        assert coordinator.num_reports("A") == a.size

    def test_merge_keeps_parallel_composition(self, params, streams):
        a, b = streams
        coordinator = JoinSession(params, seed=13)
        shard1 = coordinator.spawn_shard()
        shard2 = coordinator.spawn_shard()
        shard1.collect("A", a[:100], seed=1)
        shard2.collect("A", a[100:200], seed=2)
        coordinator.merge(shard1).merge(shard2)
        # Disjoint cohorts: worst-case spend stays epsilon, not 2 epsilon.
        assert coordinator.ledger.worst_case_epsilon() == pytest.approx(params.epsilon)
        groups = [g for g, _, _ in coordinator.ledger.charges]
        assert len(groups) == len(set(groups)) == 2

    def test_merge_rejects_different_params(self, params):
        s1 = JoinSession(params, seed=1)
        s2 = JoinSession(params.with_epsilon(9.0), seed=1)
        with pytest.raises(IncompatibleSketchError, match="budget"):
            s1.merge(s2)

    def test_merge_rejects_different_pairs(self, params):
        s1 = JoinSession(params, seed=1)
        s2 = JoinSession(params, seed=2)
        with pytest.raises(IncompatibleSketchError, match="hash pairs"):
            s1.merge(s2)

    def test_merge_rejects_non_session(self, params):
        with pytest.raises(IncompatibleSketchError):
            JoinSession(params, seed=1).merge("not a session")

    def test_merge_rejects_self(self, params):
        # Regression: self-merge used to append to the ledger while
        # iterating it — an unbounded loop.
        session = JoinSession(params, seed=1)
        session.collect("A", np.arange(32))
        with pytest.raises(IncompatibleSketchError, match="itself"):
            session.merge(session)

    def test_sketch_level_merge_checks_shared(self, params, streams):
        """JoinSession.merge and LDPJoinSketch.merge enforce the same rules."""
        a, _ = streams
        s1 = JoinSession(params, seed=1)
        s2 = JoinSession(params, seed=2)
        s1.collect("A", a[:500], seed=3)
        s2.collect("A", a[500:1000], seed=4)
        with pytest.raises(IncompatibleSketchError):
            s1.sketch("A").merge(s2.sketch("A"))  # different pairs

    def test_serialisation_round_trip(self, params, streams):
        a, b = streams
        session = JoinSession(params, seed=3)
        session.collect("A", a)
        session.collect("B", b)
        payload = json.loads(json.dumps(session.to_dict()))
        restored = JoinSession.from_dict(payload)
        assert restored.estimate().estimate == session.estimate().estimate
        assert restored.num_reports("A") == session.num_reports("A")
        # A restored shard keeps merging with the original lineage.
        session.merge(restored)
        assert session.num_reports("A") == 2 * a.size


class TestLedgerMergeInvariance:
    """Regression suite for the cross-process ledger-corruption bug.

    ``merge`` used to rename colliding charge groups with a fixed
    ``group@{label}`` tag and no uniqueness probing.  Labels are a
    per-process counter (``shard1``, ``shard2``, ...), so two sessions
    rebuilt via ``from_dict`` in different processes rebooted with the
    SAME label; merging their disjoint cohorts then landed both charges
    in one group and sequential composition doubled the reported spend
    (2eps instead of eps).  These tests pin the repaired invariant:
    K disjoint shards keep worst-case spend eps through every merge
    path, any labels, any serialisation interleaving.
    """

    def _shards(self, params, values, count, seed=13):
        coordinator = JoinSession(params, seed=seed)
        shards = []
        for index, chunk in enumerate(np.array_split(values, count)):
            shard = coordinator.spawn_shard()
            shard.collect("A", chunk, seed=index + 1)
            shards.append(shard)
        return coordinator, shards

    def test_pinned_2eps_regression_same_label(self, params, streams):
        # The exact pre-fix failure: two shards forced onto one label (as
        # happens when both were from_dict-rebooted in sibling processes).
        a, _ = streams
        coordinator, (shard1, shard2) = self._shards(params, a[:200], 2)
        shard1._label = shard2._label = "shard1"
        coordinator.merge(shard1).merge(shard2)
        groups = [g for g, _, _ in coordinator.ledger.charges]
        assert len(groups) == len(set(groups)) == 2
        # Before the fix this read 2 * eps — sequential composition of two
        # cohorts that never shared a user.
        assert coordinator.ledger.worst_case_epsilon() == pytest.approx(
            params.epsilon
        )

    def test_cross_process_round_trip_keeps_epsilon(self, params, streams):
        a, _ = streams
        coordinator, shards = self._shards(params, a[:300], 3)
        for shard in shards:
            rebooted = JoinSession.from_dict(
                json.loads(json.dumps(shard.to_dict()))
            )
            coordinator.merge(rebooted)
        assert coordinator.ledger.worst_case_epsilon() == pytest.approx(
            params.epsilon
        )
        groups = [g for g, _, _ in coordinator.ledger.charges]
        assert len(groups) == len(set(groups)) == 3

    def test_label_survives_serialisation(self, params, streams):
        a, _ = streams
        session = JoinSession(params, seed=3)
        session.collect("A", a[:50])
        payload = json.loads(json.dumps(session.to_dict()))
        assert payload["label"] == session._label
        restored = JoinSession.from_dict(payload)
        assert restored._label == session._label

    def test_legacy_payload_without_label_still_loads(self, params, streams):
        a, _ = streams
        session = JoinSession(params, seed=3)
        session.collect("A", a[:50])
        payload = json.loads(json.dumps(session.to_dict()))
        del payload["label"]  # pre-fix payloads carried no label
        restored = JoinSession.from_dict(payload)
        assert restored.num_reports("A") == 50
        assert restored._label  # fresh counter label, never empty

    def test_partial_merge_path_keeps_epsilon(self, params, streams):
        a, _ = streams
        coordinator, shards = self._shards(params, a[:300], 3)
        for shard in shards:
            coordinator.merge(shard.to_partial())
        assert coordinator.ledger.worst_case_epsilon() == pytest.approx(
            params.epsilon
        )
        groups = [g for g, _, _ in coordinator.ledger.charges]
        assert len(groups) == len(set(groups)) == 3

    @given(
        shard_count=st.integers(min_value=2, max_value=5),
        labels=st.lists(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127
                ),
                min_size=1,
                max_size=8,
            ),
            min_size=5,
            max_size=5,
        ),
        serialize_mask=st.integers(min_value=0, max_value=31),
        use_partials=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_disjoint_shards_keep_epsilon(
        self, shard_count, labels, serialize_mask, use_partials
    ):
        """K disjoint shards always merge to worst-case eps — any labels,
        any per-shard serialisation round-trip, either merge path."""
        params = SketchParams(k=3, m=32, epsilon=4.0)
        values = np.arange(shard_count * 16)
        coordinator, shards = self._shards(params, values, shard_count, seed=7)
        for index, shard in enumerate(shards):
            shard._label = labels[index]
            if (serialize_mask >> index) & 1:
                shard = JoinSession.from_dict(
                    json.loads(json.dumps(shard.to_dict()))
                )
            coordinator.merge(shard.to_partial() if use_partials else shard)
        assert coordinator.ledger.worst_case_epsilon() == pytest.approx(
            params.epsilon
        )
        groups = [g for g, _, _ in coordinator.ledger.charges]
        assert len(groups) == len(set(groups)) == shard_count
        assert coordinator.num_reports("A") == values.size


class TestChainQueries:
    def test_chain_session_matches_protocol(self):
        """Feeding identical wire batches, session == LDPCompassProtocol."""
        from repro.core import LDPCompassProtocol

        params = SketchParams(k=5, m=64, epsilon=8.0)
        rng = np.random.default_rng(17)
        t1 = rng.integers(0, 64, 20_000)
        mid = (rng.integers(0, 64, 20_000), rng.integers(0, 64, 20_000))
        t3 = rng.integers(0, 64, 20_000)

        session = JoinSession(params, attribute_widths=[64, 64], seed=19)
        protocol = LDPCompassProtocol.from_pairs(session.pairs, params.epsilon)
        r1 = protocol.encode_end(0, t1, np.random.default_rng(1))
        rmid = protocol.encode_middle(0, *mid, np.random.default_rng(2))
        r3 = protocol.encode_end(1, t3, np.random.default_rng(3))

        session.collect("T1", r1, attribute=0)
        session.collect_pair("T2", rmid, left_attribute=0)
        session.collect("T3", r3, attribute=1)
        result = session.estimate_chain()

        expected = protocol.estimate_chain(
            protocol.build_end(0, r1),
            [protocol.build_middle(0, rmid)],
            protocol.build_end(1, r3),
        )
        assert result.estimate == pytest.approx(expected, rel=1e-9)
        assert result.uplink_bits == r1.total_bits + rmid.total_bits + r3.total_bits
        assert result.sketch_bytes > 0

    def test_chain_stream_order_validated(self):
        params = SketchParams(k=3, m=32, epsilon=4.0)
        session = JoinSession(params, attribute_widths=[32, 32], seed=1)
        session.collect("T1", np.arange(16), attribute=0)
        session.collect("T3", np.arange(16), attribute=1)
        with pytest.raises(ProtocolError, match="at least two"):
            session.estimate_chain(["T1"])
        with pytest.raises(ProtocolError, match="distinct"):
            session.estimate_chain(["T1", "T1"])

    def test_chain_rejects_repeated_stream(self):
        # Regression: the self-join guard must cover estimate_chain too —
        # a sketch chained with itself keeps its noise energy undebiased.
        params = SketchParams(k=3, m=32, epsilon=4.0)
        session = JoinSession(params, seed=1)
        session.collect("A", np.arange(16))
        with pytest.raises(ProtocolError, match="distinct"):
            session.estimate_chain(["A", "A"])

    def test_middle_batch_attribute_bounds(self):
        params = SketchParams(k=3, m=32, epsilon=4.0)
        session = JoinSession(params, seed=1)  # one attribute: no middles
        with pytest.raises(ParameterError, match="left_attribute"):
            session.collect_pair("M", np.arange(4), np.arange(4))

    def test_estimate_rejects_same_stream_twice(self):
        # Regression: sketch x itself is not a join estimate — the noise
        # products do not cancel; second_moment is the debiased read-out.
        params = SketchParams(k=3, m=32, epsilon=4.0)
        session = JoinSession(params, seed=1)
        session.collect("A", np.arange(16))
        with pytest.raises(ProtocolError, match="second_moment"):
            session.estimate("A", "A")

    def test_estimate_rejects_cross_attribute_pair(self):
        params = SketchParams(k=3, m=32, epsilon=4.0)
        session = JoinSession(params, attribute_widths=[32, 32], seed=1)
        session.collect("T1", np.arange(16), attribute=0)
        session.collect("T3", np.arange(16), attribute=1)
        with pytest.raises(ProtocolError, match="different join"):
            session.estimate("T1", "T3")
