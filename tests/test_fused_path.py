"""Fused encode→accumulate path: bit-for-bit equivalence + memory bounds.

The fused kernel (:func:`repro.core.client.encode_reports_into`) and the
bincount aggregation helpers replace the batched-encode + ``np.add.at``
pipeline.  These tests pin the replacements to the reference paths under
identical seeds — including odd chunk boundaries — and verify the fused
path's chunk-bounded memory claim with tracemalloc.
"""

from __future__ import annotations

import json
import tracemalloc

import numpy as np
import pytest

from repro.accumulate import scatter_add, scatter_add_signed_units, scatter_count
from repro.api import JoinSession
from repro.core import (
    LDPJoinSketchAggregator,
    SketchParams,
    build_sketch,
    encode_report,
    encode_reports,
    encode_reports_into,
)
from repro.errors import ParameterError
from repro.hashing import HashPairs
from repro.serialization import decode_array, encode_array


@pytest.fixture
def params():
    return SketchParams(k=5, m=64, epsilon=3.0)


@pytest.fixture
def pairs(params):
    return HashPairs(params.k, params.m, seed=101)


def _reference_accumulate(batch, params):
    """The pre-fused reference: ``np.add.at`` on an integer accumulator."""
    out = np.zeros((params.k, params.m), dtype=np.int64)
    np.add.at(
        out,
        (batch.rows.astype(np.int64), batch.cols.astype(np.int64)),
        batch.ys.astype(np.int64),
    )
    return out


class TestScatterHelpers:
    def test_scatter_add_matches_add_at(self):
        rng = np.random.default_rng(0)
        out = rng.normal(size=(7, 33))
        expected = out.copy()
        rows = rng.integers(0, 7, size=5_000)
        cols = rng.integers(0, 33, size=5_000)
        weights = rng.normal(size=5_000)
        np.add.at(expected, (rows, cols), weights)
        scatter_add(out, (rows, cols), weights)
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_scatter_add_signed_units_exact(self):
        rng = np.random.default_rng(1)
        out = np.zeros((4, 16, 8), dtype=np.int64)
        expected = out.copy()
        idx = tuple(rng.integers(0, s, size=20_000) for s in out.shape)
        ys = rng.choice(np.array([-1, 1], dtype=np.int8), size=20_000)
        np.add.at(expected, idx, ys.astype(np.int64))
        scatter_add_signed_units(out, idx, ys)
        assert np.array_equal(out, expected)

    def test_scatter_count_exact(self):
        rng = np.random.default_rng(2)
        out = np.zeros((512, 9), dtype=np.int64)
        expected = out.copy()
        idx = (rng.integers(0, 512, size=30_000), rng.integers(0, 9, size=30_000))
        np.add.at(expected, idx, 1)
        scatter_count(out, idx)
        assert np.array_equal(out, expected)

    def test_empty_updates_are_noops(self):
        out = np.ones((3, 4), dtype=np.int64)
        scatter_add_signed_units(
            out, (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)), np.zeros(0)
        )
        scatter_count(out, (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)))
        assert np.array_equal(out, np.ones((3, 4), dtype=np.int64))

    def test_index_arity_checked(self):
        with pytest.raises(ValueError, match="one index array per"):
            scatter_count(np.zeros((2, 2), dtype=np.int64), (np.zeros(1, dtype=np.int64),))


class TestFusedEquivalence:
    @pytest.mark.parametrize("n,chunk_size", [
        (10_000, 4_096),   # n not divisible by chunk_size
        (10_000, 10_000),  # exactly one chunk
        (10_000, 64_000),  # chunk larger than n
        (10_000, 1),       # degenerate chunking
        (10_000, 3_333),   # odd chunk with remainder
        (1, 4_096),        # single client
        (0, 4_096),        # empty batch
    ])
    def test_bit_for_bit_against_chunked_encode_reports(self, params, pairs, n, chunk_size):
        values = np.random.default_rng(7).integers(0, 5_000, size=n)
        out = np.zeros((params.k, params.m), dtype=np.int64)
        count = encode_reports_into(
            values, params, pairs, out, np.random.default_rng(42), chunk_size=chunk_size
        )
        assert count == n
        # Reference: the same chunks through encode_reports + np.add.at,
        # consuming the same generator stream.
        reference = np.zeros((params.k, params.m), dtype=np.int64)
        rng = np.random.default_rng(42)
        for start in range(0, n, chunk_size):
            batch = encode_reports(values[start : start + chunk_size], params, pairs, rng)
            reference += _reference_accumulate(batch, params)
        assert np.array_equal(out, reference)

    def test_single_chunk_matches_single_batch(self, params, pairs):
        """chunk_size >= n reproduces the one-shot encode_reports stream."""
        values = np.random.default_rng(8).integers(0, 5_000, size=2_500)
        out = np.zeros((params.k, params.m), dtype=np.int64)
        encode_reports_into(
            values, params, pairs, out, np.random.default_rng(9), chunk_size=1 << 20
        )
        batch = encode_reports(values, params, pairs, np.random.default_rng(9))
        assert np.array_equal(out, _reference_accumulate(batch, params))

    def test_batched_encode_matches_scalar_reference(self, params, pairs):
        """encode_reports stays pinned to the scalar Algorithm 1 formula."""
        h_free = SketchParams(params.k, params.m, 100.0)  # no flips
        values = np.arange(40)
        batch = encode_reports(values, h_free, pairs, np.random.default_rng(3))
        for i, d in enumerate(values):
            y, j, l = int(batch.ys[i]), int(batch.rows[i]), int(batch.cols[i])
            # Scalar re-derivation of the payload for the sampled (j, l).
            bucket = int(pairs.bucket(j, np.asarray([d]))[0])
            sign = int(pairs.sign(j, np.asarray([d]))[0])
            from repro.transform import hadamard_entry

            assert y == sign * hadamard_entry(bucket, l, h_free.m)

    def test_scalar_encode_report_unchanged(self, params, pairs):
        out1 = encode_report(17, params, pairs, np.random.default_rng(5))
        out2 = encode_report(17, params, pairs, np.random.default_rng(5))
        assert out1 == out2
        y, j, l = out1
        assert y in (-1, 1) and 0 <= j < params.k and 0 <= l < params.m

    def test_build_sketch_matches_fused_session(self, params, pairs):
        """Oracle/sketch construction is unchanged by the fused rewiring."""
        values = np.random.default_rng(11).integers(0, 1_000, size=6_000)
        batch = encode_reports(values, params, pairs, np.random.default_rng(12))
        direct = build_sketch(batch, pairs)
        agg = LDPJoinSketchAggregator(params, pairs).ingest(batch)
        np.testing.assert_allclose(direct.counts, agg.sketch().counts, rtol=1e-12)

    def test_merge_results_unchanged_by_fused_ingestion(self, params):
        """Sharded sessions reproduce the single-collector accumulator."""
        coordinator = JoinSession(params, seed=21)
        s1 = coordinator.spawn_shard()
        s2 = coordinator.spawn_shard()
        rng = np.random.default_rng(22)
        a1, a2 = rng.integers(0, 500, size=9_000), rng.integers(0, 500, size=4_321)
        s1.collect("A", a1, seed=31)
        s2.collect("A", a2, seed=32)
        merged = s1.merge(s2)
        single = coordinator.spawn_shard()
        single.collect("A", a1, seed=31).collect("A", a2, seed=32)
        assert np.array_equal(
            merged._streams["A"].raw, single._streams["A"].raw
        )

    def test_out_validation(self, params, pairs):
        with pytest.raises(ParameterError, match="integer ndarray"):
            encode_reports_into([1], params, pairs, np.zeros((params.k, params.m)))
        with pytest.raises(ParameterError, match="does not match"):
            encode_reports_into(
                [1], params, pairs, np.zeros((params.k, params.m + 1), dtype=np.int64)
            )
        with pytest.raises(ParameterError, match="chunk_size"):
            encode_reports_into(
                [1],
                params,
                pairs,
                np.zeros((params.k, params.m), dtype=np.int64),
                chunk_size=0,
            )


class TestChunkBoundedMemory:
    def test_fused_path_peak_memory_is_chunk_bounded(self):
        """No O(n) allocations: peak transient memory tracks chunk_size, not n."""
        params = SketchParams(k=6, m=256, epsilon=3.0)
        pairs = HashPairs(params.k, params.m, seed=55)
        chunk_size = 4_096
        n = 600_000
        values = np.random.default_rng(0).integers(0, 10_000, size=n)
        out = np.zeros((params.k, params.m), dtype=np.int64)
        # Warm up lazy imports/caches so they don't count against the peak.
        encode_reports_into(values[:chunk_size], params, pairs, out, 1, chunk_size=chunk_size)
        tracemalloc.start()
        encode_reports_into(values, params, pairs, out, 2, chunk_size=chunk_size)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The per-chunk pipeline allocates a few dozen chunk-sized arrays
        # (~100 bytes/client); an O(n) path would need >= 3 n-sized int64
        # arrays = 14.4 MB.  Bound the peak well below that, scaled to the
        # chunk: 4096 clients x 400 bytes = 1.6 MB plus the accumulator.
        assert peak < chunk_size * 400 + out.nbytes
        # And the bound must not scale with n: re-running at double n
        # stays under the same ceiling.
        doubled = np.concatenate([values, values])
        tracemalloc.start()
        encode_reports_into(doubled, params, pairs, out, 3, chunk_size=chunk_size)
        _, peak2 = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak2 < chunk_size * 400 + out.nbytes


class TestSerializationCompat:
    def test_session_roundtrips_old_list_payloads(self, params):
        session = JoinSession(params, seed=61)
        session.collect("A", np.random.default_rng(62).integers(0, 300, size=3_000))
        payload = session.to_dict()
        # Downgrade to the legacy wire format: nested lists.
        for entry in payload["streams"].values():
            entry["raw"] = decode_array(entry["raw"], np.int64).tolist()
        restored = JoinSession.from_dict(json.loads(json.dumps(payload)))
        assert np.array_equal(
            restored._streams["A"].raw, session._streams["A"].raw
        )

    def test_sketch_roundtrips_old_list_payloads(self, params, pairs):
        values = np.random.default_rng(63).integers(0, 300, size=3_000)
        sketch = build_sketch(
            encode_reports(values, params, pairs, np.random.default_rng(64)), pairs
        )
        payload = sketch.to_dict()
        payload["counts"] = decode_array(payload["counts"], np.float64).tolist()
        from repro.core import LDPJoinSketch

        restored = LDPJoinSketch.from_dict(json.loads(json.dumps(payload)))
        assert np.array_equal(restored.counts, sketch.counts)

    def test_packed_format_roundtrip_exact(self):
        rng = np.random.default_rng(65)
        for arr in (
            rng.integers(-3, 4, size=(5, 7)),
            rng.integers(-(2**40), 2**40, size=(3,)),
            rng.normal(size=(4, 4)),
            np.zeros((2, 0), dtype=np.int64),
        ):
            decoded = decode_array(json.loads(json.dumps(encode_array(arr))), arr.dtype)
            assert decoded.dtype == arr.dtype
            assert np.array_equal(decoded, arr)
            decoded += 1  # must be writable

    def test_unknown_format_rejected(self):
        with pytest.raises(ParameterError, match="format"):
            decode_array({"format": "mystery", "data": ""}, np.int64)

    def test_narrowed_integers_survive(self):
        arr = np.array([[-128, 127], [0, 1]], dtype=np.int64)
        payload = encode_array(arr)
        assert payload["dtype"] == "|i1"
        assert np.array_equal(decode_array(payload, np.int64), arr)


class TestFlatIndexInt64Guard:
    """Flat offsets must be computed in int64 even from int32 index input.

    Regression guard for the ``k * m * chunk > 2**31`` regime: a
    ``(2**17, 2**15)`` accumulator has ``2**32`` cells, so raveling an
    int32 row/col pair in the index dtype would wrap negative.  The
    accumulator is a zero-strided phantom (no 4 GiB allocation) — only
    the shape arithmetic is under test.
    """

    def test_flat_indices_int64_beyond_2_31(self):
        from repro.accumulate import _flat_indices

        out = np.lib.stride_tricks.as_strided(
            np.zeros(1, dtype=np.int8), shape=(1 << 17, 1 << 15), strides=(0, 0)
        )
        rows = np.array([1 << 16, (1 << 17) - 1], dtype=np.int32)
        cols = np.array([5, (1 << 15) - 1], dtype=np.int32)
        flat, size = _flat_indices(out, (rows, cols))
        assert size == 1 << 32
        assert flat.dtype == np.int64
        expected = rows.astype(np.int64) * (1 << 15) + cols.astype(np.int64)
        assert np.array_equal(flat, expected)
        assert flat[0] == (1 << 31) + 5  # would wrap negative in int32
        assert flat[1] == (1 << 32) - 1

    def test_three_axis_middle_tensor_shape(self):
        from repro.accumulate import _flat_indices

        # (k, m_left, m_right) middle tensor crossing 2**31 cells.
        out = np.lib.stride_tricks.as_strided(
            np.zeros(1, dtype=np.int8),
            shape=(18, 1 << 14, 1 << 14),
            strides=(0, 0, 0),
        )
        replicas = np.array([17], dtype=np.int32)
        left = np.array([(1 << 14) - 1], dtype=np.int32)
        right = np.array([(1 << 14) - 1], dtype=np.int32)
        flat, size = _flat_indices(out, (replicas, left, right))
        assert flat[0] == 18 * (1 << 28) - 1
        assert flat[0] > np.iinfo(np.int32).max
