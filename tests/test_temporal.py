"""Tests for :mod:`repro.temporal` — epoch ring, windows, decay, budget.

The heart of the suite is the byte-identity matrix: a sliding-window
estimate over the epoch ring must equal, bit for bit, the estimate of a
fresh session that ingested only the window's batches — across every
registry method's sketch shape and several window widths, the same
treatment the sharded-merge suite applies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import JoinSession, available_estimators, get_estimator
from repro.core import SketchParams
from repro.errors import ParameterError, ProtocolError
from repro.temporal import (
    EpochRing,
    TemporalSession,
    combine_decayed,
    decay_weights,
)

from .conftest import zipf_values


@pytest.fixture
def params() -> SketchParams:
    return SketchParams(k=4, m=64, epsilon=4.0)


def _epoch_slices(epochs: int, per_epoch: int = 400):
    a = zipf_values(epochs * per_epoch, 128, 1.2, seed=1)
    b = zipf_values(epochs * per_epoch, 128, 1.2, seed=2)
    return np.array_split(a, epochs), np.array_split(b, epochs)


def _filled_session(params, epochs: int, *, window_epochs: int = 8, seed=5):
    """A TemporalSession with ``epochs`` closed epochs of A/B traffic."""
    slices_a, slices_b = _epoch_slices(epochs)
    session = TemporalSession(params, window_epochs=window_epochs, seed=seed)
    for epoch, (sa, sb) in enumerate(zip(slices_a, slices_b)):
        session.collect("A", sa, seed=100 + epoch)
        session.collect("B", sb, seed=200 + epoch)
        session.roll()
    return session, slices_a, slices_b


class TestEpochRing:
    def _partial(self, params, seed):
        shard = JoinSession(params, seed=seed)
        shard.collect("A", np.arange(16), seed=seed)
        return shard.to_partial(include_timing=False)

    def test_push_and_eviction(self, params):
        ring = EpochRing(3)
        for epoch in range(5):
            ring.push(epoch, self._partial(params, epoch + 1))
        assert len(ring) == 3
        assert ring.epochs() == [2, 3, 4]
        assert ring.oldest_epoch() == 2
        assert ring.newest_epoch() == 4

    def test_epochs_strictly_increasing(self, params):
        ring = EpochRing(3)
        ring.push(1, self._partial(params, 1))
        with pytest.raises(ParameterError, match="order"):
            ring.push(1, self._partial(params, 2))
        with pytest.raises(ParameterError, match="order"):
            ring.push(0, self._partial(params, 3))

    def test_slice_behind_retention_refused(self, params):
        ring = EpochRing(2)
        for epoch in range(4):
            ring.push(epoch, self._partial(params, epoch + 1))
        assert [e for e, _ in ring.slice(2, 4)] == [2, 3]
        with pytest.raises(ParameterError, match="retention"):
            ring.slice(1, 3)  # epoch 1 was evicted

    def test_last(self, params):
        ring = EpochRing(4)
        for epoch in range(3):
            ring.push(epoch, self._partial(params, epoch + 1))
        assert [e for e, _ in ring.last(2)] == [1, 2]


class TestDecayWeights:
    def test_oldest_first_exact_powers(self):
        # count=3, lambda=1/2: ages 2,1,0 -> den^2 * lambda^age = 1, 2, 4.
        assert decay_weights(3, 1, 2) == [1, 2, 4]

    def test_no_decay_is_uniform(self):
        assert decay_weights(4, 1, 1) == [1, 1, 1, 1]

    def test_exact_rational_semantics(self):
        num, den, count = 2, 3, 5
        weights = decay_weights(count, num, den)
        # Entry i (age count-1-i) is num^age * den^i — exactly
        # den^(count-1) * (num/den)^age as unbounded ints.
        assert weights == [
            num ** (count - 1 - i) * den**i for i in range(count)
        ]

    def test_validation(self):
        with pytest.raises(ParameterError):
            decay_weights(0, 1, 2)
        with pytest.raises(ParameterError):
            decay_weights(3, 0, 2)
        with pytest.raises(ParameterError):
            decay_weights(3, 3, 2)  # growth, not decay


class TestCombineDecayed:
    def test_exact_weighted_sum_with_gaps(self):
        a = np.array([[1, 2]], dtype=np.int64)
        b = np.array([[10, -20]], dtype=np.int64)
        out = combine_decayed([a, None, b], [1, 2, 4])
        np.testing.assert_array_equal(out, a + 4 * b)

    def test_overflow_guard(self):
        big = np.full((2, 2), 2**40, dtype=np.int64)
        with pytest.raises(ParameterError, match="overflow"):
            combine_decayed([big], [2**30])

    def test_shape_and_emptiness_validation(self):
        a = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(ParameterError, match="weights"):
            combine_decayed([a], [1, 2])
        with pytest.raises(ParameterError, match="all-empty"):
            combine_decayed([None, None], [1, 2])
        with pytest.raises(ParameterError, match="match"):
            combine_decayed([a, np.zeros((3, 3), dtype=np.int64)], [1, 2])


class TestTemporalSessionSemantics:
    def test_roll_advances_and_is_idempotent(self, params):
        session = TemporalSession(params, window_epochs=4, seed=1)
        assert session.epoch == 0
        session.collect("A", np.arange(32), seed=1)
        session.roll()
        assert session.epoch == 1
        assert session.roll_to(1) == 0  # already there
        assert session.roll_to(4) == 3  # empty epochs close too
        assert session.epoch == 4
        assert session.ring.epochs() == [0, 1, 2, 3]

    def test_window_wider_than_retention_refused(self, params):
        session = TemporalSession(params, window_epochs=2, seed=1)
        session.collect("A", np.arange(8), seed=1)
        with pytest.raises(ParameterError, match="retention"):
            session.window_entries(4)
        # capacity + the open epoch is answerable:
        session.roll()
        session.roll()
        assert len(session.window_entries(3)) == 3

    def test_no_closed_epochs_without_open_is_refused(self, params):
        session = TemporalSession(params, window_epochs=2, seed=1)
        session.collect("A", np.arange(8), seed=1)
        with pytest.raises(ProtocolError, match="no epochs"):
            session.window_entries(include_open=False)
        # The open bucket alone is queryable:
        assert len(session.window_entries()) == 1

    def test_tumbling_alignment(self, params):
        session, slices_a, slices_b = _filled_session(params, 5)
        # Open epoch is 5; last complete 2-block is [2, 4).
        block = session.tumbling_session(2)
        expected = JoinSession(params, pairs=session.pairs)
        for epoch in (2, 3):
            expected.collect("A", slices_a[epoch], seed=100 + epoch)
            expected.collect("B", slices_b[epoch], seed=200 + epoch)
        assert (
            block.estimate("A", "B").estimate
            == expected.estimate("A", "B").estimate
        )

    def test_tumbling_needs_one_complete_block(self, params):
        session = TemporalSession(params, window_epochs=8, seed=1)
        session.collect("A", np.arange(8), seed=1)
        session.roll()
        with pytest.raises(ProtocolError, match="tumbling"):
            session.tumbling_session(2)  # only one epoch closed
        with pytest.raises(ParameterError, match="width"):
            session.tumbling_session(0)

    def test_status_shape(self, params):
        session, _, _ = _filled_session(params, 3, window_epochs=2)
        status = session.status()
        assert status["epoch"] == 3
        assert status["window_epochs"] == 2
        assert status["closed_epochs"] == 2
        assert status["retained_epochs"] == [1, 2]
        assert status["open_reports"] == 0
        assert "A" in status["continual"]

    def test_continual_charges_on_roll(self, params):
        session, _, _ = _filled_session(params, 3)
        # Bare stream names: the subject is the stream itself.
        assert sorted(session.continual.subjects()) == ["A", "B"]
        assert session.continual.worst_case_epsilon("A") == pytest.approx(
            params.epsilon
        )
        assert session.continual.lifetime_epsilon("A") == pytest.approx(
            3 * params.epsilon
        )

    def test_namespaced_subject_extraction(self, params):
        session = TemporalSession(params, window_epochs=4, seed=1)
        session.collect("tenant/A", np.arange(32), seed=1)
        session.roll()
        assert session.continual.subjects() == ["tenant"]

    def test_note_release_counts_window_epochs(self, params):
        session, _, _ = _filled_session(params, 3)
        entries = session.window_entries(2, include_open=False)
        session.note_release("A", entries)
        assert session.continual.releases == {("A", 1): 1, ("A", 2): 1}


class TestWindowByteIdentity:
    """Window estimate == fresh window-only session, across every
    registry method's sketch shape and several window widths."""

    EPOCHS = 6

    def _shape_of(self, method: str):
        estimator = get_estimator(method)
        return getattr(estimator, "k", 4), getattr(estimator, "m", 64)

    @pytest.mark.parametrize("method", sorted(available_estimators()))
    @pytest.mark.parametrize("window", [1, 2, 3, 5])
    def test_window_equals_fresh_session(self, method, window):
        k, m = self._shape_of(method)
        params = SketchParams(k=k, m=m, epsilon=4.0)
        session, slices_a, slices_b = _filled_session(params, self.EPOCHS)

        windowed = session.window_session(window, include_open=False)
        fresh = JoinSession(params, pairs=session.pairs)
        for epoch in range(self.EPOCHS - window, self.EPOCHS):
            fresh.collect("A", slices_a[epoch], seed=100 + epoch)
            fresh.collect("B", slices_b[epoch], seed=200 + epoch)

        np.testing.assert_array_equal(
            windowed._streams["A"].raw, fresh._streams["A"].raw
        )
        np.testing.assert_array_equal(
            windowed._streams["B"].raw, fresh._streams["B"].raw
        )
        assert (
            windowed.estimate("A", "B").estimate
            == fresh.estimate("A", "B").estimate
        )
        assert windowed.num_reports("A") == fresh.num_reports("A")

    def test_open_epoch_participates(self, params):
        session, slices_a, slices_b = _filled_session(params, 3)
        session.collect("A", slices_a[0], seed=900)
        session.collect("B", slices_b[0], seed=901)
        windowed = session.window_session(2)  # open epoch + newest closed
        fresh = JoinSession(params, pairs=session.pairs)
        fresh.collect("A", slices_a[2], seed=102)
        fresh.collect("B", slices_b[2], seed=202)
        fresh.collect("A", slices_a[0], seed=900)
        fresh.collect("B", slices_b[0], seed=901)
        assert (
            windowed.estimate("A", "B").estimate
            == fresh.estimate("A", "B").estimate
        )


class TestDecayedEstimate:
    def test_no_decay_matches_window_estimate(self, params):
        session, _, _ = _filled_session(params, 4)
        plain = session.window_session(3, include_open=False)
        decayed = session.decayed_estimate(
            "A", "B", decay=(1, 1), window=3, include_open=False
        )
        assert decayed == pytest.approx(
            plain.estimate("A", "B").estimate, rel=1e-12
        )

    def test_decay_shrinks_old_heavy_windows(self, params):
        # All epochs carry identical traffic; the decayed estimate over W
        # epochs must be strictly below the undecayed one (old epochs are
        # down-weighted) but positive and deterministic.
        session, _, _ = _filled_session(params, 4)
        undecayed = session.decayed_estimate(
            "A", "B", decay=(1, 1), window=4, include_open=False
        )
        decayed = session.decayed_estimate(
            "A", "B", decay=(1, 2), window=4, include_open=False
        )
        again = session.decayed_estimate(
            "A", "B", decay=(1, 2), window=4, include_open=False
        )
        assert decayed == again  # deterministic
        assert decayed < undecayed

    def test_single_epoch_window_is_decay_free(self, params):
        session, _, _ = _filled_session(params, 3)
        plain = session.window_session(1, include_open=False)
        decayed = session.decayed_estimate(
            "A", "B", decay=(1, 2), window=1, include_open=False
        )
        assert decayed == pytest.approx(
            plain.estimate("A", "B").estimate, rel=1e-12
        )

    def test_rejects_same_stream(self, params):
        session, _, _ = _filled_session(params, 2)
        with pytest.raises(ProtocolError, match="distinct"):
            session.decayed_estimate("A", "A", window=2, include_open=False)

    def test_rejects_absent_stream(self, params):
        session, _, _ = _filled_session(params, 2)
        with pytest.raises(ProtocolError, match="no reports"):
            session.decayed_estimate("A", "C", window=2, include_open=False)

    def test_rejects_growth_factor(self, params):
        session, _, _ = _filled_session(params, 2)
        with pytest.raises(ParameterError, match="exceed"):
            session.decayed_estimate(
                "A", "B", decay=(3, 2), window=2, include_open=False
            )


class TestWindowSweepTable:
    def test_deterministic_and_shaped(self):
        from repro.experiments.sweep import window_sweep_table

        kwargs = dict(
            epochs=2,
            trials=1,
            size=400,
            seed=11,
            k=3,
            m=32,
            decay=(1, 2),
        )
        table1 = window_sweep_table(["zipf-1.1"], [1, 2], **kwargs)
        table2 = window_sweep_table(["zipf-1.1"], [1, 2], **kwargs)
        assert table1.to_text() == table2.to_text()
        assert list(table1.headers) == [
            "dataset",
            "window",
            "truth",
            "mean_estimate",
            "ae",
            "re",
            "mean_decayed",
        ]
        assert len(table1.rows) == 2

    def test_window_validation(self):
        from repro.experiments.sweep import window_sweep_table

        with pytest.raises(ParameterError, match="window"):
            window_sweep_table(
                ["zipf-1.1"], [3], epochs=2, trials=1, size=200, seed=1
            )
