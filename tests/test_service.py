"""Tests for :mod:`repro.service` — WAL, engine, HTTP front-end, CLI.

The contract under test is the service's headline invariant: every
acknowledged batch is WAL-durable, and restarting from any crash point
republishes a snapshot *byte-identical* to a run that never crashed.
The chaos-schedule half of that claim lives in
``test_service_chaos.py``; this file covers the deterministic layers —
frame parsing and torn-tail recovery, checkpoint interplay, batch
validation, snapshot canonicalisation, the asyncio server's admission
control and lifecycle, and the ``serve`` CLI wiring.
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib

import numpy as np
import pytest

from repro.api import JoinSession
from repro.core import SketchParams
from repro.distributed import PartialAggregate
from repro.errors import (
    InjectedCrashError,
    ParameterError,
    PartialIntegrityError,
    ProtocolError,
)
from repro.reliability import FaultPlan, FaultSpec
from repro.reliability.faults import injected
from repro.service import (
    AggregationService,
    FSYNC_POLICIES,
    ServerConfig,
    ServiceConfig,
    ServiceServer,
    WriteAheadLog,
)
from repro.service.core import SNAPSHOT_FORMAT, SNAPSHOT_VERSION, batch_seed

TENANT = "acme"


def make_batches(num_batches: int = 10, reports: int = 40, seed: int = 3):
    """A deterministic workload: alternating streams A and B."""
    rng = np.random.default_rng(seed)
    return [
        (TENANT, "A" if i % 2 == 0 else "B", rng.integers(0, 64, size=reports))
        for i in range(num_batches)
    ]


def make_config(data_dir, **overrides) -> ServiceConfig:
    base = dict(
        data_dir=data_dir,
        k=3,
        m=32,
        epsilon=2.0,
        num_shards=3,
        seed=11,
        checkpoint_interval=4,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def run_to_digest(data_dir, batches, **overrides) -> str:
    """Fault-free reference run: ingest everything, publish, digest."""
    service = AggregationService(make_config(data_dir, **overrides))
    service.start()
    for tenant, stream, values in batches:
        service.ingest(tenant, stream, values)
    service.publish()
    digest = service.snapshot.digest
    service.close()
    return digest


# ---------------------------------------------------------------------------
# Write-ahead log
# ---------------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        records, tear = wal.recover()
        assert records == [] and tear is None
        payloads = [{"n": i, "values": [i, i + 1]} for i in range(3)]
        for i, record in enumerate(payloads):
            assert wal.append(record) == i
        assert len(wal) == 3
        assert list(wal.replay()) == list(enumerate(payloads))
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.log")
        records, tear = reopened.recover()
        assert records == payloads and tear is None
        assert reopened.append({"n": 3}) == 3

    def test_append_before_recover_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        with pytest.raises(ParameterError, match="recover"):
            wal.append({"n": 0})

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ParameterError, match="fsync"):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")
        assert set(FSYNC_POLICIES) == {"always", "batch", "never"}

    def _filled_wal(self, path, n=4) -> list:
        wal = WriteAheadLog(path)
        wal.recover()
        records = [{"n": i} for i in range(n)]
        for record in records:
            wal.append(record)
        wal.close()
        return records

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        records = self._filled_wal(path)
        clean_size = path.stat().st_size
        # A frame that claims 100 payload bytes but only wrote 10: the
        # classic power-cut tear.
        with open(path, "ab") as fh:
            fh.write(b"RW" + struct.pack("<II", 100, 0) + b"0123456789")
        wal = WriteAheadLog(path)
        recovered, tear = wal.recover()
        assert recovered == records
        assert tear is not None and "truncated payload" in tear.reason
        assert tear.offset == clean_size
        assert path.stat().st_size == clean_size  # tail trimmed
        assert wal.append({"n": len(records)}) == len(records)

    def test_crc_mismatch_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        records = self._filled_wal(path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip the last payload byte of the last frame
        path.write_bytes(bytes(data))
        recovered, tear = WriteAheadLog(path).recover()
        assert recovered == records[:-1]
        assert tear is not None and "crc32" in tear.reason

    def test_bad_magic_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        records = self._filled_wal(path)
        with open(path, "ab") as fh:
            fh.write(b"XX" + struct.pack("<II", 2, 0) + b"{}")
        recovered, tear = WriteAheadLog(path).recover()
        assert recovered == records
        assert tear is not None and "magic" in tear.reason

    def test_implausible_length_guard(self, tmp_path):
        path = tmp_path / "wal.log"
        self._filled_wal(path, n=1)
        with open(path, "ab") as fh:
            fh.write(b"RW" + struct.pack("<II", 0xFFFFFFF0, 0))
        recovered, tear = WriteAheadLog(path).recover()
        assert len(recovered) == 1
        assert tear is not None and "implausible" in tear.reason

    def test_recover_without_truncate_preserves_bytes(self, tmp_path):
        path = tmp_path / "wal.log"
        self._filled_wal(path)
        with open(path, "ab") as fh:
            fh.write(b"garbage")
        damaged_size = path.stat().st_size
        _, tear = WriteAheadLog(path).recover(truncate=False)
        assert tear is not None
        assert path.stat().st_size == damaged_size

    @pytest.mark.parametrize("kind", ["torn-write", "corrupt"])
    def test_injected_write_damage_is_recoverable(self, tmp_path, kind):
        """torn-write/corrupt specs damage the frame then kill the writer."""
        path = tmp_path / "wal.log"
        records = self._filled_wal(path)
        wal = WriteAheadLog(path)
        wal.recover()
        plan = FaultPlan(
            [FaultSpec(point="service.wal.append", kind=kind, times=1)]
        )
        with injected(plan):
            with pytest.raises(InjectedCrashError):
                wal.append({"n": 99})
        wal.close()
        # The restart path: damage is on disk, recovery trims it away and
        # the record was never acknowledged, so dropping it is correct.
        recovered, tear = WriteAheadLog(path).recover()
        assert recovered == records
        assert tear is not None


# ---------------------------------------------------------------------------
# Engine: config, ingest, recovery, snapshots
# ---------------------------------------------------------------------------
class TestServiceConfig:
    @pytest.mark.parametrize(
        "overrides,message",
        [
            (dict(num_shards=0), "num_shards"),
            (dict(checkpoint_interval=0), "checkpoint_interval"),
            (dict(wal_fsync="maybe"), "wal_fsync"),
            (dict(retries=0), "retries"),
            (dict(max_batch_reports=0), "max_batch_reports"),
        ],
    )
    def test_invalid_config_rejected(self, tmp_path, overrides, message):
        with pytest.raises(ParameterError, match=message):
            make_config(tmp_path, **overrides)

    def test_batch_seed_is_deterministic_and_distinct(self):
        assert batch_seed(11, 0) == batch_seed(11, 0)
        seeds = {batch_seed(11, sequence) for sequence in range(64)}
        assert len(seeds) == 64
        assert batch_seed(11, 0) != batch_seed(12, 0)


class TestAggregationService:
    def test_ingest_acknowledgement(self, tmp_path):
        service = AggregationService(make_config(tmp_path))
        service.start()
        ack = service.ingest(TENANT, "A", [1, 2, 3])
        assert ack == {"sequence": 0, "shard": 0, "reports": 3}
        ack = service.ingest(TENANT, "B", [4, 5])
        assert ack == {"sequence": 1, "shard": 1, "reports": 2}
        assert service.pending_records() == 2
        status = service.status()
        assert status["wal_records"] == 2
        assert status["tenants"][TENANT] == {"batches": 2, "reports": 5}
        service.close()

    def test_ingest_requires_start(self, tmp_path):
        service = AggregationService(make_config(tmp_path))
        with pytest.raises(ProtocolError, match="start"):
            service.ingest(TENANT, "A", [1])

    @pytest.mark.parametrize(
        "tenant,stream,values,message",
        [
            ("", "A", [1], "tenant"),
            ("a/b", "A", [1], "reserved"),
            (TENANT, "", [1], "stream"),
            (TENANT, "A", [], "non-empty"),
            (TENANT, "A", [[1, 2]], "1-D"),
            (TENANT, "A", ["x"], "integers"),
        ],
    )
    def test_batch_validation(self, tmp_path, tenant, stream, values, message):
        service = AggregationService(make_config(tmp_path))
        service.start()
        with pytest.raises(ParameterError, match=message):
            service.ingest(tenant, stream, values)
        assert len(service.wal) == 0  # rejected batches never hit the WAL
        service.close()

    def test_batch_admission_cap(self, tmp_path):
        service = AggregationService(make_config(tmp_path, max_batch_reports=8))
        service.start()
        with pytest.raises(ParameterError, match="admission cap"):
            service.ingest(TENANT, "A", list(range(9)))
        service.close()

    def test_queries_need_a_snapshot(self, tmp_path):
        service = AggregationService(make_config(tmp_path))
        service.start()
        service.ingest(TENANT, "A", [1, 2])
        with pytest.raises(ProtocolError, match="publish"):
            service.estimate(TENANT, "A", "B")
        service.close()

    def test_snapshot_payload_is_canonical(self, tmp_path):
        service = AggregationService(make_config(tmp_path))
        service.start()
        for tenant, stream, values in make_batches(4):
            service.ingest(tenant, stream, values)
        info = service.publish()
        snapshot = service.snapshot
        assert info["digest"] == snapshot.digest
        payload = json.loads(snapshot.payload_bytes)
        assert payload["format"] == SNAPSHOT_FORMAT
        assert payload["version"] == SNAPSHOT_VERSION
        assert payload["wal_records"] == 4
        # Re-publishing unchanged state reproduces the exact bytes.
        first = snapshot.payload_bytes
        service.publish()
        assert service.snapshot.payload_bytes == first
        service.close()

    def test_queries_match_direct_session(self, tmp_path):
        batches = make_batches(6)
        service = AggregationService(make_config(tmp_path))
        service.start()
        for tenant, stream, values in batches:
            service.ingest(tenant, stream, values)
        service.publish()

        direct = JoinSession(SketchParams(3, 32, 2.0), seed=11)
        for sequence, (tenant, stream, values) in enumerate(batches):
            direct.collect(
                f"{tenant}/{stream}", values, seed=batch_seed(11, sequence)
            )
        expected = direct.estimate(f"{TENANT}/A", f"{TENANT}/B")
        answer = service.estimate(TENANT, "A", "B")
        assert answer["estimate"] == pytest.approx(float(expected.estimate))
        assert answer["snapshot_digest"] == service.snapshot.digest
        freqs = service.frequencies(TENANT, "A", [1, 2, 3])
        assert len(freqs["frequencies"]) == 3
        chain = service.estimate_chain(TENANT, ["A", "B"])
        assert chain["estimate"] == pytest.approx(answer["estimate"])
        service.close()

    def test_crash_recovery_is_byte_identical(self, tmp_path):
        batches = make_batches(10)
        reference = run_to_digest(tmp_path / "ref", batches)

        # Crash: ingest 7 of 10 batches, then abandon the instance with
        # no flush/close — the WAL is the only durable acknowledgement.
        crashed = AggregationService(make_config(tmp_path / "crash"))
        crashed.start()
        for tenant, stream, values in batches[:7]:
            crashed.ingest(tenant, stream, values)
        crashed.wal.close()  # release the handle; state is NOT flushed

        restarted = AggregationService(make_config(tmp_path / "crash"))
        recovery = restarted.start()
        assert recovery["wal_records"] == 7
        # checkpoint_interval=4: the flush at sequence 3 covers records
        # 0..3, so exactly records 4..6 replay.
        assert recovery["replayed"] == 3
        assert recovery["torn_tail"] is None
        for tenant, stream, values in batches[7:]:
            restarted.ingest(tenant, stream, values)
        restarted.publish()
        assert restarted.snapshot.digest == reference
        restarted.close()

    def test_corrupt_checkpoint_downgrades_to_cold_start(self, tmp_path):
        batches = make_batches(10)
        reference = run_to_digest(tmp_path / "ref", batches)

        crashed = AggregationService(make_config(tmp_path / "crash"))
        crashed.start()
        for tenant, stream, values in batches[:8]:
            crashed.ingest(tenant, stream, values)
        crashed.wal.close()
        (tmp_path / "crash" / "shard-1.ckpt").write_text("{ not json")

        restarted = AggregationService(make_config(tmp_path / "crash"))
        recovery = restarted.start()
        assert [entry["shard"] for entry in recovery["cold_starts"]] == [1]
        for tenant, stream, values in batches[8:]:
            restarted.ingest(tenant, stream, values)
        restarted.publish()
        assert restarted.snapshot.digest == reference
        restarted.close()

    def test_checkpoint_ahead_of_wal_is_cold_started(self, tmp_path):
        """A checkpoint past the WAL (lost log bytes) must not double-count."""
        data_dir = tmp_path / "svc"
        service = AggregationService(make_config(data_dir))
        service.start()
        for tenant, stream, values in make_batches(8):
            service.ingest(tenant, stream, values)
        service.close()  # flushes checkpoints at cursor=8
        (data_dir / "wal.log").unlink()  # the WAL vanishes entirely

        restarted = AggregationService(make_config(data_dir))
        recovery = restarted.start()
        assert recovery["wal_records"] == 0
        assert len(recovery["cold_starts"]) == 3
        for entry in recovery["cold_starts"]:
            assert "ahead of the 0-record WAL" in entry["reason"]
        restarted.publish()
        # Cold-started from an empty log: the snapshot holds no streams.
        assert restarted.snapshot.info()["streams"] == []
        restarted.close()

    def test_torn_wal_record_recovery(self, tmp_path):
        """A torn final record is trimmed; the intact prefix replays."""
        batches = make_batches(6)
        reference = run_to_digest(tmp_path / "ref", batches)

        crashed = AggregationService(make_config(tmp_path / "crash"))
        crashed.start()
        for tenant, stream, values in batches[:5]:
            crashed.ingest(tenant, stream, values)
        crashed.wal.close()
        # The 6th record tears mid-write: header promises more bytes than
        # the process lived to append.
        payload = json.dumps({"torn": True}).encode()
        with open(tmp_path / "crash" / "wal.log", "ab") as fh:
            frame = (
                b"RW"
                + struct.pack("<II", len(payload), zlib.crc32(payload))
                + payload
            )
            fh.write(frame[: len(frame) // 2])

        restarted = AggregationService(make_config(tmp_path / "crash"))
        recovery = restarted.start()
        assert recovery["wal_records"] == 5
        assert recovery["torn_tail"] is not None
        assert recovery["torn_tail"]["dropped_bytes"] > 0
        # The torn batch was never acknowledged; the client re-sends it
        # (and the 6th batch gets the same sequence the tear occupied).
        for tenant, stream, values in batches[5:]:
            restarted.ingest(tenant, stream, values)
        restarted.publish()
        assert restarted.snapshot.digest == reference
        restarted.close()


# ---------------------------------------------------------------------------
# Partial-aggregate wire-version boundary (the snapshot payload's format)
# ---------------------------------------------------------------------------
class TestPartialWireVersionBoundary:
    def _payload(self) -> dict:
        session = JoinSession(SketchParams(3, 32, 2.0), seed=5)
        session.collect("A", np.arange(50) % 7, seed=9)
        return session.to_partial(include_timing=False).to_dict()

    def test_v1_payload_still_loads(self):
        payload = self._payload()
        reference = PartialAggregate.from_dict(json.loads(json.dumps(payload)))
        payload["version"] = 1
        del payload["checksum"]  # v1 predates the content checksum
        loaded = PartialAggregate.from_dict(payload)
        assert loaded == reference

    def test_future_version_rejected_with_documented_message(self):
        payload = self._payload()
        payload["version"] = 3
        with pytest.raises(
            ParameterError,
            match=r"unsupported partial-aggregate version 3 \(this build "
            r"reads versions 1\.\.2\)",
        ):
            PartialAggregate.from_dict(payload)

    def test_v1_truncated_array_is_still_typed(self):
        """Without a crc, a v1 payload relies on the byte-count gate."""
        payload = self._payload()
        payload["version"] = 1
        del payload["checksum"]
        name = sorted(payload["arrays"])[0]
        entry = payload["arrays"][name]["data"]
        keep = max(4, (len(entry["data"]) // 2) // 4 * 4)  # valid b64 padding
        entry["data"] = entry["data"][:keep]
        with pytest.raises(PartialIntegrityError):
            PartialAggregate.from_dict(payload)


# ---------------------------------------------------------------------------
# HTTP front-end
# ---------------------------------------------------------------------------
async def _request(host, port, method, target, body=None, timeout=10.0):
    """One HTTP/1.1 request over a fresh connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {target} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        ).encode()
        writer.write(head + payload)
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw = await asyncio.wait_for(
            reader.readexactly(int(headers.get("content-length", "0"))), timeout
        )
        return status, (json.loads(raw) if raw else {}), headers
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestServiceServer:
    def _server(self, tmp_path, **overrides):
        service = AggregationService(make_config(tmp_path / "data"))
        defaults = dict(port=0, watchdog_interval=0.05)
        defaults.update(overrides)
        return ServiceServer(service, ServerConfig(**defaults))

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            ServerConfig(queue_limit=0)
        with pytest.raises(ParameterError):
            ServerConfig(request_timeout=0)
        with pytest.raises(ParameterError):
            ServerConfig(publish_threshold=0)
        with pytest.raises(ParameterError):
            ServerConfig(watchdog_interval=0)

    def test_http_round_trip(self, tmp_path):
        async def scenario():
            server = self._server(tmp_path)
            host, port = await server.start()
            try:
                status, body, _ = await _request(host, port, "GET", "/healthz")
                assert (status, body["status"]) == (200, "ok")
                status, body, _ = await _request(host, port, "GET", "/readyz")
                assert (status, body["status"]) == (200, "ready")

                batch = {"tenant": TENANT, "stream": "A", "values": [1, 2, 3]}
                status, ack, _ = await _request(
                    host, port, "POST", "/v1/report", batch
                )
                assert status == 200 and ack["sequence"] == 0
                batch["stream"] = "B"
                status, ack, _ = await _request(
                    host, port, "POST", "/v1/report", batch
                )
                assert status == 200 and ack["sequence"] == 1

                status, info, _ = await _request(host, port, "POST", "/v1/publish")
                assert status == 200 and info["wal_records"] == 2
                status, answer, _ = await _request(
                    host,
                    port,
                    "GET",
                    f"/v1/estimate?tenant={TENANT}&kind=join&streams=A,B",
                )
                assert status == 200 and "estimate" in answer
                assert answer["snapshot_digest"] == info["digest"]

                status, body, _ = await _request(
                    host,
                    port,
                    "GET",
                    f"/v1/estimate?tenant={TENANT}&kind=frequencies"
                    "&streams=A&values=1,2",
                )
                assert status == 200 and len(body["frequencies"]) == 2

                status, body, _ = await _request(host, port, "GET", "/v1/status")
                assert status == 200 and body["wal_records"] == 2
                assert body["ready"] is True
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_http_error_mapping(self, tmp_path):
        async def scenario():
            server = self._server(tmp_path, max_body_bytes=256)
            host, port = await server.start()
            try:
                # 404 unknown path, 405 wrong method.
                status, _, _ = await _request(host, port, "GET", "/nope")
                assert status == 404
                status, _, _ = await _request(host, port, "GET", "/v1/report")
                assert status == 405
                # 400: not JSON, missing fields, invalid batch.
                reader_status, body, _ = await _request(
                    host, port, "POST", "/v1/report", {"tenant": TENANT}
                )
                assert reader_status == 400 and "stream" in body["error"]
                status, body, _ = await _request(
                    host,
                    port,
                    "POST",
                    "/v1/report",
                    {"tenant": TENANT, "stream": "A", "values": []},
                )
                assert status == 400
                # 400: bad estimate queries.
                status, _, _ = await _request(host, port, "GET", "/v1/estimate")
                assert status == 400
                status, _, _ = await _request(
                    host,
                    port,
                    "GET",
                    f"/v1/estimate?tenant={TENANT}&kind=warp&streams=A,B",
                )
                assert status == 400
                # 413: body over the configured cap.
                status, _, _ = await _request(
                    host,
                    port,
                    "POST",
                    "/v1/report",
                    {"tenant": TENANT, "stream": "A", "values": list(range(500))},
                )
                assert status == 413
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_backpressure_answers_429_with_retry_after(self, tmp_path):
        """A slow fold fills the per-tenant allowance; overflow gets 429."""

        async def scenario():
            service = AggregationService(make_config(tmp_path / "data"))
            server = ServiceServer(
                service,
                ServerConfig(
                    port=0,
                    queue_limit=4,
                    tenant_queue_limit=1,
                    watchdog_interval=0.05,
                ),
            )
            host, port = await server.start()
            try:
                # Stall the single service thread so the first batch stays
                # "pending" long enough for the second to be over-limit.
                plan = FaultPlan(
                    [
                        FaultSpec(
                            point="service.ingest",
                            kind="latency",
                            times=1,
                            delay=0.5,
                        )
                    ]
                )
                with injected(plan):
                    batch = {"tenant": TENANT, "stream": "A", "values": [1]}
                    first = asyncio.ensure_future(
                        _request(host, port, "POST", "/v1/report", batch)
                    )
                    await asyncio.sleep(0.15)  # first batch is now folding
                    status, body, headers = await _request(
                        host, port, "POST", "/v1/report", batch
                    )
                    assert status == 429, body
                    assert int(headers["retry-after"]) >= 1
                    status, ack, _ = await first
                    assert status == 200 and ack["sequence"] == 0
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_watchdog_publishes_at_threshold(self, tmp_path):
        async def scenario():
            server = self._server(tmp_path, publish_threshold=2)
            host, port = await server.start()
            try:
                boot = server.service.snapshot.wal_records
                assert boot == 0
                batch = {"tenant": TENANT, "stream": "A", "values": [1, 2]}
                for _ in range(2):
                    status, _, _ = await _request(
                        host, port, "POST", "/v1/report", batch
                    )
                    assert status == 200
                for _ in range(100):
                    if server.service.snapshot.wal_records >= 2:
                        break
                    await asyncio.sleep(0.05)
                assert server.service.snapshot.wal_records == 2
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_graceful_shutdown_publishes_final_snapshot(self, tmp_path):
        async def scenario():
            server = self._server(tmp_path)
            host, port = await server.start()
            batch = {"tenant": TENANT, "stream": "A", "values": [5, 6, 7]}
            status, _, _ = await _request(host, port, "POST", "/v1/report", batch)
            assert status == 200
            await server.shutdown()
            await server.serve_until_closed()  # resolves after shutdown
            assert server.service.snapshot.wal_records == 1

        asyncio.run(scenario())
        # The shutdown flushed durable state: a fresh engine recovers it.
        reopened = AggregationService(make_config(tmp_path / "data"))
        recovery = reopened.start()
        assert recovery["wal_records"] == 1
        assert recovery["replayed"] == 0  # checkpoints covered everything
        reopened.close()


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------
class TestServeCli:
    def test_parser_flags(self, tmp_path):
        from repro.service.__main__ import build_parser

        args = build_parser().parse_args(
            [
                "--data-dir",
                str(tmp_path),
                "--port",
                "8123",
                "--shards",
                "5",
                "--wal-fsync",
                "batch",
                "--publish-threshold",
                "16",
            ]
        )
        assert args.port == 8123
        assert args.shards == 5
        assert args.wal_fsync == "batch"
        assert args.publish_threshold == 16
        assert args.fault_plan is None

    def test_data_dir_is_required(self, capsys):
        from repro.service.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_fault_plan_fails_before_serving(self, tmp_path):
        from repro.service.__main__ import main as serve_main

        plan_path = tmp_path / "plan.json"
        plan_path.write_text("{ not json")
        with pytest.raises(ParameterError, match="not valid JSON"):
            serve_main(
                ["--data-dir", str(tmp_path / "data"), "--fault-plan", str(plan_path)]
            )

    def test_experiments_cli_forwards_serve(self):
        """`repro-experiments serve ...` hands its argv to the service CLI."""
        from repro.experiments.cli import _forwarded_args

        argv = ["serve", "--data-dir", "/tmp/x", "--port", "0"]
        assert _forwarded_args(argv, "serve") == argv[1:]
        assert _forwarded_args(["run", "--help"], "serve") is None


# ---------------------------------------------------------------------------
# Temporal windows through the service
# ---------------------------------------------------------------------------
class TestTemporalService:
    """Windowed estimates are pure over deterministic WAL state.

    The epoch index is ``sequence // epoch_interval``, so the ring is a
    function of the WAL alone — replay and replication must rebuild it
    bit-for-bit, and a windowed answer must match a hand-driven
    :class:`~repro.temporal.TemporalSession` fed the same batches.
    """

    INTERVAL = 2
    RETAINED = 4

    def _temporal_config(self, data_dir, **overrides):
        return make_config(
            data_dir,
            epoch_interval=self.INTERVAL,
            window_epochs=self.RETAINED,
            **overrides,
        )

    def test_windowed_estimate_matches_direct_temporal_session(self, tmp_path):
        from repro.temporal import TemporalSession

        batches = make_batches(8)
        service = AggregationService(self._temporal_config(tmp_path))
        service.start()
        for tenant, stream, values in batches:
            service.ingest(tenant, stream, values)

        direct = TemporalSession(
            SketchParams(3, 32, 2.0), window_epochs=self.RETAINED, seed=11
        )
        for sequence, (tenant, stream, values) in enumerate(batches):
            direct.roll_to(sequence // self.INTERVAL)
            direct.collect(
                f"{tenant}/{stream}", values, seed=batch_seed(11, sequence)
            )

        for window in (1, 2, 3):
            answer = service.estimate(TENANT, "A", "B", window=window)
            expected = direct.window_session(window).estimate(
                f"{TENANT}/A", f"{TENANT}/B"
            )
            assert answer["estimate"] == float(expected.estimate)
            assert answer["window"] == window
            assert answer["epochs"] == [
                epoch for epoch, _ in direct.window_entries(window)
            ]
        service.close()

    def test_window_replay_rebuilds_identical_ring(self, tmp_path):
        batches = make_batches(10)

        reference = AggregationService(self._temporal_config(tmp_path / "ref"))
        reference.start()
        for tenant, stream, values in batches[:7]:
            reference.ingest(tenant, stream, values)

        crashed = AggregationService(self._temporal_config(tmp_path / "crash"))
        crashed.start()
        for tenant, stream, values in batches[:7]:
            crashed.ingest(tenant, stream, values)
        crashed.wal.close()  # crash: no flush, no checkpoint of the ring

        restarted = AggregationService(self._temporal_config(tmp_path / "crash"))
        recovery = restarted.start()
        assert recovery["wal_records"] == 7

        # The ring is never checkpointed; replay alone must rebuild it.
        assert restarted.status()["temporal"] == reference.status()["temporal"]
        for window in (2, 4):
            assert restarted.estimate(TENANT, "A", "B", window=window) == (
                reference.estimate(TENANT, "A", "B", window=window)
            )
        reference.close()
        restarted.close()

    def test_windowed_queries_require_epoch_interval(self, tmp_path):
        service = AggregationService(make_config(tmp_path))
        service.start()
        with pytest.raises(ProtocolError, match="disabled"):
            service.estimate(TENANT, "A", "B", window=1)
        service.close()

    def test_window_bounds_are_validated(self, tmp_path):
        service = AggregationService(self._temporal_config(tmp_path))
        service.start()
        for tenant, stream, values in make_batches(4):
            service.ingest(tenant, stream, values)
        with pytest.raises(ParameterError, match="window"):
            service.estimate(TENANT, "A", "B", window=0)
        with pytest.raises(ParameterError, match="retention"):
            # RETAINED closed epochs + the open one is the horizon.
            service.estimate(TENANT, "A", "B", window=self.RETAINED + 2)
        service.close()

    def test_status_reports_temporal_observables(self, tmp_path):
        service = AggregationService(self._temporal_config(tmp_path))
        service.start()
        assert service.status()["temporal"]["epoch"] == 0
        for tenant, stream, values in make_batches(6):
            service.ingest(tenant, stream, values)
        temporal = service.status()["temporal"]
        assert temporal["epoch"] == 5 // self.INTERVAL
        assert temporal["epoch_interval"] == self.INTERVAL
        assert temporal["window_epochs"] == self.RETAINED
        assert temporal["closed_epochs"] == 2
        assert temporal["retained_epochs"] == [0, 1]
        assert TENANT in temporal["continual"]
        service.close()

    def test_disabled_service_reports_no_temporal_state(self, tmp_path):
        service = AggregationService(make_config(tmp_path))
        service.start()
        assert service.status()["temporal"] is None
        service.close()

    def test_http_windowed_round_trip(self, tmp_path):
        async def scenario():
            service = AggregationService(self._temporal_config(tmp_path / "data"))
            server = ServiceServer(
                service, ServerConfig(port=0, watchdog_interval=0.05)
            )
            host, port = await server.start()
            try:
                for index in range(4):
                    status, ack, _ = await _request(
                        host,
                        port,
                        "POST",
                        "/v1/report",
                        {
                            "tenant": TENANT,
                            "stream": "A" if index % 2 == 0 else "B",
                            "values": [1, 2, 3],
                        },
                    )
                    assert status == 200 and ack["sequence"] == index

                # Windowed estimates need no publish: they answer from
                # the live ring.
                status, answer, _ = await _request(
                    host,
                    port,
                    "GET",
                    f"/v1/estimate?tenant={TENANT}&kind=join"
                    "&streams=A,B&window=2",
                )
                assert status == 200
                assert answer["window"] == 2
                assert answer["epochs"] == [0, 1]
                assert "snapshot_digest" not in answer

                status, body, _ = await _request(
                    host,
                    port,
                    "GET",
                    f"/v1/estimate?tenant={TENANT}&kind=join"
                    "&streams=A,B&window=nope",
                )
                assert status == 400 and "integer" in body["error"]

                status, body, _ = await _request(host, port, "GET", "/v1/status")
                assert status == 200
                assert body["temporal"]["epoch"] == 1
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_http_windowed_disabled_is_409(self, tmp_path):
        async def scenario():
            service = AggregationService(make_config(tmp_path / "data"))
            server = ServiceServer(
                service, ServerConfig(port=0, watchdog_interval=0.05)
            )
            host, port = await server.start()
            try:
                status, body, _ = await _request(
                    host,
                    port,
                    "GET",
                    f"/v1/estimate?tenant={TENANT}&kind=join"
                    "&streams=A,B&window=1",
                )
                assert status == 409 and "disabled" in body["error"]
            finally:
                await server.shutdown()

        asyncio.run(scenario())
