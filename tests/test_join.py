"""Unit + property tests for :mod:`repro.join` (ground-truth substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DomainError, ParameterError
from repro.join import (
    FrequencyVector,
    exact_join_size,
    exact_multiway_chain_size,
    exact_self_join_size,
)

small_stream = st.lists(st.integers(min_value=0, max_value=19), min_size=0, max_size=200)


class TestFrequencyVector:
    def test_from_values_counts(self):
        fv = FrequencyVector.from_values([0, 0, 2, 3, 3, 3], 5)
        assert fv.counts.tolist() == [2, 0, 1, 3, 0]

    def test_total_and_moments(self):
        fv = FrequencyVector.from_values([0, 0, 1], 3)
        assert fv.total == 3
        assert fv.second_moment == 5  # 2^2 + 1^2
        assert fv.distinct == 2

    def test_frequency_lookup(self):
        fv = FrequencyVector.from_values([1, 1, 1], 3)
        assert fv.frequency(1) == 3
        assert fv.frequency(0) == 0
        with pytest.raises(DomainError):
            fv.frequency(3)

    def test_inner_product(self):
        fa = FrequencyVector.from_values([0, 0, 1], 3)
        fb = FrequencyVector.from_values([0, 2, 2], 3)
        assert fa.inner(fb) == 2

    def test_inner_domain_mismatch(self):
        fa = FrequencyVector.from_values([0], 2)
        fb = FrequencyVector.from_values([0], 3)
        with pytest.raises(DomainError):
            fa.inner(fb)

    def test_inner_type_check(self):
        fa = FrequencyVector.from_values([0], 2)
        with pytest.raises(ParameterError):
            fa.inner([1, 0])

    def test_out_of_domain_rejected(self):
        with pytest.raises(DomainError):
            FrequencyVector.from_values([5], 5)

    def test_negative_counts_rejected(self):
        with pytest.raises(ParameterError):
            FrequencyVector(np.array([1, -1]))

    def test_float_counts_rejected(self):
        with pytest.raises(ParameterError):
            FrequencyVector(np.array([1.0, 2.0]))

    def test_restrict_and_exclude_partition(self):
        fv = FrequencyVector.from_values([0, 1, 1, 2, 2, 2], 4)
        keep = np.array([1])
        restricted = fv.restrict(keep)
        excluded = fv.exclude(keep)
        assert restricted.counts.tolist() == [0, 2, 0, 0]
        assert excluded.counts.tolist() == [1, 0, 3, 0]
        assert np.array_equal(restricted.counts + excluded.counts, fv.counts)

    def test_split_by_threshold(self):
        fv = FrequencyVector.from_values([0] * 10 + [1] * 3 + [2], 4)
        heavy, light = fv.split_by_threshold(2.5)
        assert heavy.tolist() == [0, 1]
        assert light.tolist() == [2]

    def test_split_partition_of_join(self):
        # Join size decomposes over any heavy/light partition.
        rng = np.random.default_rng(0)
        a = rng.integers(0, 50, size=2000)
        b = rng.integers(0, 50, size=2000)
        fa = FrequencyVector.from_values(a, 50)
        fb = FrequencyVector.from_values(b, 50)
        heavy, _ = fa.split_by_threshold(50)
        low_part = fa.exclude(heavy).inner(fb.exclude(heavy))
        high_part = fa.restrict(heavy).inner(fb.restrict(heavy))
        assert low_part + high_part == fa.inner(fb)

    def test_top_k(self):
        fv = FrequencyVector.from_values([3, 3, 3, 1, 1, 0], 5)
        assert fv.top_k(2).tolist() == [3, 1]

    def test_top_k_tie_break_by_id(self):
        fv = FrequencyVector.from_values([2, 4], 6)
        assert fv.top_k(2).tolist() == [2, 4]

    def test_top_k_clamps_to_domain(self):
        fv = FrequencyVector.from_values([0], 2)
        assert fv.top_k(10).size == 2

    def test_equality(self):
        fa = FrequencyVector.from_values([0, 1], 2)
        fb = FrequencyVector.from_values([1, 0], 2)
        assert fa == fb

    def test_unhashable(self):
        fv = FrequencyVector.from_values([0], 1)
        with pytest.raises(TypeError):
            hash(fv)

    def test_len(self):
        assert len(FrequencyVector.from_values([0], 7)) == 7

    @given(small_stream, small_stream)
    @settings(max_examples=50, deadline=None)
    def test_property_linearity_of_counts(self, a, b):
        fa = FrequencyVector.from_values(a, 20)
        fb = FrequencyVector.from_values(b, 20)
        fab = FrequencyVector.from_values(list(a) + list(b), 20)
        assert np.array_equal(fa.counts + fb.counts, fab.counts)

    @given(small_stream, small_stream)
    @settings(max_examples=50, deadline=None)
    def test_property_inner_symmetry(self, a, b):
        fa = FrequencyVector.from_values(a, 20)
        fb = FrequencyVector.from_values(b, 20)
        assert fa.inner(fb) == fb.inner(fa)

    @given(small_stream)
    @settings(max_examples=50, deadline=None)
    def test_property_self_join_is_second_moment(self, a):
        fv = FrequencyVector.from_values(a, 20)
        assert fv.inner(fv) == fv.second_moment


class TestExactJoins:
    def test_two_way_brute_force(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 10, size=300)
        b = rng.integers(0, 10, size=300)
        brute = sum(int(x == y) for x in a for y in b)
        assert exact_join_size(a, b, 10) == brute

    def test_accepts_frequency_vectors(self):
        fa = FrequencyVector.from_values([0, 0], 2)
        fb = FrequencyVector.from_values([0], 2)
        assert exact_join_size(fa, fb, 2) == 2

    def test_self_join(self):
        assert exact_self_join_size([0, 0, 1], 2) == 5

    def test_empty_streams(self):
        assert exact_join_size([], [], 4) == 0

    def test_three_way_brute_force(self):
        rng = np.random.default_rng(2)
        d0, d1 = 6, 5
        t1 = rng.integers(0, d0, size=40)
        t2 = (rng.integers(0, d0, size=60), rng.integers(0, d1, size=60))
        t3 = rng.integers(0, d1, size=40)
        brute = 0
        for x in t1:
            for la, lb in zip(*t2):
                if la != x:
                    continue
                brute += int(np.sum(t3 == lb))
        assert exact_multiway_chain_size((t1, t3), [t2], [d0, d1]) == brute

    def test_four_way_consistency_with_matrix_algebra(self):
        rng = np.random.default_rng(3)
        d = 4
        t1 = rng.integers(0, d, size=30)
        mid1 = (rng.integers(0, d, size=50), rng.integers(0, d, size=50))
        mid2 = (rng.integers(0, d, size=50), rng.integers(0, d, size=50))
        t4 = rng.integers(0, d, size=30)
        f1 = np.bincount(t1, minlength=d).astype(float)
        f4 = np.bincount(t4, minlength=d).astype(float)
        c2 = np.zeros((d, d))
        np.add.at(c2, mid1, 1)
        c3 = np.zeros((d, d))
        np.add.at(c3, mid2, 1)
        expected = int(f1 @ c2 @ c3 @ f4)
        assert exact_multiway_chain_size((t1, t4), [mid1, mid2], [d, d, d]) == expected

    def test_two_way_as_degenerate_chain(self):
        a = [0, 1, 1]
        b = [1, 1, 2]
        assert exact_multiway_chain_size((a, b), [], [3]) == exact_join_size(a, b, 3)

    def test_domain_count_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="domain sizes"):
            exact_multiway_chain_size(([0], [0]), [], [2, 2])

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="equal length"):
            exact_multiway_chain_size(
                ([0], [0]), [(np.array([0, 1]), np.array([0]))], [2, 2]
            )
