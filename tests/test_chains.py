"""Tests for multiway chain workloads and estimators
(:mod:`repro.experiments.chains`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ZipfGenerator
from repro.experiments.chains import (
    compass_estimate,
    frequency_chain_estimate,
    ldp_compass_estimate,
    make_chain_instance,
)
from repro.join import exact_multiway_chain_size
from repro.mechanisms import KRROracle


@pytest.fixture(scope="module")
def generator():
    return ZipfGenerator(64, alpha=1.4)


@pytest.fixture(scope="module")
def chain3(generator):
    return make_chain_instance(3, generator, 15_000, seed=1)


class TestChainInstance:
    def test_shapes(self, chain3):
        assert chain3.num_way == 3
        assert len(chain3.middles) == 1
        assert chain3.domain_sizes == [64, 64]

    def test_truth_matches_exact(self, chain3):
        truth = exact_multiway_chain_size(
            (chain3.end_first, chain3.end_last), chain3.middles, chain3.domain_sizes
        )
        assert chain3.true_size == truth

    def test_truth_cached(self, chain3):
        first = chain3.true_size
        assert chain3.true_size == first
        assert chain3._truth is not None

    def test_two_way_chain(self, generator):
        chain = make_chain_instance(2, generator, 1_000, seed=2)
        assert chain.num_way == 2
        assert chain.middles == []

    def test_four_way_chain(self, generator):
        chain = make_chain_instance(4, generator, 1_000, seed=3)
        assert chain.num_way == 4
        assert len(chain.middles) == 2
        assert chain.true_size >= 0

    def test_reproducible(self, generator):
        c1 = make_chain_instance(3, generator, 500, seed=4)
        c2 = make_chain_instance(3, generator, 500, seed=4)
        assert np.array_equal(c1.end_first, c2.end_first)
        assert np.array_equal(c1.middles[0][1], c2.middles[0][1])


class TestEstimators:
    def test_compass_accuracy(self, chain3):
        est = compass_estimate(chain3, k=9, m=256, seed=5)
        truth = chain3.true_size
        assert abs(est - truth) / truth < 0.3

    def test_ldp_compass_large_budget(self, chain3):
        est = ldp_compass_estimate(chain3, k=9, m=256, epsilon=50.0, seed=6)
        truth = chain3.true_size
        assert abs(est - truth) / truth < 0.6

    def test_frequency_chain_with_huge_budget_is_exact_shape(self, chain3):
        est = frequency_chain_estimate(KRROracle, chain3, epsilon=100.0, seed=7)
        truth = chain3.true_size
        # eps=100 k-RR is exact counting; product-domain estimate matches.
        assert est == pytest.approx(truth, rel=1e-6)

    def test_frequency_chain_noisy_but_finite(self, chain3):
        est = frequency_chain_estimate(KRROracle, chain3, epsilon=1.0, seed=8)
        assert np.isfinite(est)

    def test_four_way_ldp(self, generator):
        chain = make_chain_instance(4, generator, 8_000, seed=9)
        est = ldp_compass_estimate(chain, k=9, m=128, epsilon=50.0, seed=10)
        truth = chain.true_size
        assert abs(est - truth) / truth < 1.5
