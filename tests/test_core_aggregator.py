"""Tests for the streaming aggregator (:mod:`repro.core.aggregator`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LDPJoinSketchAggregator,
    SketchParams,
    build_sketch,
    encode_reports,
)
from repro.errors import IncompatibleSketchError, ParameterError, ProtocolError
from repro.hashing import HashPairs

from .conftest import zipf_values


@pytest.fixture
def setup():
    params = SketchParams(k=3, m=64, epsilon=4.0)
    pairs = HashPairs(params.k, params.m, seed=1)
    return params, pairs


class TestIngestion:
    def test_incremental_equals_batch(self, setup):
        params, pairs = setup
        values = zipf_values(5_000, 100, 1.3, seed=2)
        reports = encode_reports(values, params, pairs, 3)
        batch_sketch = build_sketch(reports, pairs)

        agg = LDPJoinSketchAggregator(params, pairs)
        third = len(reports) // 3
        agg.ingest(
            type(reports)(
                reports.ys[:third], reports.rows[:third], reports.cols[:third], params
            )
        )
        agg.ingest(
            type(reports)(
                reports.ys[third:], reports.rows[third:], reports.cols[third:], params
            )
        )
        assert np.allclose(agg.sketch().counts, batch_sketch.counts)
        assert agg.num_reports == batch_sketch.num_reports

    def test_ingest_many(self, setup):
        params, pairs = setup
        batches = [
            encode_reports(zipf_values(500, 50, 1.1, seed=s), params, pairs, s)
            for s in range(4)
        ]
        agg = LDPJoinSketchAggregator(params, pairs).ingest_many(batches)
        assert agg.num_reports == 2_000

    def test_param_mismatch_rejected(self, setup):
        params, pairs = setup
        other_params = SketchParams(params.k, params.m, 9.0)
        reports = encode_reports([1, 2], other_params, pairs, 4)
        agg = LDPJoinSketchAggregator(params, pairs)
        with pytest.raises(IncompatibleSketchError, match="different protocol"):
            agg.ingest(reports)

    def test_pairs_shape_validated(self, setup):
        params, _ = setup
        with pytest.raises(ParameterError):
            LDPJoinSketchAggregator(params, HashPairs(params.k + 1, params.m, 5))

    def test_query_before_ingest_rejected(self, setup):
        params, pairs = setup
        with pytest.raises(ProtocolError, match="no reports"):
            LDPJoinSketchAggregator(params, pairs).sketch()


class TestCachingAndQueries:
    def test_sketch_cached_until_new_data(self, setup):
        params, pairs = setup
        agg = LDPJoinSketchAggregator(params, pairs)
        agg.ingest(encode_reports([1, 2, 3], params, pairs, 6))
        first = agg.sketch()
        assert agg.sketch() is first  # cached
        agg.ingest(encode_reports([4], params, pairs, 7))
        assert agg.sketch() is not first  # invalidated

    def test_join_between_aggregators(self, setup):
        params, pairs = setup
        a = zipf_values(20_000, 128, 1.4, seed=8)
        b = zipf_values(20_000, 128, 1.4, seed=9)
        agg_a = LDPJoinSketchAggregator(params, pairs)
        agg_a.ingest(encode_reports(a, params, pairs, 10))
        agg_b = LDPJoinSketchAggregator(params, pairs)
        agg_b.ingest(encode_reports(b, params, pairs, 11))
        direct = agg_a.sketch().join_size(agg_b.sketch())
        assert agg_a.join_size(agg_b) == pytest.approx(direct)

    def test_frequencies_passthrough(self, setup):
        params, pairs = setup
        values = np.full(3_000, 7, dtype=np.int64)
        agg = LDPJoinSketchAggregator(params, pairs)
        agg.ingest(encode_reports(values, params, pairs, 12))
        assert agg.frequencies(np.asarray([7]))[0] == pytest.approx(
            agg.sketch().frequency(7)
        )


class TestSharding:
    def test_merge_equals_single_collector(self, setup):
        params, pairs = setup
        values = zipf_values(4_000, 100, 1.2, seed=13)
        reports = encode_reports(values, params, pairs, 14)
        half = len(reports) // 2

        shard1 = LDPJoinSketchAggregator(params, pairs)
        shard1.ingest(
            type(reports)(reports.ys[:half], reports.rows[:half], reports.cols[:half], params)
        )
        shard2 = LDPJoinSketchAggregator(params, pairs)
        shard2.ingest(
            type(reports)(reports.ys[half:], reports.rows[half:], reports.cols[half:], params)
        )
        shard1.merge(shard2)

        single = LDPJoinSketchAggregator(params, pairs).ingest(reports)
        assert np.allclose(shard1.sketch().counts, single.sketch().counts)

    def test_merge_requires_shared_pairs(self, setup):
        params, pairs = setup
        other = LDPJoinSketchAggregator(params, HashPairs(params.k, params.m, 15))
        agg = LDPJoinSketchAggregator(params, pairs)
        with pytest.raises(IncompatibleSketchError, match="share"):
            agg.merge(other)

    def test_merge_type_checked(self, setup):
        params, pairs = setup
        agg = LDPJoinSketchAggregator(params, pairs)
        with pytest.raises(IncompatibleSketchError):
            agg.merge("not an aggregator")
