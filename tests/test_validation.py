"""Unit tests for :mod:`repro.validation`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DomainError, ParameterError
from repro.validation import (
    as_value_array,
    is_power_of_two,
    require_choice,
    require_domain_values,
    require_in_range,
    require_positive_float,
    require_positive_int,
    require_power_of_two,
    require_probability,
)


class TestRequirePositiveInt:
    def test_accepts_int(self):
        assert require_positive_int("x", 5) == 5

    def test_accepts_numpy_integer(self):
        assert require_positive_int("x", np.int64(7)) == 7

    def test_returns_builtin_int(self):
        assert type(require_positive_int("x", np.int64(7))) is int

    def test_rejects_zero_by_default(self):
        with pytest.raises(ParameterError, match="must be >= 1"):
            require_positive_int("x", 0)

    def test_custom_minimum(self):
        assert require_positive_int("x", 0, minimum=0) == 0

    def test_rejects_bool(self):
        with pytest.raises(ParameterError, match="integer"):
            require_positive_int("x", True)

    def test_rejects_float(self):
        with pytest.raises(ParameterError, match="integer"):
            require_positive_int("x", 2.5)

    def test_rejects_string(self):
        with pytest.raises(ParameterError):
            require_positive_int("x", "3")

    def test_error_is_value_error(self):
        with pytest.raises(ValueError):
            require_positive_int("x", -1)


class TestRequirePositiveFloat:
    def test_accepts_float(self):
        assert require_positive_float("x", 1.5) == 1.5

    def test_accepts_int(self):
        assert require_positive_float("x", 2) == 2.0

    def test_rejects_zero_by_default(self):
        with pytest.raises(ParameterError, match="> 0"):
            require_positive_float("x", 0.0)

    def test_allow_zero(self):
        assert require_positive_float("x", 0.0, allow_zero=True) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            require_positive_float("x", -0.1)

    def test_rejects_nan(self):
        with pytest.raises(ParameterError, match="finite"):
            require_positive_float("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ParameterError, match="finite"):
            require_positive_float("x", float("inf"))

    def test_rejects_bool(self):
        with pytest.raises(ParameterError):
            require_positive_float("x", True)


class TestRequireProbability:
    def test_accepts_half(self):
        assert require_probability("p", 0.5) == 0.5

    def test_accepts_one_by_default(self):
        assert require_probability("p", 1.0) == 1.0

    def test_rejects_one_when_excluded(self):
        with pytest.raises(ParameterError):
            require_probability("p", 1.0, allow_one=False)

    def test_rejects_above_one(self):
        with pytest.raises(ParameterError, match="<= 1"):
            require_probability("p", 1.2)

    def test_rejects_zero_by_default(self):
        with pytest.raises(ParameterError):
            require_probability("p", 0.0)


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 2**20])
    def test_is_power_of_two_true(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, 3, 6, 1000, -4])
    def test_is_power_of_two_false(self, value):
        assert not is_power_of_two(value)

    def test_require_accepts(self):
        assert require_power_of_two("m", 64) == 64

    def test_require_rejects(self):
        with pytest.raises(ParameterError, match="power of two"):
            require_power_of_two("m", 48)


class TestRequireInRange:
    def test_accepts_inside(self):
        assert require_in_range("x", 0.5, 0.0, 1.0) == 0.5

    def test_accepts_bounds(self):
        assert require_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert require_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ParameterError, match="lie in"):
            require_in_range("x", 1.5, 0.0, 1.0)


class TestRequireChoice:
    def test_accepts_member(self):
        assert require_choice("mode", "H", ("H", "L")) == "H"

    def test_rejects_non_member(self):
        with pytest.raises(ParameterError, match="one of"):
            require_choice("mode", "X", ("H", "L"))


class TestAsValueArray:
    def test_list_to_int64(self):
        arr = as_value_array([1, 2, 3])
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 2, 3]

    def test_scalar_promoted(self):
        assert as_value_array(5).tolist() == [5]

    def test_integral_floats_accepted(self):
        assert as_value_array(np.array([1.0, 2.0])).tolist() == [1, 2]

    def test_fractional_floats_rejected(self):
        with pytest.raises(ParameterError, match="integers"):
            as_value_array(np.array([1.5]))

    def test_2d_rejected(self):
        with pytest.raises(ParameterError, match="one-dimensional"):
            as_value_array(np.zeros((2, 2), dtype=np.int64))

    def test_contiguous_output(self):
        arr = as_value_array(np.arange(10)[::2])
        assert arr.flags["C_CONTIGUOUS"]


class TestRequireDomainValues:
    def test_in_range_passes(self):
        arr = require_domain_values([0, 4], 5)
        assert arr.tolist() == [0, 4]

    def test_above_domain_rejected(self):
        with pytest.raises(DomainError, match="lie in"):
            require_domain_values([5], 5)

    def test_negative_rejected(self):
        with pytest.raises(DomainError):
            require_domain_values([-1], 5)

    def test_none_domain_skips_check(self):
        arr = require_domain_values([10**9], None)
        assert arr.tolist() == [10**9]

    def test_empty_ok(self):
        assert require_domain_values([], 5).size == 0
