"""Tests for cyclic (triangle & longer) joins — the Section VI discussion
extension implemented across the exact substrate, COMPASS, and the LDP
protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LDPCompassProtocol
from repro.errors import IncompatibleSketchError, ParameterError
from repro.join import exact_cyclic_join_size
from repro.sketches import CompassChainSketches

from .conftest import zipf_values


def triangle_tables(domain: int, size: int, seed: int):
    """Three two-column tables forming T1(A,B) |> T2(B,C) |> T3(C,A)."""
    return [
        (zipf_values(size, domain, 1.4, seed + 2 * i), zipf_values(size, domain, 1.4, seed + 2 * i + 1))
        for i in range(3)
    ]


class TestExactCyclic:
    def test_triangle_brute_force(self):
        rng = np.random.default_rng(1)
        d = 5
        tables = [
            (rng.integers(0, d, size=30), rng.integers(0, d, size=30)) for _ in range(3)
        ]
        brute = 0
        for a1, b1 in zip(*tables[0]):
            for b2, c2 in zip(*tables[1]):
                if b2 != b1:
                    continue
                for c3, a3 in zip(*tables[2]):
                    brute += int(c3 == c2 and a3 == a1)
        assert exact_cyclic_join_size(tables, [d, d, d]) == brute

    def test_two_cycle_is_symmetric_product(self):
        # T1(A,B) |> T2(B,A): trace(C1 @ C2).
        rng = np.random.default_rng(2)
        d = 4
        t1 = (rng.integers(0, d, size=50), rng.integers(0, d, size=50))
        t2 = (rng.integers(0, d, size=50), rng.integers(0, d, size=50))
        c1 = np.zeros((d, d))
        np.add.at(c1, t1, 1)
        c2 = np.zeros((d, d))
        np.add.at(c2, t2, 1)
        expected = int(np.trace(c1 @ c2))
        assert exact_cyclic_join_size([t1, t2], [d, d]) == expected

    def test_validation(self):
        t = (np.array([0]), np.array([0]))
        with pytest.raises(ParameterError, match="at least two"):
            exact_cyclic_join_size([t], [1])
        with pytest.raises(ParameterError, match="domain sizes"):
            exact_cyclic_join_size([t, t], [1])


class TestCompassCyclic:
    def test_triangle_accuracy(self):
        domain, size = 32, 20_000
        tables = triangle_tables(domain, size, seed=3)
        truth = exact_cyclic_join_size(tables, [domain] * 3)
        sketches = CompassChainSketches([256, 256, 256], k=9, seed=4)
        built = [
            sketches.build_cycle_table(i, left, right)
            for i, (left, right) in enumerate(tables)
        ]
        estimate = sketches.estimate_cycle(built)
        assert truth > 0
        assert abs(estimate - truth) / truth < 0.5

    def test_cycle_table_count_validated(self):
        sketches = CompassChainSketches([8, 8, 8], k=2, seed=5)
        t = sketches.build_cycle_table(0, [1], [1])
        with pytest.raises(IncompatibleSketchError, match="cycle"):
            sketches.estimate_cycle([t])

    def test_ring_pairing_validated(self):
        sketches = CompassChainSketches([8, 8, 8], k=2, seed=6)
        t0 = sketches.build_cycle_table(0, [1], [1])
        t1 = sketches.build_cycle_table(1, [1], [1])
        # Using table 0's sketch in slot 2 breaks the ring.
        with pytest.raises(IncompatibleSketchError, match="ring"):
            sketches.estimate_cycle([t0, t1, t0])


class TestLDPCyclic:
    def test_triangle_with_large_budget(self):
        domain, size = 32, 25_000
        tables = triangle_tables(domain, size, seed=7)
        truth = exact_cyclic_join_size(tables, [domain] * 3)
        protocol = LDPCompassProtocol([128, 128, 128], k=9, epsilon=50.0, seed=8)
        rng = np.random.default_rng(9)
        built = [
            protocol.build_cycle_table(
                i, protocol.encode_cycle_table(i, left, right, rng)
            )
            for i, (left, right) in enumerate(tables)
        ]
        estimate = protocol.estimate_cycle(built)
        assert truth > 0
        assert abs(estimate - truth) / truth < 1.0

    def test_wraparound_pairs_used(self):
        protocol = LDPCompassProtocol([8, 16, 32], k=2, epsilon=2.0, seed=10)
        reports = protocol.encode_cycle_table(2, [1], [1], rng=11)
        # Table 2 joins attribute 2 (m=32) with attribute 0 (m=8).
        assert reports.m_left == 32
        assert reports.m_right == 8

    def test_cycle_validation(self):
        protocol = LDPCompassProtocol([8, 8, 8], k=2, epsilon=2.0, seed=12)
        rng = np.random.default_rng(13)
        t0 = protocol.build_cycle_table(0, protocol.encode_cycle_table(0, [1], [1], rng))
        with pytest.raises(IncompatibleSketchError):
            protocol.estimate_cycle([t0, t0, t0])

    def test_epsilon_improves_cycle_estimate(self):
        domain, size = 16, 15_000
        tables = triangle_tables(domain, size, seed=14)
        truth = exact_cyclic_join_size(tables, [domain] * 3)

        def mean_error(epsilon: float) -> float:
            errors = []
            for seed in range(4):
                protocol = LDPCompassProtocol([64] * 3, k=9, epsilon=epsilon, seed=15)
                rng = np.random.default_rng(200 + seed)
                built = [
                    protocol.build_cycle_table(
                        i, protocol.encode_cycle_table(i, left, right, rng)
                    )
                    for i, (left, right) in enumerate(tables)
                ]
                errors.append(abs(protocol.estimate_cycle(built) - truth))
            return float(np.mean(errors))

        assert mean_error(10.0) < mean_error(0.5)
