"""Compute-backend registry, dispatch and NumPy-kernel pins.

The backend layer (``repro.backend``) must (a) resolve/select backends
deterministically — env override, explicit set, auto-detect with graceful
fallback — and (b) keep the NumPy kernels bit-for-bit equal to the
pre-backend implementations they were extracted from.  Numba-vs-NumPy
parity lives in ``tests/test_backend_parity.py``; this module runs with
or without numba installed.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.backend import (
    Backend,
    BackendUnavailableError,
    available_backends,
    backend_available,
    get_backend,
    register_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.core import SketchParams, encode_reports
from repro.core.client import (
    encode_reports_grouped_into,
    encode_reports_into,
    encode_reports_trials_into,
)
from repro.hashing import HashPairs
from repro.hashing.kwise import (
    MERSENNE_PRIME_31,
    polyval_all_numpy,
    polyval_rows_numpy,
)
from repro.transform.hadamard import hadamard_matrix


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave the process-wide selection untouched by every test."""
    active = backend_mod._ACTIVE
    yield
    backend_mod._ACTIVE = active


def _subprocess_backend_name(env_value):
    """The backend name a fresh interpreter resolves under REPRO_BACKEND."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    if env_value is None:
        env.pop("REPRO_BACKEND", None)
    else:
        env["REPRO_BACKEND"] = env_value
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            "import warnings; warnings.simplefilter('ignore'); "
            "from repro.backend import get_backend; print(get_backend().name)",
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    return out.stdout.strip()


class TestRegistry:
    def test_numpy_is_always_available(self):
        assert "numpy" in available_backends()
        assert backend_available("numpy")
        assert isinstance(resolve_backend("numpy"), NumpyBackend)

    def test_numba_is_registered(self):
        # Registered (auto-detection order: numba first) even when its
        # optional dependency is missing.
        assert available_backends()[0] == "numba"

    def test_get_backend_resolves_once(self):
        first = get_backend()
        assert isinstance(first, Backend)
        assert get_backend() is first

    def test_set_backend_by_name_and_instance(self):
        chosen = set_backend("numpy")
        assert chosen.name == "numpy"
        assert get_backend() is chosen
        custom = NumpyBackend()
        assert set_backend(custom) is custom
        assert get_backend() is custom

    def test_set_backend_none_drops_back_to_default(self):
        set_backend("numpy")
        assert set_backend(None) is get_backend()

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendUnavailableError, match="unknown backend"):
            set_backend("antigravity")
        with pytest.raises(BackendUnavailableError):
            resolve_backend(42)

    @pytest.mark.skipif(
        backend_available("numba"), reason="numba installed: selection succeeds"
    )
    def test_missing_numba_raises_on_explicit_selection(self):
        with pytest.raises(BackendUnavailableError, match="not available"):
            set_backend("numba")

    def test_use_backend_scopes_and_restores(self):
        outer = get_backend()
        custom = NumpyBackend()
        with use_backend(custom) as active:
            assert active is custom
            assert get_backend() is custom
        assert get_backend() is outer

    def test_use_backend_none_is_passthrough(self):
        outer = get_backend()
        with use_backend(None) as active:
            assert active is outer
        assert get_backend() is outer

    def test_use_backend_restores_on_error(self):
        outer = get_backend()
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert get_backend() is outer

    def test_register_backend_collision_and_replace(self):
        try:
            register_backend("test-backend", NumpyBackend)
            with pytest.raises(BackendUnavailableError, match="already registered"):
                register_backend("test-backend", NumpyBackend)
            register_backend("test-backend", NumpyBackend, replace=True)
            assert backend_available("test-backend")
        finally:
            backend_mod._FACTORIES.pop("test-backend", None)
            backend_mod._INSTANCES.pop("test-backend", None)

    def test_unimportable_factory_reports_unavailable(self):
        def factory():
            raise ImportError("no such luck")

        try:
            register_backend("test-broken", factory)
            assert not backend_available("test-broken")
            with pytest.raises(BackendUnavailableError, match="no such luck"):
                resolve_backend("test-broken")
        finally:
            backend_mod._FACTORIES.pop("test-broken", None)


class TestEnvOverride:
    def test_env_forces_numpy_fallback(self):
        # The satellite contract: REPRO_BACKEND=numpy must pin the
        # reference backend even on machines where numba is importable.
        assert _subprocess_backend_name("numpy") == "numpy"

    def test_env_auto_matches_default(self):
        assert _subprocess_backend_name("auto") == _subprocess_backend_name(None)

    def test_env_unknown_warns_and_falls_back(self):
        # Unknown names must not break startup (graceful fallback).
        assert _subprocess_backend_name("antigravity") in available_backends()

    def test_env_warns_in_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "antigravity")
        backend_mod._ACTIVE = None
        with pytest.warns(RuntimeWarning, match="antigravity"):
            assert get_backend().name in available_backends()


@pytest.fixture
def params():
    return SketchParams(k=6, m=64, epsilon=2.0)


@pytest.fixture
def pairs(params):
    return HashPairs(params.k, params.m, seed=1234)


class TestNumpyKernelPins:
    """The extracted kernels must equal the code they were lifted from."""

    def test_polyval_dispatch_matches_reference(self, pairs):
        rng = np.random.default_rng(7)
        rows = rng.integers(0, pairs.k, size=257)
        x = rng.integers(0, MERSENNE_PRIME_31, size=257).astype(np.uint64)
        backend = get_backend()
        assert np.array_equal(
            backend.polyval_mersenne_rows(pairs._bucket_coeffs, rows, x),
            polyval_rows_numpy(pairs._bucket_coeffs, rows, x),
        )
        assert np.array_equal(
            backend.polyval_mersenne_all(pairs._sign_coeffs, x),
            polyval_all_numpy(pairs._sign_coeffs, x),
        )

    @pytest.mark.parametrize("n", [0, 1, 3, 1000])
    def test_fused_encode_matches_batched_reference(self, params, pairs, n):
        values = np.random.default_rng(n).integers(0, 5000, size=n)
        out = np.zeros((params.k, params.m), dtype=np.int64)
        encode_reports_into(values, params, pairs, out, rng=99, chunk_size=7)
        reference = np.zeros_like(out)
        generator = np.random.default_rng(99)
        for start in range(0, n, 7):
            batch = encode_reports(values[start : start + 7], params, pairs, generator)
            np.add.at(
                reference,
                (batch.rows.astype(np.int64), batch.cols.astype(np.int64)),
                batch.ys.astype(np.int64),
            )
        assert np.array_equal(out, reference)

    def test_shared_pass_matches_pairs_reference(self, pairs):
        from repro.transform.hadamard import sample_hadamard_parities

        rng = np.random.default_rng(5)
        n = 513
        values = rng.integers(0, 4096, size=n)
        rows = rng.integers(0, pairs.k, size=n)
        cols = rng.integers(0, pairs.m, size=n)
        cell, base_signs = get_backend().fused_encode_shared_pass(
            pairs._bucket_coeffs,
            pairs._sign_coeffs,
            values.astype(np.uint64),
            rows,
            cols,
            pairs.m,
        )
        buckets, sign_parity = pairs.bucket_and_sign_parity_rows(rows, values)
        expected_signs = 1 - 2 * (
            sign_parity ^ sample_hadamard_parities(buckets, cols, pairs.m)
        )
        assert np.array_equal(cell, rows * pairs.m + cols)
        assert np.array_equal(base_signs, expected_signs)

    def test_bincount_accumulate_dense_and_sparse(self):
        rng = np.random.default_rng(3)
        backend = get_backend()
        # Dense branch: fat batch into a small accumulator.
        out = np.zeros(32, dtype=np.int64)
        flat = rng.integers(0, 32, size=1000)
        ys = rng.choice(np.array([-1, 1], dtype=np.int64), size=1000)
        backend.bincount_accumulate(out, flat, ys)
        expected = np.zeros_like(out)
        np.add.at(expected, flat, ys)
        assert np.array_equal(out, expected)
        # Sparse branch: tiny batch into a huge accumulator.
        out = np.zeros(100_000, dtype=np.float64)
        flat = rng.integers(0, 100_000, size=8)
        w = rng.normal(size=8)
        backend.bincount_accumulate(out, flat, w)
        expected = np.zeros_like(out)
        np.add.at(expected, flat, w)
        assert np.array_equal(out, expected)
        # Counts (weights=None).
        out = np.zeros(16, dtype=np.int64)
        flat = rng.integers(0, 16, size=64)
        backend.bincount_accumulate(out, flat, None)
        assert np.array_equal(out, np.bincount(flat, minlength=16))

    def test_oracle_support_scan_reports_mode(self):
        rng = np.random.default_rng(11)
        users, g = 200, 8
        a = rng.integers(1, MERSENNE_PRIME_31, size=users, dtype=np.int64)
        b = rng.integers(0, MERSENNE_PRIME_31, size=users, dtype=np.int64)
        reports = rng.integers(0, g, size=users, dtype=np.int64)
        candidates = rng.integers(0, 1000, size=37).astype(np.int64)
        support = get_backend().oracle_support_scan(
            a, b, candidates, g, reports=reports
        )
        hashed = ((a[:, None] * candidates[None, :] + b[:, None]) % MERSENNE_PRIME_31) % g
        expected = np.count_nonzero(hashed == reports[:, None], axis=0).astype(float)
        assert np.array_equal(support, expected)

    def test_oracle_support_scan_counts_mode(self):
        rng = np.random.default_rng(13)
        pool, g = 31, 6
        a = rng.integers(1, MERSENNE_PRIME_31, size=pool, dtype=np.int64)
        b = rng.integers(0, MERSENNE_PRIME_31, size=pool, dtype=np.int64)
        counts = rng.integers(0, 50, size=(pool, g)).astype(np.int64)
        candidates = rng.integers(0, 1000, size=23).astype(np.int64)
        support = get_backend().oracle_support_scan(
            a, b, candidates, g, counts=counts
        )
        table = ((a[:, None] * candidates[None, :] + b[:, None]) % MERSENNE_PRIME_31) % g
        expected = counts[np.arange(pool)[:, None], table].sum(axis=0).astype(float)
        assert np.array_equal(support, expected)

    def test_oracle_support_scan_rejects_ambiguous_mode(self):
        backend = get_backend()
        one = np.ones(1, dtype=np.int64)
        with pytest.raises(ValueError, match="exactly one"):
            backend.oracle_support_scan(one, one, one, 2)
        with pytest.raises(ValueError, match="exactly one"):
            backend.oracle_support_scan(
                one, one, one, 2, reports=one, counts=np.ones((1, 2))
            )

    def test_fwht_dispatch_matches_matrix_product(self):
        rng = np.random.default_rng(17)
        data = rng.normal(size=(5, 16))
        from repro.transform.hadamard import fwht_inplace

        expected = data @ hadamard_matrix(16)
        out = fwht_inplace(data.copy())
        assert np.allclose(out, expected)


class TestApiThreading:
    """Backend pins on sessions / estimators stay bit-compatible."""

    def _session_estimate(self, backend):
        from repro.api import JoinSession

        session = JoinSession(
            SketchParams(6, 128, 2.0), seed=42, backend=backend
        )
        rng = np.random.default_rng(0)
        session.collect("A", rng.integers(0, 500, size=4000))
        session.collect("B", rng.integers(0, 500, size=4000))
        return session.estimate()

    def test_session_backend_pin_matches_default(self):
        default = self._session_estimate(None)
        pinned = self._session_estimate("numpy")
        assert pinned.estimate == default.estimate

    def test_session_shard_inherits_pin(self):
        from repro.api import JoinSession

        session = JoinSession(SketchParams(4, 32, 2.0), seed=1, backend="numpy")
        assert session.spawn_shard(seed=2).backend == "numpy"

    def test_registry_backend_option(self):
        from repro.api import get_estimator
        from repro.data import make_join_instance

        instance = make_join_instance("zipf-1.1", size=2000, seed=3)
        default = get_estimator("ldp-join-sketch", k=4, m=64)
        pinned = get_estimator("ldp-join-sketch", k=4, m=64, backend="numpy")
        assert pinned.backend == "numpy"
        assert (
            pinned.estimate(instance, 2.0, seed=7).estimate
            == default.estimate(instance, 2.0, seed=7).estimate
        )

    def test_registry_backend_option_on_oracle_methods(self):
        from repro.api import get_estimator
        from repro.data import make_join_instance

        instance = make_join_instance("zipf-1.1", size=500, seed=3)
        default = get_estimator("flh", pool_size=32)
        pinned = get_estimator("flh", pool_size=32, backend="numpy")
        assert (
            pinned.estimate(instance, 2.0, seed=7).estimate
            == default.estimate(instance, 2.0, seed=7).estimate
        )

    def test_sweep_ships_backend_to_workers(self, monkeypatch):
        # Unit-level: the worker entry point re-pins the named backend.
        import repro.experiments.sweep as sweep_mod

        calls = []
        monkeypatch.setattr(
            sweep_mod, "_WORKER_BACKEND", None, raising=True
        )

        def fake_set(name):
            calls.append(name)
            return get_backend()

        monkeypatch.setattr("repro.backend.set_backend", fake_set)
        sweep_mod._ensure_worker_backend("numpy")
        assert calls == ["numpy"]
        # Second call with the same name is a no-op.
        sweep_mod._ensure_worker_backend("numpy")
        assert calls == ["numpy"]


class TestFusedKernelFallbacks:
    def test_heterogeneous_pairs_fall_back(self, params):
        # Hand-built pairs with mixed hash degrees have no stacked
        # coefficient matrices; the dispatcher must take the generic
        # path and still match the batched reference.
        from repro.hashing.kwise import KWiseHash
        from repro.hashing.sign import SignHash

        rng = np.random.default_rng(0)
        bucket_hashes = [
            KWiseHash(independence=2 + (j % 2), seed=j) for j in range(params.k)
        ]
        sign_hashes = [SignHash(seed=100 + j) for j in range(params.k)]
        pairs = HashPairs(
            params.k, params.m, bucket_hashes=bucket_hashes, sign_hashes=sign_hashes
        )
        assert pairs._bucket_coeffs is None
        values = rng.integers(0, 1000, size=333)
        out = np.zeros((params.k, params.m), dtype=np.int64)
        encode_reports_into(values, params, pairs, out, rng=5, chunk_size=50)
        reference = np.zeros_like(out)
        generator = np.random.default_rng(5)
        for start in range(0, 333, 50):
            batch = encode_reports(values[start : start + 50], params, pairs, generator)
            np.add.at(
                reference,
                (batch.rows.astype(np.int64), batch.cols.astype(np.int64)),
                batch.ys.astype(np.int64),
            )
        assert np.array_equal(out, reference)

    def test_trials_and_grouped_accept_backend_kwarg(self, params, pairs):
        values = np.random.default_rng(1).integers(0, 1000, size=200)
        out = np.zeros((2, params.k, params.m), dtype=np.int64)
        encode_reports_trials_into(
            values, params, pairs, out, [1, 2], chunk_size=64, backend="numpy"
        )
        reference = np.zeros_like(out)
        encode_reports_trials_into(
            values, params, pairs, reference, [1, 2], chunk_size=64
        )
        assert np.array_equal(out, reference)
        grouped = np.zeros((2, 2, params.k, params.m), dtype=np.int64)
        encode_reports_grouped_into(
            values, pairs, [1.0, 4.0], grouped, 7, [1, 2], backend="numpy"
        )
        grouped_ref = np.zeros_like(grouped)
        encode_reports_grouped_into(
            values, pairs, [1.0, 4.0], grouped_ref, 7, [1, 2]
        )
        assert np.array_equal(grouped, grouped_ref)
