"""Tests for the extended mechanism family (OUE, Hadamard Response) and
the predicate-restricted join feature."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.core import SketchParams, build_sketch, encode_reports
from repro.hashing import HashPairs
from repro.join import FrequencyVector
from repro.mechanisms import HadamardResponseOracle, OUEOracle
from repro.privacy import verify_ldp
from repro.transform import hadamard_matrix

from .conftest import zipf_values


class TestOUE:
    def test_unbiased_on_planted_value(self):
        domain, count = 64, 8_000
        values = np.concatenate(
            [np.full(count, 5, dtype=np.int64), zipf_values(4_000, domain, 1.2, 1)]
        )
        estimates = []
        for seed in range(8):
            oracle = OUEOracle(domain, 2.0, seed=seed)
            oracle.collect(values)
            estimates.append(float(oracle.frequencies(np.asarray([5]))[0]))
        true = count + int(np.sum(zipf_values(4_000, domain, 1.2, 1) == 5))
        assert abs(float(np.mean(estimates)) - true) < 0.1 * true

    def test_report_bits_is_domain(self):
        assert OUEOracle(1024, 1.0, 0).report_bits == 1024

    def test_total_mass_preserved(self):
        domain = 32
        values = zipf_values(20_000, domain, 1.3, 2)
        oracle = OUEOracle(domain, 3.0, seed=3)
        oracle.collect(values)
        assert abs(float(np.sum(oracle.all_frequencies())) - 20_000) < 3_000

    def test_exact_ldp_audit(self):
        """Enumerate OUE's bit-vector distribution on a tiny domain."""
        domain, eps = 3, 1.2
        p, q = 0.5, 1.0 / (math.exp(eps) + 1.0)

        def dist(x: int):
            out = {}
            for bits in itertools.product((0, 1), repeat=domain):
                prob = 1.0
                for position, bit in enumerate(bits):
                    on = p if position == x else q
                    prob *= on if bit else (1.0 - on)
                out[bits] = prob
            return out

        ok, ratio = verify_ldp(dist, list(range(domain)), eps)
        assert ok
        assert ratio == pytest.approx(math.exp(eps))


class TestHadamardResponse:
    def test_order_covers_domain(self):
        oracle = HadamardResponseOracle(100, 1.0, 0)
        assert oracle.order >= 101
        assert oracle.order & (oracle.order - 1) == 0

    def test_unbiased_on_planted_value(self):
        domain, count = 100, 10_000
        values = np.concatenate(
            [np.full(count, 9, dtype=np.int64), zipf_values(5_000, domain, 1.2, 4)]
        )
        estimates = []
        for seed in range(8):
            oracle = HadamardResponseOracle(domain, 2.0, seed=seed)
            oracle.collect(values)
            estimates.append(float(oracle.frequencies(np.asarray([9]))[0]))
        true = count + int(np.sum(zipf_values(5_000, domain, 1.2, 4) == 9))
        assert abs(float(np.mean(estimates)) - true) < 0.1 * true

    def test_report_distribution_two_level(self):
        """Empirically: Pr[y in S_d] == e^eps/(e^eps+1)."""
        domain, eps = 10, 1.5
        oracle = HadamardResponseOracle(domain, eps, seed=5)
        values = np.full(60_000, 4, dtype=np.int64)
        oracle.collect(values)
        h = hadamard_matrix(oracle.order)
        in_set = h[5] == 1  # row d + 1
        observed = float(oracle._report_histogram[in_set].sum() / oracle.num_reports)
        expected = math.exp(eps) / (math.exp(eps) + 1.0)
        assert abs(observed - expected) < 0.01

    def test_exact_ldp_audit(self):
        domain, eps = 6, 1.0
        oracle = HadamardResponseOracle(domain, eps, seed=6)
        h = hadamard_matrix(oracle.order)
        p = math.exp(eps) / (math.exp(eps) + 1.0)
        half = oracle.order // 2

        def dist(x: int):
            row = h[x + 1]
            return {
                j: (p / half if row[j] == 1 else (1.0 - p) / half)
                for j in range(oracle.order)
            }

        ok, ratio = verify_ldp(dist, list(range(domain)), eps)
        assert ok
        assert ratio == pytest.approx(math.exp(eps))

    def test_wht_readout_matches_naive_counting(self):
        domain = 20
        oracle = HadamardResponseOracle(domain, 2.0, seed=7)
        oracle.collect(zipf_values(5_000, domain, 1.3, 8))
        h = hadamard_matrix(oracle.order)
        candidates = np.arange(domain)
        fast = oracle.frequencies(candidates)
        p = oracle.p
        naive = []
        for d in candidates:
            support = float(oracle._report_histogram[h[d + 1] == 1].sum())
            naive.append((support - oracle.num_reports / 2.0) / (p - 0.5))
        assert np.allclose(fast, naive)


class TestRestrictedJoin:
    def test_matches_partial_truth(self):
        params = SketchParams(k=9, m=512, epsilon=20.0)
        pairs = HashPairs(params.k, params.m, seed=9)
        a = zipf_values(40_000, 256, 1.4, seed=10)
        b = zipf_values(40_000, 256, 1.4, seed=11)
        sa = build_sketch(encode_reports(a, params, pairs, 12), pairs)
        sb = build_sketch(encode_reports(b, params, pairs, 13), pairs)
        fa = FrequencyVector.from_values(a, 256)
        fb = FrequencyVector.from_values(b, 256)
        subset = fa.top_k(5)
        truth = fa.restrict(subset).inner(fb.restrict(subset))
        estimate = sa.join_size_restricted(sb, subset)
        assert estimate == pytest.approx(truth, rel=0.2)

    def test_full_domain_restriction_approximates_join(self):
        params = SketchParams(k=9, m=512, epsilon=20.0)
        pairs = HashPairs(params.k, params.m, seed=14)
        a = zipf_values(30_000, 128, 1.4, seed=15)
        sa = build_sketch(encode_reports(a, params, pairs, 16), pairs)
        sb = build_sketch(encode_reports(a, params, pairs, 17), pairs)
        full = sa.join_size(sb)
        restricted = sa.join_size_restricted(sb, np.arange(128))
        # Different estimators, same quantity: agree within sketch noise.
        assert restricted == pytest.approx(full, rel=0.3)

    def test_requires_compatible_sketches(self):
        params = SketchParams(k=2, m=16, epsilon=2.0)
        s1 = build_sketch(
            encode_reports([1], params, HashPairs(2, 16, 18), 19), HashPairs(2, 16, 18)
        )
        s2 = build_sketch(
            encode_reports([1], params, HashPairs(2, 16, 20), 21), HashPairs(2, 16, 20)
        )
        with pytest.raises(Exception):
            s1.join_size_restricted(s2, [1])
