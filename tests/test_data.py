"""Tests for the synthetic data substrate (:mod:`repro.data`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DATASETS,
    EgoNetworkGenerator,
    GaussianGenerator,
    MovieLensGenerator,
    TPCDSStoreSalesGenerator,
    ZipfGenerator,
    make_join_instance,
    paper_dataset_table,
    sample_from_pmf,
)
from repro.errors import DataGenerationError
from repro.join import FrequencyVector


class TestSampleFromPMF:
    def test_range(self):
        pmf = np.ones(10) / 10
        out = sample_from_pmf(pmf, 1000, rng=0)
        assert out.min() >= 0 and out.max() < 10

    def test_deterministic(self):
        pmf = np.ones(5) / 5
        assert np.array_equal(sample_from_pmf(pmf, 100, rng=1), sample_from_pmf(pmf, 100, rng=1))

    def test_zero_size(self):
        assert sample_from_pmf(np.ones(3), 0).size == 0

    def test_respects_zero_mass(self):
        pmf = np.array([0.0, 1.0, 0.0])
        out = sample_from_pmf(pmf, 1000, rng=2)
        assert np.all(out == 1)

    def test_distribution_chi2(self):
        pmf = np.array([0.5, 0.3, 0.2])
        n = 100_000
        out = sample_from_pmf(pmf, n, rng=3)
        counts = np.bincount(out, minlength=3)
        chi2 = float(np.sum((counts - n * pmf) ** 2 / (n * pmf)))
        assert chi2 < 20  # 2 dof, generous

    def test_unnormalised_pmf_accepted(self):
        out = sample_from_pmf(np.array([2.0, 2.0]), 1000, rng=4)
        frac = float(np.mean(out == 0))
        assert abs(frac - 0.5) < 0.05

    def test_invalid_pmf_rejected(self):
        with pytest.raises(DataGenerationError):
            sample_from_pmf(np.array([-1.0, 2.0]), 10)
        with pytest.raises(DataGenerationError):
            sample_from_pmf(np.zeros(3), 10)
        with pytest.raises(DataGenerationError):
            sample_from_pmf(np.array([np.nan, 1.0]), 10)


class TestZipf:
    def test_pmf_is_zipf(self):
        gen = ZipfGenerator(100, alpha=2.0)
        pmf = gen.pmf()
        # p(1)/p(2) = 2^alpha.
        assert pmf[0] / pmf[1] == pytest.approx(4.0)
        assert pmf.sum() == pytest.approx(1.0)

    def test_skew_monotone_in_alpha(self):
        top_share = lambda a: ZipfGenerator(1000, alpha=a).pmf()[0]
        assert top_share(1.1) < top_share(1.5) < top_share(2.0)

    def test_shuffle_preserves_multiset(self):
        plain = ZipfGenerator(50, alpha=1.5)
        shuffled = ZipfGenerator(50, alpha=1.5, shuffle_seed=9)
        assert np.allclose(np.sort(plain.pmf()), np.sort(shuffled.pmf()))
        assert not np.allclose(plain.pmf(), shuffled.pmf())

    def test_sample_reproducible(self):
        gen = ZipfGenerator(100, alpha=1.3)
        assert np.array_equal(gen.sample(500, rng=5), gen.sample(500, rng=5))

    def test_name_carries_alpha(self):
        assert ZipfGenerator(10, alpha=1.5).name == "zipf(a=1.5)"


class TestGaussian:
    def test_pmf_peaks_at_mean(self):
        gen = GaussianGenerator(1000, mean=400.0, std=50.0)
        assert int(np.argmax(gen.pmf())) == 400

    def test_default_parameters(self):
        gen = GaussianGenerator(800)
        assert gen.mean == 400.0
        assert gen.std == 100.0

    def test_symmetry(self):
        gen = GaussianGenerator(101, mean=50.0, std=10.0)
        pmf = gen.pmf()
        assert np.allclose(pmf, pmf[::-1], atol=1e-12)

    def test_degenerate_std_handled(self):
        gen = GaussianGenerator(10_000, mean=5000.0, std=1e-9)
        pmf = gen.pmf()
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[5000] == pytest.approx(1.0)

    def test_low_skew(self):
        # Gaussian top-1 share is tiny compared to zipf.
        g = GaussianGenerator(10_000).pmf()[np.argmax(GaussianGenerator(10_000).pmf())]
        z = ZipfGenerator(10_000, alpha=1.5).pmf()[0]
        assert g < z / 10


class TestDomainSpecificGenerators:
    def test_tpcds_shape(self):
        gen = TPCDSStoreSalesGenerator()
        assert gen.domain_size == 18_000
        pmf = gen.pmf()
        assert pmf.sum() == pytest.approx(1.0)
        # Moderate skew: top item below 1%, far above uniform.
        assert 1.0 / 18_000 < pmf.max() < 0.01

    def test_tpcds_weights_fixed_by_seed(self):
        assert np.allclose(
            TPCDSStoreSalesGenerator(weights_seed=1).pmf(),
            TPCDSStoreSalesGenerator(weights_seed=1).pmf(),
        )
        assert not np.allclose(
            TPCDSStoreSalesGenerator(weights_seed=1).pmf(),
            TPCDSStoreSalesGenerator(weights_seed=2).pmf(),
        )

    def test_movielens_longtail(self):
        gen = MovieLensGenerator()
        pmf = gen.pmf()
        assert gen.domain_size == 83_239
        # Zipf-Mandelbrot: flattened head (ratio near 1), power-law tail.
        assert pmf[0] / pmf[1] < 1.05
        assert pmf[0] / pmf[-1] > 100

    def test_ego_presets(self):
        tw = EgoNetworkGenerator.twitter()
        fb = EgoNetworkGenerator.facebook()
        assert tw.domain_size == 77_072 and tw.name == "twitter"
        assert fb.domain_size == 4_039 and fb.name == "facebook"

    def test_ego_gamma_validation(self):
        with pytest.raises(Exception):
            EgoNetworkGenerator(100, gamma=1.0)

    def test_ego_degree_skew(self):
        gen = EgoNetworkGenerator(10_000, gamma=2.1)
        pmf = gen.pmf()
        # Heavier tail exponent -> more skew than gamma=3.
        flat = EgoNetworkGenerator(10_000, gamma=3.0).pmf()
        assert pmf[0] > flat[0]


class TestJoinInstance:
    def test_truth_matches_frequency_vectors(self):
        gen = ZipfGenerator(64, alpha=1.3)
        instance = gen.make_join_instance(2_000, rng=6)
        fa = FrequencyVector.from_values(instance.values_a, 64)
        fb = FrequencyVector.from_values(instance.values_b, 64)
        assert instance.true_join_size == fa.inner(fb)

    def test_split_mode_partitions_one_stream(self):
        gen = ZipfGenerator(64, alpha=1.3)
        instance = gen.make_join_instance(1_000, rng=7, mode="split")
        assert instance.size_a == instance.size_b == 1_000

    def test_size_b_override(self):
        gen = ZipfGenerator(64, alpha=1.3)
        instance = gen.make_join_instance(500, rng=8, size_b=700)
        assert instance.size_a == 500 and instance.size_b == 700

    def test_unknown_mode(self):
        gen = ZipfGenerator(64, alpha=1.3)
        with pytest.raises(DataGenerationError):
            gen.make_join_instance(10, rng=9, mode="clone")

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_reproducible(self, seed):
        gen = ZipfGenerator(32, alpha=1.2)
        i1 = gen.make_join_instance(200, rng=seed)
        i2 = gen.make_join_instance(200, rng=seed)
        assert np.array_equal(i1.values_a, i2.values_a)
        assert np.array_equal(i1.values_b, i2.values_b)


class TestRegistry:
    def test_all_fig5_datasets_registered(self):
        for name in ("zipf-1.1", "gaussian", "movielens", "tpcds", "twitter", "facebook"):
            assert name in DATASETS

    def test_make_join_instance_scales(self):
        instance = make_join_instance("facebook", scale=0.01, seed=10)
        assert instance.size_a == round(352_936 * 0.01)
        assert instance.name == "facebook"

    def test_size_override(self):
        instance = make_join_instance("tpcds", size=1234, seed=11)
        assert instance.size_a == 1234

    def test_minimum_size_floor(self):
        instance = make_join_instance("facebook", scale=1e-9, seed=12)
        assert instance.size_a == 100

    def test_unknown_dataset(self):
        with pytest.raises(DataGenerationError, match="unknown dataset"):
            make_join_instance("imdb")

    def test_paper_table_rows(self):
        rows = paper_dataset_table(["facebook", "tpcds"])
        assert rows[0] == ("facebook", "4,039", 352_936)
        assert rows[1] == ("tpcds", "18,000", 5_760_808)

    def test_zipf_alpha_variants_distinct(self):
        low = make_join_instance("zipf-1.1", size=20_000, seed=13)
        high = make_join_instance("zipf-1.9", size=20_000, seed=13)
        top_low = FrequencyVector.from_values(low.values_a, low.domain_size).counts.max()
        top_high = FrequencyVector.from_values(high.values_a, high.domain_size).counts.max()
        assert top_high > top_low
