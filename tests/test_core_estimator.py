"""Tests for :mod:`repro.core.estimator` (Eq. 5 wrapper + frequent items)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SketchParams,
    build_sketch,
    encode_reports,
    estimate_join_size,
    find_frequent_items,
)
from repro.errors import ParameterError
from repro.hashing import HashPairs

from .conftest import zipf_values


def _sketch_of(values, params, pairs, seed):
    return build_sketch(encode_reports(values, params, pairs, seed), pairs)


class TestEstimateJoinSize:
    def test_delegates_to_sketch(self, medium_params, medium_pairs):
        a = zipf_values(5_000, 100, 1.3, 1)
        b = zipf_values(5_000, 100, 1.3, 2)
        sa = _sketch_of(a, medium_params, medium_pairs, 3)
        sb = _sketch_of(b, medium_params, medium_pairs, 4)
        assert estimate_join_size(sa, sb) == sa.join_size(sb)


class TestFindFrequentItems:
    def _heavy_sketch(self, params, pairs, seed=5):
        # Three planted heavy hitters over light zipf noise.
        values = np.concatenate(
            [
                np.full(6_000, 3, dtype=np.int64),
                np.full(5_000, 17, dtype=np.int64),
                np.full(4_000, 41, dtype=np.int64),
                zipf_values(5_000, 100, 1.05, seed),
            ]
        )
        return _sketch_of(values, params, pairs, seed + 1), values

    def test_recovers_planted_heavy_hitters(self):
        params = SketchParams(k=5, m=256, epsilon=6.0)
        pairs = HashPairs(params.k, params.m, seed=6)
        sketch, values = self._heavy_sketch(params, pairs)
        fi = find_frequent_items(sketch, 100, threshold=0.1)
        assert {3, 17, 41} <= set(fi.tolist())

    def test_excludes_light_items(self):
        params = SketchParams(k=5, m=512, epsilon=6.0)
        pairs = HashPairs(params.k, params.m, seed=7)
        sketch, values = self._heavy_sketch(params, pairs)
        fi = find_frequent_items(sketch, 100, threshold=0.1)
        # The 10% cutoff sits far above the LDP noise floor here
        # (~c*sqrt(F1) ~ 145), so only the planted heavy hitters (15-30%
        # shares) should pass; nothing under a 3% share may appear.
        counts = np.bincount(values, minlength=100)
        for item in fi:
            assert counts[item] / values.size > 0.03

    def test_median_detection_robust_to_heavy_collision(self):
        # One enormous value plus a light tail: the mean read-out lets the
        # heavy item's collisions push light items over the threshold; the
        # median read-out does not.
        params = SketchParams(k=9, m=64, epsilon=50.0)
        pairs = HashPairs(params.k, params.m, seed=21)
        values = np.concatenate(
            [np.full(50_000, 11, dtype=np.int64), zipf_values(5_000, 100, 1.01, 22)]
        )
        sketch = _sketch_of(values, params, pairs, 23)
        fi_median = find_frequent_items(sketch, 100, threshold=0.05, method="median")
        fi_mean = find_frequent_items(sketch, 100, threshold=0.05, method="mean")
        assert 11 in fi_median
        # Median keeps the set at (or very near) the single true heavy
        # hitter; the mean read-out admits collision-inflated extras.
        assert fi_median.size <= fi_mean.size
        assert fi_median.size <= 3

    def test_method_validation(self):
        params = SketchParams(k=2, m=8, epsilon=1.0)
        pairs = HashPairs(2, 8, 24)
        sketch = _sketch_of([1], params, pairs, 25)
        with pytest.raises(ParameterError, match="method"):
            find_frequent_items(sketch, 10, threshold=0.1, method="mode")

    def test_chunking_invariance(self):
        params = SketchParams(k=3, m=64, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=8)
        sketch, _ = self._heavy_sketch(params, pairs)
        full = find_frequent_items(sketch, 100, threshold=0.05)
        chunked = find_frequent_items(sketch, 100, threshold=0.05, chunk_size=7)
        assert np.array_equal(full, chunked)

    def test_total_override(self):
        params = SketchParams(k=3, m=64, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=9)
        sketch, _ = self._heavy_sketch(params, pairs)
        # Doubling the reference total halves the effective threshold mass.
        lenient = find_frequent_items(sketch, 100, threshold=0.05, total=sketch.num_reports / 4)
        strict = find_frequent_items(sketch, 100, threshold=0.05, total=sketch.num_reports * 4)
        assert set(strict.tolist()) <= set(lenient.tolist())

    def test_threshold_one_returns_empty(self):
        params = SketchParams(k=3, m=64, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=10)
        sketch, _ = self._heavy_sketch(params, pairs)
        assert find_frequent_items(sketch, 100, threshold=1.0).size == 0

    def test_validation(self):
        params = SketchParams(k=2, m=8, epsilon=1.0)
        pairs = HashPairs(2, 8, 11)
        sketch = _sketch_of([1], params, pairs, 12)
        with pytest.raises(ParameterError):
            find_frequent_items(sketch, 0, threshold=0.1)
        with pytest.raises(ParameterError):
            find_frequent_items(sketch, 10, threshold=2.0)
        with pytest.raises(ParameterError):
            find_frequent_items(sketch, 10, threshold=0.1, total=-5)

    def test_result_sorted_unique(self):
        params = SketchParams(k=5, m=256, epsilon=6.0)
        pairs = HashPairs(params.k, params.m, seed=13)
        sketch, _ = self._heavy_sketch(params, pairs)
        fi = find_frequent_items(sketch, 100, threshold=0.05)
        assert np.array_equal(fi, np.unique(fi))
