"""Tests for :mod:`repro.privacy`: primitives, budgets, exact LDP audits.

The audit tests are the executable versions of Theorems 1 and 6: for small
``(k, m)`` we enumerate the *exact* output distribution of the client
algorithms and assert the e^eps dominance bound over every input pair.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.privacy import (
    BudgetLedger,
    PrivacySpec,
    c_epsilon,
    flip_probability,
    grr_perturb,
    grr_probabilities,
    keep_probability,
    max_privacy_ratio,
    random_signs,
    verify_ldp,
)


class TestResponsePrimitives:
    def test_flip_keep_sum_to_one(self):
        for eps in (0.1, 1.0, 4.0, 10.0):
            assert flip_probability(eps) + keep_probability(eps) == pytest.approx(1.0)

    def test_flip_probability_values(self):
        assert flip_probability(0.0001) == pytest.approx(0.5, abs=1e-4)
        assert flip_probability(4.0) == pytest.approx(1 / (math.exp(4) + 1))

    def test_flip_probability_monotone(self):
        eps = np.linspace(0.1, 10, 20)
        probs = [flip_probability(e) for e in eps]
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_c_epsilon_value(self):
        assert c_epsilon(1.0) == pytest.approx((math.e + 1) / (math.e - 1))

    def test_c_epsilon_is_inverse_mean_of_sign(self):
        # E[b] = p - q = (e^eps - 1)/(e^eps + 1) = 1 / c_eps.
        for eps in (0.5, 2.0, 6.0):
            mean_b = keep_probability(eps) - flip_probability(eps)
            assert mean_b * c_epsilon(eps) == pytest.approx(1.0)

    def test_large_epsilon_does_not_overflow(self):
        assert flip_probability(10_000) == pytest.approx(0.0)
        assert c_epsilon(10_000) == pytest.approx(1.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ParameterError):
            flip_probability(0.0)
        with pytest.raises(ParameterError):
            c_epsilon(-1.0)

    def test_random_signs_values(self):
        signs = random_signs(10_000, 4.0, rng=0)
        assert set(np.unique(signs)) <= {-1, 1}

    def test_random_signs_flip_rate(self):
        signs = random_signs(200_000, 2.0, rng=1)
        observed = float(np.mean(signs == -1))
        expected = flip_probability(2.0)
        # Binomial sd ~ 0.0007; allow 5 sd.
        assert abs(observed - expected) < 0.004

    def test_random_signs_deterministic(self):
        assert np.array_equal(random_signs(100, 1.0, rng=7), random_signs(100, 1.0, rng=7))

    def test_random_signs_negative_size(self):
        with pytest.raises(ParameterError):
            random_signs(-1, 1.0)

    def test_grr_probabilities_sum(self):
        p, q = grr_probabilities(2.0, 10)
        assert p + 9 * q == pytest.approx(1.0)
        assert p / q == pytest.approx(math.exp(2.0))

    def test_grr_perturb_domain(self):
        values = np.zeros(10_000, dtype=np.int64)
        out = grr_perturb(values, 7, 1.0, rng=2)
        assert out.min() >= 0 and out.max() < 7

    def test_grr_perturb_keep_rate(self):
        values = np.full(100_000, 3, dtype=np.int64)
        out = grr_perturb(values, 16, 2.0, rng=3)
        p, _ = grr_probabilities(2.0, 16)
        observed = float(np.mean(out == 3))
        assert abs(observed - p) < 0.01

    def test_grr_perturb_uniform_replacement(self):
        values = np.zeros(200_000, dtype=np.int64)
        out = grr_perturb(values, 4, 0.5, rng=4)
        _, q = grr_probabilities(0.5, 4)
        for other in (1, 2, 3):
            assert abs(float(np.mean(out == other)) - q) < 0.01

    def test_grr_perturb_large_epsilon_identity(self):
        values = np.arange(1000) % 50
        out = grr_perturb(values, 50, 100.0, rng=5)
        assert np.array_equal(out, values)

    def test_grr_perturb_rejects_out_of_domain(self):
        with pytest.raises(ParameterError):
            grr_perturb(np.array([5]), 5, 1.0)

    @given(st.integers(min_value=2, max_value=64), st.floats(min_value=0.1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_grr_probability_identity(self, domain, eps):
        p, q = grr_probabilities(eps, domain)
        assert p + (domain - 1) * q == pytest.approx(1.0)
        assert p / q == pytest.approx(math.exp(eps))


class TestBudget:
    def test_spec_validation(self):
        with pytest.raises(ParameterError):
            PrivacySpec(0.0)
        assert PrivacySpec(2.0).e_epsilon == pytest.approx(math.exp(2.0))

    def test_sequential_composition_within_group(self):
        ledger = BudgetLedger()
        ledger.charge("A", 1.0, "m1")
        ledger.charge("A", 2.0, "m2")
        assert ledger.spend_by_group() == {"A": 3.0}
        assert ledger.worst_case_epsilon() == 3.0

    def test_parallel_composition_across_groups(self):
        ledger = BudgetLedger()
        ledger.charge("A1", 4.0, "fap")
        ledger.charge("A2", 4.0, "fap")
        assert ledger.worst_case_epsilon() == 4.0
        ledger.assert_within(PrivacySpec(4.0))

    def test_assert_within_raises_on_overspend(self):
        ledger = BudgetLedger()
        ledger.charge("A", 3.0, "m")
        ledger.charge("A", 2.0, "m")
        with pytest.raises(ParameterError, match="budget exceeded"):
            ledger.assert_within(PrivacySpec(4.0))

    def test_empty_ledger(self):
        assert BudgetLedger().worst_case_epsilon() == 0.0

    def test_charge_validation(self):
        ledger = BudgetLedger()
        with pytest.raises(ParameterError):
            ledger.charge("", 1.0, "m")
        with pytest.raises(ParameterError):
            ledger.charge("A", -1.0, "m")


class TestAbsorbAndRestore:
    def test_absorb_renames_collisions(self):
        ledger = BudgetLedger()
        ledger.charge("A", 4.0, "fap")
        ledger.absorb([("A", 4.0, "fap")], label="shard2")
        assert ledger.worst_case_epsilon() == 4.0
        groups = [g for g, _, _ in ledger.charges]
        assert groups == ["A", "A@shard21"]

    def test_absorb_probes_until_unique(self):
        # Absorbing shard after shard with the SAME label must still keep
        # every cohort's group distinct — the probe walks @label1, @label2,
        # ... instead of landing the third shard's charge on the second's.
        ledger = BudgetLedger()
        ledger.charge("A", 4.0, "fap")
        ledger.absorb([("A", 4.0, "fap")], label="shard")
        ledger.absorb([("A", 4.0, "fap")], label="shard")
        groups = [g for g, _, _ in ledger.charges]
        assert len(groups) == len(set(groups)) == 3
        assert ledger.worst_case_epsilon() == 4.0

    def test_absorb_without_collision_keeps_name(self):
        ledger = BudgetLedger()
        ledger.charge("A", 4.0, "fap")
        ledger.absorb([("B", 4.0, "fap")], label="shard2")
        assert [g for g, _, _ in ledger.charges] == ["A", "B"]

    def test_absorb_treats_same_name_rows_as_disjoint_cohorts(self):
        # Sessions name every cohort uniquely (``A``, ``A#2``, ...), so two
        # same-named rows inside one absorb call are by construction
        # disjoint cohorts from different lineages — the second probes to a
        # fresh group instead of sequentially composing with the first.
        ledger = BudgetLedger()
        ledger.absorb([("A", 1.0, "m"), ("A", 2.0, "m")], label="s")
        assert ledger.spend_by_group() == {"A": 1.0, "A@s1": 2.0}

    def test_absorb_self_alias_terminates(self):
        # Absorbing a ledger's own charge list must not loop on the rows
        # it appends (the iterable aliases the destination list).
        ledger = BudgetLedger()
        ledger.charge("A", 1.0, "m")
        ledger.absorb(ledger.charges, label="clone")
        assert [g for g, _, _ in ledger.charges] == ["A", "A@clone1"]

    def test_absorb_label_required(self):
        with pytest.raises(ParameterError, match="label"):
            BudgetLedger().absorb([("A", 1.0, "m")], label="")

    def test_restore_is_verbatim(self):
        # Deserialisation must NOT rename: duplicate groups in a ledger's
        # own payload legitimately encode sequential composition.
        ledger = BudgetLedger()
        ledger.restore([("A", 1.0, "m"), ("A", 2.0, "m")])
        assert ledger.spend_by_group() == {"A": 3.0}
        assert ledger.worst_case_epsilon() == 3.0


class TestContinualLedger:
    def _make(self):
        from repro.privacy import ContinualLedger

        return ContinualLedger()

    def test_charge_and_readings(self):
        ledger = self._make()
        ledger.charge("tenant", 0, "tenant/A", 4.0, "fap")
        ledger.charge("tenant", 1, "tenant/A", 4.0, "fap")
        ledger.charge("tenant", 1, "tenant/B", 4.0, "fap")
        # Parallel across groups within an epoch, disjoint across epochs:
        assert ledger.worst_case_epsilon("tenant") == 4.0
        # A user present in both epochs pays both:
        assert ledger.lifetime_epsilon("tenant") == 8.0
        assert ledger.epoch_spend("tenant") == {0: 4.0, 1: 4.0}

    def test_sequential_within_epoch_group(self):
        ledger = self._make()
        ledger.charge("t", 0, "t/A", 1.0, "m")
        ledger.charge("t", 0, "t/A", 2.0, "m")
        assert ledger.worst_case_epsilon("t") == 3.0

    def test_subjects_isolated(self):
        ledger = self._make()
        ledger.charge("t1", 0, "t1/A", 4.0, "m")
        ledger.charge("t2", 0, "t2/A", 2.0, "m")
        assert ledger.subjects() == ["t1", "t2"]
        assert ledger.worst_case_epsilon("t1") == 4.0
        assert ledger.worst_case_epsilon("t2") == 2.0
        assert ledger.worst_case_epsilon("absent") == 0.0

    def test_releases_are_counted_not_charged(self):
        ledger = self._make()
        ledger.charge("t", 0, "t/A", 4.0, "m")
        ledger.charge("t", 1, "t/A", 4.0, "m")
        before = ledger.lifetime_epsilon("t")
        ledger.note_release("t", [0, 1])
        ledger.note_release("t", [1])
        assert ledger.lifetime_epsilon("t") == before  # post-processing
        assert ledger.releases[("t", 0)] == 1
        assert ledger.releases[("t", 1)] == 2

    def test_summary_shape(self):
        ledger = self._make()
        ledger.charge("t", 0, "t/A", 4.0, "m")
        ledger.note_release("t", [0])
        summary = ledger.summary()
        assert summary == {
            "t": {
                "epochs_charged": 1,
                "worst_case_epsilon": 4.0,
                "lifetime_epsilon": 4.0,
                "releases": 1,
            }
        }

    def test_validation(self):
        ledger = self._make()
        with pytest.raises(ParameterError):
            ledger.charge("", 0, "g", 1.0, "m")
        with pytest.raises(ParameterError):
            ledger.charge("t", -1, "g", 1.0, "m")
        with pytest.raises(ParameterError):
            ledger.charge("t", 0, "", 1.0, "m")
        with pytest.raises(ParameterError):
            ledger.charge("t", 0, "g", 0.0, "m")


class TestAuditMachinery:
    def test_perfect_mechanism_ratio_one(self):
        dist = lambda x: {0: 0.5, 1: 0.5}
        assert max_privacy_ratio(dist, [0, 1]) == pytest.approx(1.0)

    def test_deterministic_mechanism_infinite(self):
        dist = lambda x: {x: 1.0}
        assert max_privacy_ratio(dist, [0, 1]) == math.inf

    def test_known_ratio(self):
        # Binary RR with keep prob p: ratio = p / (1 - p).
        p = 0.8
        dist = lambda x: {x: p, 1 - x: 1 - p}
        assert max_privacy_ratio(dist, [0, 1]) == pytest.approx(p / (1 - p))

    def test_verify_ldp_pass_and_fail(self):
        p = keep_probability(1.0)
        dist = lambda x: {x: p, 1 - x: 1 - p}
        ok, ratio = verify_ldp(dist, [0, 1], epsilon=1.0)
        assert ok and ratio == pytest.approx(math.exp(1.0))
        ok, _ = verify_ldp(dist, [0, 1], epsilon=0.5)
        assert not ok

    def test_distribution_must_sum_to_one(self):
        with pytest.raises(ParameterError, match="sums to"):
            max_privacy_ratio(lambda x: {0: 0.4}, [0, 1])

    def test_needs_two_inputs(self):
        with pytest.raises(ParameterError):
            max_privacy_ratio(lambda x: {0: 1.0}, [0])

    def test_grr_exact_audit(self):
        domain, eps = 6, 1.5
        p, q = grr_probabilities(eps, domain)

        def dist(x):
            return {y: (p if y == x else q) for y in range(domain)}

        ok, ratio = verify_ldp(dist, list(range(domain)), epsilon=eps)
        assert ok
        assert ratio == pytest.approx(math.exp(eps))
