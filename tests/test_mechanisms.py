"""Tests for the competitor LDP frequency oracles (:mod:`repro.mechanisms`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DomainError, ProtocolError
from repro.join import exact_join_size
from repro.mechanisms import (
    FLHOracle,
    HadamardResponseOracle,
    HCMSOracle,
    KRROracle,
    LDPJoinSketchOracle,
    OLHOracle,
    OUEOracle,
    estimate_join_via_frequencies,
)

from .conftest import zipf_values

ALL_ORACLES = [
    (KRROracle, {}),
    (OLHOracle, {}),
    (FLHOracle, {}),
    (HCMSOracle, {"k": 9, "m": 128}),
    (LDPJoinSketchOracle, {"k": 9, "m": 128}),
    (OUEOracle, {}),
    (HadamardResponseOracle, {}),
]


@pytest.mark.parametrize("oracle_cls,kwargs", ALL_ORACLES)
class TestOracleContract:
    """Behaviour every frequency oracle must share."""

    def test_unbiased_on_planted_frequency(self, oracle_cls, kwargs):
        domain, count, n_noise = 64, 6_000, 6_000
        values = np.concatenate(
            [np.full(count, 3, dtype=np.int64), zipf_values(n_noise, domain, 1.1, 1)]
        )
        estimates = []
        for seed in range(8):
            oracle = oracle_cls(domain, 4.0, seed=seed, **kwargs)
            oracle.collect(values)
            estimates.append(float(oracle.frequencies(np.asarray([3]))[0]))
        mean = float(np.mean(estimates))
        true = count + int(np.sum(zipf_values(n_noise, domain, 1.1, 1) == 3))
        assert abs(mean - true) < 0.15 * true

    def test_rejects_queries_before_collect(self, oracle_cls, kwargs):
        oracle = oracle_cls(32, 2.0, seed=0, **kwargs)
        with pytest.raises(ProtocolError):
            oracle.frequencies(np.asarray([1]))

    def test_rejects_out_of_domain_values(self, oracle_cls, kwargs):
        oracle = oracle_cls(32, 2.0, seed=0, **kwargs)
        with pytest.raises(DomainError):
            oracle.collect(np.asarray([32]))

    def test_num_reports_accumulates(self, oracle_cls, kwargs):
        oracle = oracle_cls(32, 2.0, seed=0, **kwargs)
        oracle.collect(np.arange(10))
        oracle.collect(np.arange(5))
        assert oracle.num_reports == 15

    def test_all_frequencies_total_mass(self, oracle_cls, kwargs):
        # Debiased estimates should roughly preserve the total count.
        domain, n = 32, 20_000
        values = zipf_values(n, domain, 1.2, 2)
        oracle = oracle_cls(domain, 4.0, seed=3, **kwargs)
        oracle.collect(values)
        total = float(np.sum(oracle.all_frequencies()))
        assert abs(total - n) < 0.25 * n

    def test_report_bits_positive(self, oracle_cls, kwargs):
        oracle = oracle_cls(32, 2.0, seed=0, **kwargs)
        assert oracle.report_bits >= 1

    def test_memory_bytes_nonnegative(self, oracle_cls, kwargs):
        oracle = oracle_cls(32, 2.0, seed=0, **kwargs)
        oracle.collect(np.arange(10))
        assert oracle.memory_bytes() >= 0


class TestKRRSpecifics:
    def test_debias_formula(self):
        # With no perturbation (huge eps) estimates equal raw counts.
        values = zipf_values(5_000, 16, 1.1, 4)
        oracle = KRROracle(16, 100.0, seed=5)
        oracle.collect(values)
        counts = np.bincount(values, minlength=16)
        assert np.allclose(oracle.all_frequencies(), counts, atol=1e-6)

    def test_error_grows_with_domain(self):
        # k-RR degrades on large domains (the paper's core criticism).
        def mse_for(domain: int) -> float:
            values = np.zeros(10_000, dtype=np.int64)
            oracle = KRROracle(domain, 2.0, seed=6)
            oracle.collect(values)
            est = oracle.frequencies(np.asarray([0]))[0]
            return (est - 10_000) ** 2

        assert mse_for(2048) > mse_for(4)

    def test_report_bits_scale_with_domain(self):
        assert KRROracle(1024, 1.0, 0).report_bits == 10
        assert KRROracle(1 << 20, 1.0, 0).report_bits == 20


class TestOLHSpecifics:
    def test_default_g_is_optimal(self):
        oracle = OLHOracle(64, 2.0, seed=7)
        assert oracle.g == round(np.exp(2.0) + 1)

    def test_explicit_g(self):
        assert OLHOracle(64, 2.0, seed=8, g=16).g == 16

    def test_matches_flh_shape(self):
        # OLH and FLH should agree closely on a moderate workload.
        domain, n = 32, 15_000
        values = zipf_values(n, domain, 1.3, 9)
        truth = np.bincount(values, minlength=domain)
        olh = OLHOracle(domain, 3.0, seed=10)
        olh.collect(values)
        flh = FLHOracle(domain, 3.0, seed=11)
        flh.collect(values)
        top = np.argsort(truth)[-3:]
        for idx in top:
            assert abs(olh.frequencies(np.asarray([idx]))[0] - truth[idx]) < 0.25 * truth[idx] + 300
            assert abs(flh.frequencies(np.asarray([idx]))[0] - truth[idx]) < 0.25 * truth[idx] + 300


class TestFLHSpecifics:
    def test_pool_size_recorded(self):
        oracle = FLHOracle(64, 2.0, seed=12, pool_size=32)
        assert oracle.pool_size == 32
        assert oracle._counts.shape == (32, oracle.g)

    def test_report_bits(self):
        oracle = FLHOracle(64, 2.0, seed=13, pool_size=256)
        g_bits = int(np.ceil(np.log2(oracle.g)))
        assert oracle.report_bits == 8 + g_bits

    def test_small_pool_still_unbiased(self):
        values = np.full(20_000, 5, dtype=np.int64)
        estimates = []
        for seed in range(6):
            oracle = FLHOracle(64, 4.0, seed=seed, pool_size=16)
            oracle.collect(values)
            estimates.append(oracle.frequencies(np.asarray([5]))[0])
        assert abs(float(np.mean(estimates)) - 20_000) < 3_000


class TestHCMSSpecifics:
    def test_m_power_of_two_required(self):
        with pytest.raises(ValueError):
            HCMSOracle(64, 2.0, seed=14, k=4, m=100)

    def test_sketch_updates_lazily_transformed(self):
        oracle = HCMSOracle(64, 4.0, seed=15, k=4, m=64)
        oracle.collect(np.full(5_000, 9, dtype=np.int64))
        first = oracle.frequencies(np.asarray([9]))[0]
        oracle.collect(np.full(5_000, 9, dtype=np.int64))
        second = oracle.frequencies(np.asarray([9]))[0]
        assert second > first  # new mass visible after re-transform

    def test_report_bits(self):
        oracle = HCMSOracle(64, 2.0, seed=16, k=16, m=1024)
        assert oracle.report_bits == 1 + 4 + 10


class TestLDPJSOracleSpecifics:
    def test_sketch_accessor_returns_join_capable_sketch(self):
        a = zipf_values(20_000, 64, 1.3, 17)
        b = zipf_values(20_000, 64, 1.3, 18)
        truth = exact_join_size(a, b, 64)
        oracle_a = LDPJoinSketchOracle(64, 8.0, seed=19, k=9, m=256)
        oracle_b = LDPJoinSketchOracle(64, 8.0, seed=19, k=9, m=256)
        # Same seed -> same hash pairs -> joinable sketches.
        oracle_a.collect(a)
        oracle_b.collect(b)
        est = oracle_a.sketch().join_size(oracle_b.sketch())
        assert abs(est - truth) / truth < 0.5


class TestJoinViaFrequencies:
    def test_matches_truth_with_huge_budget(self):
        domain = 64
        a = zipf_values(15_000, domain, 1.3, 20)
        b = zipf_values(15_000, domain, 1.3, 21)
        truth = exact_join_size(a, b, domain)
        oa = KRROracle(domain, 100.0, seed=22)
        ob = KRROracle(domain, 100.0, seed=23)
        oa.collect(a)
        ob.collect(b)
        assert estimate_join_via_frequencies(oa, ob) == pytest.approx(truth, rel=1e-6)

    def test_domain_mismatch_rejected(self):
        oa = KRROracle(16, 1.0, seed=24)
        ob = KRROracle(32, 1.0, seed=25)
        oa.collect(np.arange(16))
        ob.collect(np.arange(32))
        with pytest.raises(ProtocolError, match="domain"):
            estimate_join_via_frequencies(oa, ob)

    def test_chunking_invariance(self):
        domain = 64
        a = zipf_values(5_000, domain, 1.2, 26)
        oa = KRROracle(domain, 4.0, seed=27)
        ob = KRROracle(domain, 4.0, seed=28)
        oa.collect(a)
        ob.collect(a)
        full = estimate_join_via_frequencies(oa, ob)
        chunked = estimate_join_via_frequencies(oa, ob, chunk_size=7)
        assert full == pytest.approx(chunked)

    def test_clip_negative_option(self):
        domain = 64
        a = zipf_values(2_000, domain, 1.2, 29)
        oa = KRROracle(domain, 0.5, seed=30)
        ob = KRROracle(domain, 0.5, seed=31)
        oa.collect(a)
        ob.collect(a)
        unclipped = estimate_join_via_frequencies(oa, ob)
        clipped = estimate_join_via_frequencies(oa, ob, clip_negative=True)
        assert clipped != unclipped  # small-eps estimates go negative
