"""Tests for :mod:`repro.rng` and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    DataGenerationError,
    DomainError,
    IncompatibleSketchError,
    ParameterError,
    ProtocolError,
    ReproError,
)
from repro.rng import derive_seed, ensure_rng, spawn, spawn_many


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_deterministic(self):
        assert ensure_rng(5).integers(0, 100) == ensure_rng(5).integers(0, 100)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(42)
        g1 = ensure_rng(seq)
        assert isinstance(g1, np.random.Generator)

    def test_invalid_seed_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawning:
    def test_spawn_independent(self):
        parent = ensure_rng(7)
        child1 = spawn(parent)
        child2 = spawn(parent)
        assert child1.integers(0, 2**31) != child2.integers(0, 2**31)

    def test_spawn_deterministic_chain(self):
        a = spawn(ensure_rng(7)).integers(0, 2**31)
        b = spawn(ensure_rng(7)).integers(0, 2**31)
        assert a == b

    def test_spawn_many_count(self):
        children = spawn_many(ensure_rng(8), 5)
        assert len(children) == 5
        draws = {c.integers(0, 2**31) for c in children}
        assert len(draws) == 5  # all distinct streams

    def test_derive_seed_range(self):
        for _ in range(100):
            seed = derive_seed(ensure_rng(None))
            assert 0 <= seed < 2**63


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ParameterError, DomainError, IncompatibleSketchError, ProtocolError, DataGenerationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(ParameterError, ValueError)
        assert issubclass(DomainError, ValueError)
        assert issubclass(IncompatibleSketchError, ValueError)

    def test_protocol_error_is_runtime_error(self):
        assert issubclass(ProtocolError, RuntimeError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise DomainError("out of range")
