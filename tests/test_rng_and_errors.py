"""Tests for :mod:`repro.rng` and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    DataGenerationError,
    DomainError,
    IncompatibleSketchError,
    ParameterError,
    ProtocolError,
    ReproError,
    require_merge_compatible,
)
from repro.rng import derive_seed, ensure_rng, spawn, spawn_many


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_default_argument_is_none(self):
        assert isinstance(ensure_rng(), np.random.Generator)

    def test_int_deterministic(self):
        assert ensure_rng(5).integers(0, 100) == ensure_rng(5).integers(0, 100)

    def test_zero_seed_is_valid(self):
        assert ensure_rng(0).integers(0, 100) == ensure_rng(0).integers(0, 100)

    def test_numpy_integer_seed(self):
        for np_seed in (np.int32(5), np.int64(5), np.uint8(5)):
            assert (
                ensure_rng(np_seed).integers(0, 100)
                == ensure_rng(5).integers(0, 100)
            )

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(42)
        g1 = ensure_rng(seq)
        assert isinstance(g1, np.random.Generator)

    def test_seed_sequence_deterministic(self):
        a = ensure_rng(np.random.SeedSequence(42)).integers(0, 2**31)
        b = ensure_rng(np.random.SeedSequence(42)).integers(0, 2**31)
        assert a == b

    @pytest.mark.parametrize(
        "bad", ["seed", 1.5, [1, 2], (3,), {"seed": 1}, object()],
        ids=["str", "float", "list", "tuple", "dict", "object"],
    )
    def test_invalid_seed_type(self, bad):
        with pytest.raises(TypeError, match="cannot interpret"):
            ensure_rng(bad)

    def test_bool_is_accepted_as_int(self):
        # bool subclasses int; document that True behaves like seed 1.
        assert ensure_rng(True).integers(0, 100) == ensure_rng(1).integers(0, 100)


class TestRequireMergeCompatible:
    def test_all_matching_passes(self):
        require_merge_compatible("sketches", m=(64, 64), k=(8, 8), eps=(1.0, 1.0))

    def test_scalar_mismatch_message(self):
        with pytest.raises(
            IncompatibleSketchError, match=r"cannot merge sketches: m mismatch \(64 vs 128\)"
        ):
            require_merge_compatible("sketches", m=(64, 128))

    def test_kind_appears_in_message(self):
        with pytest.raises(IncompatibleSketchError, match="cannot merge oracles"):
            require_merge_compatible("oracles", epsilon=(1.0, 2.0))

    def test_first_mismatch_wins(self):
        # Attributes are checked in keyword order; the first bad pair raises.
        with pytest.raises(IncompatibleSketchError, match="k mismatch"):
            require_merge_compatible("sketches", k=(8, 4), m=(64, 128))

    def test_ndarray_match_and_published_state_message(self):
        pool = np.arange(6, dtype=np.int64)
        require_merge_compatible("oracles", pool=(pool, pool.copy()))
        with pytest.raises(
            IncompatibleSketchError,
            match="pool differ; shards of one collection period must share "
            "the published pool",
        ):
            require_merge_compatible("oracles", pool=(pool, pool + 1))

    def test_ndarray_dtype_mismatch_rejected(self):
        a = np.arange(4, dtype=np.int64)
        with pytest.raises(IncompatibleSketchError):
            require_merge_compatible("oracles", pool=(a, a.astype(np.int32)))

    def test_ndarray_vs_scalar_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            require_merge_compatible("oracles", pool=(np.arange(4), 4))

    def test_container_of_arrays(self):
        pairs = [np.arange(3), np.arange(3, 6)]
        require_merge_compatible("sketches", pairs=(pairs, [p.copy() for p in pairs]))
        with pytest.raises(IncompatibleSketchError, match="published pairs"):
            require_merge_compatible(
                "sketches", pairs=(pairs, [pairs[0], pairs[1] + 1])
            )

    def test_mapping_values(self):
        require_merge_compatible("sessions", cfg=({"m": 64, "k": 8}, {"k": 8, "m": 64}))
        with pytest.raises(IncompatibleSketchError, match="cfg mismatch"):
            require_merge_compatible("sessions", cfg=({"m": 64}, {"m": 128}))

    def test_sequence_length_mismatch(self):
        with pytest.raises(IncompatibleSketchError):
            require_merge_compatible("sketches", shape=((64, 8), (64, 8, 2)))

    @pytest.mark.parametrize("bad", [64, None, (1, 2, 3)], ids=["scalar", "none", "triple"])
    def test_malformed_pair_is_parameter_error(self, bad):
        with pytest.raises(ParameterError, match="expects \\(mine, theirs\\) pairs"):
            require_merge_compatible("sketches", m=bad)


class TestSpawning:
    def test_spawn_independent(self):
        parent = ensure_rng(7)
        child1 = spawn(parent)
        child2 = spawn(parent)
        assert child1.integers(0, 2**31) != child2.integers(0, 2**31)

    def test_spawn_deterministic_chain(self):
        a = spawn(ensure_rng(7)).integers(0, 2**31)
        b = spawn(ensure_rng(7)).integers(0, 2**31)
        assert a == b

    def test_spawn_many_count(self):
        children = spawn_many(ensure_rng(8), 5)
        assert len(children) == 5
        draws = {c.integers(0, 2**31) for c in children}
        assert len(draws) == 5  # all distinct streams

    def test_derive_seed_range(self):
        for _ in range(100):
            seed = derive_seed(ensure_rng(None))
            assert 0 <= seed < 2**63


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ParameterError, DomainError, IncompatibleSketchError, ProtocolError, DataGenerationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(ParameterError, ValueError)
        assert issubclass(DomainError, ValueError)
        assert issubclass(IncompatibleSketchError, ValueError)

    def test_protocol_error_is_runtime_error(self):
        assert issubclass(ProtocolError, RuntimeError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise DomainError("out of range")
