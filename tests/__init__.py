"""Test suite for the :mod:`repro` package.

Being a package lets test modules share helpers via relative imports
(``from .conftest import zipf_values``) under plain ``python -m pytest``.
"""
