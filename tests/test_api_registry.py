"""Tests for the estimator registry and the unified result type."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.api import (
    BaseEstimator,
    EstimateResult,
    JoinEstimator,
    available_estimators,
    get_estimator,
    register,
    resolve_estimator,
)
from repro.data import ZipfGenerator
from repro.errors import UnknownEstimatorError
from repro.privacy.budget import BudgetLedger


@pytest.fixture(scope="module")
def instance():
    return ZipfGenerator(128, alpha=1.4).make_join_instance(6_000, rng=1)


class TestRegistry:
    def test_at_least_seven_estimators(self):
        assert len(available_estimators()) >= 7

    def test_core_lineup_registered(self):
        names = available_estimators()
        for expected in (
            "fagms",
            "krr",
            "olh",
            "flh",
            "hcms",
            "ldp-join-sketch",
            "ldp-join-sketch-plus",
            "compass",
        ):
            assert expected in names

    @pytest.mark.parametrize("name", [
        "fagms",
        "krr",
        "olh",
        "flh",
        "hcms",
        "ldp-join-sketch",
        "ldp-join-sketch-plus",
        "compass",
    ])
    def test_round_trip_every_name(self, name, instance):
        """Every registered name resolves, instantiates and estimates."""
        estimator = get_estimator(name)
        assert isinstance(estimator, JoinEstimator)
        result = estimator.estimate(instance, epsilon=8.0, seed=3)
        assert isinstance(result, EstimateResult)
        assert np.isfinite(result.estimate)
        truth = instance.true_join_size
        assert abs(result.estimate - truth) < 3 * truth
        assert estimator.report_bits_for(instance.domain_size, 8.0) >= 1

    def test_display_name_aliases(self):
        assert resolve_estimator("LDPJoinSketch") == "ldp-join-sketch"
        assert resolve_estimator("LDPJoinSketch+") == "ldp-join-sketch-plus"
        assert resolve_estimator("k-RR") == "krr"
        assert resolve_estimator("Apple-HCMS") == "hcms"
        assert resolve_estimator("FAGMS") == "fagms"
        assert resolve_estimator("ldpjs+") == "ldp-join-sketch-plus"
        assert resolve_estimator("fap") == "ldp-join-sketch-plus"

    def test_names_are_canonicalised(self):
        assert resolve_estimator(" LDP_Join_Sketch ") == "ldp-join-sketch"

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(UnknownEstimatorError, match="registered estimators"):
            get_estimator("no-such-method")

    def test_options_forwarded_to_factory(self):
        estimator = get_estimator("ldpjs+", k=5, m=64, sample_rate=0.2)
        assert estimator.k == 5
        assert estimator.m == 64
        assert estimator.sample_rate == 0.2

    def test_private_flags(self):
        assert get_estimator("fagms").private is False
        assert get_estimator("ldp-join-sketch").private is True

    def test_register_decorator_and_collision(self, instance):
        @register("test-constant", aliases=("tc",))
        class ConstantEstimator(BaseEstimator):
            name = "Constant"
            private = False

            def estimate(self, instance, epsilon, seed=None):
                return EstimateResult(estimate=42.0)

        try:
            assert get_estimator("tc").estimate(instance, 1.0).estimate == 42.0
            with pytest.raises(UnknownEstimatorError, match="already registered"):
                register("test-constant", ConstantEstimator)
        finally:
            from repro.api import registry

            registry._FACTORIES.pop("test-constant", None)
            registry._ALIASES.pop("tc", None)

    def test_failed_registration_leaves_registry_untouched(self):
        # Regression: a rejected alias used to leave the canonical name
        # half-registered.
        before = available_estimators()
        with pytest.raises(UnknownEstimatorError, match="shadow"):
            register("brand-new-method", lambda: None, aliases=("krr",))
        assert available_estimators() == before

    def test_alias_cannot_shadow_canonical_name_even_with_replace(self):
        with pytest.raises(UnknownEstimatorError, match="shadow"):
            register("another-method", lambda: None, aliases=("fagms",), replace=True)

    def test_early_user_registration_cannot_claim_builtin_name(self):
        # Regression: register() loads the builtins first, so claiming a
        # builtin name collides immediately instead of poisoning the
        # registry on first lookup.
        with pytest.raises(UnknownEstimatorError, match="already registered"):
            register("fagms", lambda: None)

    def test_replace_clears_stale_alias(self, instance):
        from repro.api import registry

        class ConstantEstimator(BaseEstimator):
            name = "Constant"
            private = False

            def estimate(self, instance, epsilon, seed=None):
                return EstimateResult(estimate=7.0)

        original_factory = registry._FACTORIES["ldp-join-sketch"]
        try:
            register("ldpjs", ConstantEstimator, replace=True)
            # The alias redirect must not shadow the replacement.
            assert get_estimator("ldpjs").estimate(instance, 1.0).estimate == 7.0
            # The canonical builtin name is untouched.
            assert resolve_estimator("ldp-join-sketch") == "ldp-join-sketch"
        finally:
            registry._FACTORIES.pop("ldpjs", None)
            registry._ALIASES["ldpjs"] = "ldp-join-sketch"
            registry._FACTORIES["ldp-join-sketch"] = original_factory

    def test_private_baselines_carry_ledger(self, instance):
        result = get_estimator("krr").estimate(instance, epsilon=4.0, seed=5)
        assert result.ledger is not None
        assert result.ledger.worst_case_epsilon() == pytest.approx(4.0)

    def test_compass_matches_ldpjs_on_two_way(self, instance):
        """The degenerate one-attribute chain is exactly Eq. (5)."""
        a = get_estimator("ldp-join-sketch", k=5, m=64).estimate(instance, 8.0, seed=11)
        b = get_estimator("compass", k=5, m=64).estimate(instance, 8.0, seed=11)
        # Same reports, same sketches; the two query paths only differ in
        # float summation order (einsum vs per-replica matmul).
        assert a.estimate == pytest.approx(b.estimate, rel=1e-12)


class TestEstimateResult:
    def test_frozen(self):
        result = EstimateResult(estimate=1.0)
        with pytest.raises(AttributeError):
            result.estimate = 2.0

    def test_extras_attribute_access(self):
        result = EstimateResult(estimate=1.0, extras={"low_estimate": 0.4})
        assert result.low_estimate == 0.4
        with pytest.raises(AttributeError):
            result.not_a_field

    def test_extras_copied(self):
        extras = {"a": 1}
        result = EstimateResult(estimate=1.0, extras=extras)
        extras["a"] = 2
        assert result.extras["a"] == 1

    def test_picklable(self):
        ledger = BudgetLedger()
        ledger.charge("A", 2.0, "test")
        result = EstimateResult(estimate=3.0, ledger=ledger, extras={"x": 7})
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone.x == 7

    def test_with_costs(self):
        result = EstimateResult(estimate=1.0).with_costs(uplink_bits=8, sketch_bytes=16)
        assert (result.estimate, result.uplink_bits, result.sketch_bytes) == (1.0, 8, 16)

    def test_unifies_legacy_result_types(self):
        from repro.core import JoinEstimate, PlusEstimate
        from repro.experiments.methods import MethodResult

        assert JoinEstimate is EstimateResult
        assert PlusEstimate is EstimateResult
        assert MethodResult is EstimateResult


class TestDeprecatedShims:
    def test_run_ldp_join_sketch_warns_and_matches_api(self):
        from repro.api import run_join_sketch
        from repro.core import SketchParams, run_ldp_join_sketch

        rng = np.random.default_rng(0)
        a = rng.integers(0, 64, 4_000)
        b = rng.integers(0, 64, 4_000)
        params = SketchParams(k=3, m=64, epsilon=4.0)
        with pytest.warns(DeprecationWarning, match="run_ldp_join_sketch"):
            shim = run_ldp_join_sketch(a, b, params, seed=7)
        direct = run_join_sketch(a, b, params, seed=7)
        assert shim.estimate == direct.estimate
        assert isinstance(shim, EstimateResult)

    def test_run_ldp_join_sketch_plus_warns(self):
        from repro.core import SketchParams, run_ldp_join_sketch_plus

        rng = np.random.default_rng(1)
        a = rng.integers(0, 64, 4_000)
        b = rng.integers(0, 64, 4_000)
        params = SketchParams(k=3, m=64, epsilon=4.0)
        with pytest.warns(DeprecationWarning, match="run_ldp_join_sketch_plus"):
            result = run_ldp_join_sketch_plus(a, b, 64, params, seed=8)
        assert isinstance(result, EstimateResult)
        # Protocol artefacts remain attribute-reachable through extras.
        assert result.phase1_bits > 0
        assert result.frequent_items is not None

    def test_default_methods_dispatch_through_registry(self):
        from repro.experiments.methods import default_methods

        methods = default_methods(k=5, m=64)
        assert list(methods) == [
            "FAGMS",
            "k-RR",
            "Apple-HCMS",
            "FLH",
            "LDPJoinSketch",
            "LDPJoinSketch+",
        ]
        for method in methods.values():
            assert isinstance(method, JoinEstimator)
