"""Chaos suite for the online aggregation service (:mod:`repro.service`).

The service's headline claim: kill the process at any instant — between
batches, mid ``write(2)``, mid replay — restart it, and the next
published snapshot (and every estimate derived from it) is
*byte-identical* to a run that never crashed.  Three attack layers:

* A hypothesis property drives randomly drawn absorbable fault schedules
  (errors, crashes, torn writes, corrupted frames at every
  ``service.*`` fault point) through a client-plus-supervisor harness
  that retries unacknowledged batches and restarts the engine after each
  injected death, then compares the published digest and a join estimate
  against the fault-free baseline.
* A deterministic sweep tears the WAL write at each individual sequence
  number, covering the exact mid-``write`` crash window.
* A real ``kill -9`` round-trip: a server subprocess is SIGKILLed midway
  through the report stream, restarted on the same data directory, and
  must republish the acknowledged prefix and finish to the same bytes a
  never-killed server produces.

``FaultPlan.load``'s typed rejection of malformed plan files lives here
too — hand-edited ``--fault-plan`` JSON is the chaos suite's operator
interface, so its failure modes are part of the contract.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
from http.client import HTTPConnection
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    InjectedCrashError,
    InjectedFaultError,
    ParameterError,
    RetryExhaustedError,
)
from repro.reliability import FaultPlan, FaultSpec
from repro.reliability.faults import injected
from repro.service import AggregationService, ServiceConfig

TENANT = "acme"
SHARDS = 3
SEED = 17
RETRIES = 3
#: Below the retry budget, so every error/crash schedule is absorbable.
MAX_TIMES = RETRIES - 1

#: Every fault point the service threads (wal.append is the un-retried
#: durability boundary; the rest sit behind the retry policy).
SERVICE_POINTS = (
    "service.ingest",
    "service.wal.append",
    "service.merge",
    "service.snapshot",
    "service.query",
)

#: Restart budget of the supervisor loop.  Hit-counter specs fire at
#: most ``times <= MAX_TIMES`` each, so a handful of restarts always
#: exhausts a schedule; hitting this bound means recovery regressed.
MAX_RESTARTS = 40


def make_config(data_dir) -> ServiceConfig:
    return ServiceConfig(
        data_dir=data_dir,
        k=3,
        m=32,
        epsilon=2.0,
        num_shards=SHARDS,
        seed=SEED,
        checkpoint_interval=4,
        retries=RETRIES,
    )


def make_batches(num_batches: int = 12, reports: int = 30, seed: int = 5):
    rng = np.random.default_rng(seed)
    return [
        (TENANT, "A" if i % 2 == 0 else "B", rng.integers(0, 48, size=reports))
        for i in range(num_batches)
    ]


BATCHES = make_batches()

#: ``(digest, estimate)`` of the fault-free run, computed once.
_BASELINE: dict = {}


def baseline():
    if "outcome" not in _BASELINE:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-ref-") as tmp:
            service = AggregationService(make_config(Path(tmp)))
            service.start()
            for tenant, stream, values in BATCHES:
                service.ingest(tenant, stream, values)
            service.publish()
            _BASELINE["outcome"] = (
                service.snapshot.digest,
                service.estimate(TENANT, "A", "B")["estimate"],
            )
            service.close()
    return _BASELINE["outcome"]


def _supervised_start(data_dir) -> AggregationService:
    """Restart until recovery replay survives the armed plan's leftovers.

    ``start()`` replays WAL records outside the retry policy (replay is
    the retry), so unexhausted hit-counter specs at ``service.ingest``
    can kill a restart too.  Production runs under a supervisor that
    just starts the process again; model exactly that.
    """
    for _ in range(MAX_RESTARTS):
        service = AggregationService(make_config(data_dir))
        try:
            service.start()
            return service
        except (InjectedFaultError, InjectedCrashError):
            service.wal.close()
    raise AssertionError("replay faults never exhausted across restarts")


def run_under_faults(data_dir, batches, plan):
    """Client + supervisor harness: every batch acked exactly once.

    The client resends a batch until it is acknowledged; any injected
    death (torn write, corrupted frame, crash before the append) is a
    process loss, so the supervisor restarts the engine from disk and
    the client retries the batch that never acked.  Returns
    ``(digest, estimate)`` of the final published snapshot.
    """
    with injected(plan):
        service = _supervised_start(data_dir)
        for tenant, stream, values in batches:
            for _ in range(MAX_RESTARTS):
                try:
                    service.ingest(tenant, stream, values)
                    break
                except (InjectedFaultError, InjectedCrashError, RetryExhaustedError):
                    # The ack never arrived: treat it as a dead process
                    # (torn/corrupt appends really did damage the file),
                    # restart from disk, resend the batch.
                    service.wal.close()
                    service = _supervised_start(data_dir)
            else:
                raise AssertionError("batch never acknowledged")
        service.publish()
        outcome = (
            service.snapshot.digest,
            service.estimate(TENANT, "A", "B")["estimate"],
        )
        service.close()
    return outcome


class TestServiceChaosProperties:
    """Random absorbable schedules leave the published bytes untouched."""

    @given(data=st.data())
    @settings(max_examples=12, deadline=None)
    def test_absorbable_schedules_publish_identical_bytes(self, data):
        plan_seed = data.draw(st.integers(0, 2**32 - 1), label="plan_seed")
        num_faults = data.draw(st.integers(1, 3), label="num_faults")
        shard_match = data.draw(st.booleans(), label="shard_match")
        plan = FaultPlan.random(
            plan_seed,
            points=SERVICE_POINTS,
            num_faults=num_faults,
            num_shards=SHARDS if shard_match else None,
            max_times=MAX_TIMES,
            kinds=("error", "crash", "torn-write", "corrupt"),
        )
        assert plan.absorbable_by(RETRIES)
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            outcome = run_under_faults(Path(tmp), BATCHES, plan)
        assert outcome == baseline()


class TestTornWriteSweep:
    """A torn or corrupted append at *every* sequence number recovers."""

    @pytest.mark.parametrize("kind", ["torn-write", "corrupt"])
    @pytest.mark.parametrize("sequence", range(0, len(BATCHES), 3))
    def test_damaged_append_at_sequence(self, kind, sequence):
        plan = FaultPlan(
            [
                FaultSpec(
                    point="service.wal.append",
                    kind=kind,
                    times=1,
                    match={"sequence": sequence},
                )
            ]
        )
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            outcome = run_under_faults(Path(tmp), BATCHES, plan)
        assert outcome == baseline()


# ---------------------------------------------------------------------------
# Real kill -9 round-trip through the server subprocess
# ---------------------------------------------------------------------------
_SRC = Path(__file__).resolve().parents[1] / "src"


def _start_server(data_dir) -> tuple:
    """Spawn ``python -m repro.service``; returns ``(proc, port)``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--data-dir",
            str(data_dir),
            "--port",
            "0",
            "--shards",
            str(SHARDS),
            "--k",
            "3",
            "--m",
            "32",
            "--epsilon",
            "2.0",
            "--seed",
            str(SEED),
            "--checkpoint-interval",
            "4",
            # Keep the watchdog publisher quiet; publishes are explicit.
            "--publish-threshold",
            "100000",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("LISTENING "):
        proc.kill()
        rest = proc.stdout.read()
        raise AssertionError(f"server failed to bind: {line!r}\n{rest}")
    return proc, int(line.split()[2])


def _request(port: int, method: str, target: str, body=None) -> dict:
    conn = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, target, body=payload)
        response = conn.getresponse()
        raw = response.read()
        assert response.status == 200, f"{method} {target} -> {response.status}: {raw}"
        return json.loads(raw)
    finally:
        conn.close()


class TestKillNineRoundTrip:
    """The acceptance scenario, with a genuine SIGKILL in the middle."""

    def test_sigkill_mid_stream_restart_is_byte_identical(self, tmp_path):
        reference_digest, reference_estimate = baseline()
        data_dir = tmp_path / "victim"

        proc, port = _start_server(data_dir)
        try:
            for index, (tenant, stream, values) in enumerate(BATCHES[:7]):
                ack = _request(
                    port,
                    "POST",
                    "/v1/report",
                    {"tenant": tenant, "stream": stream, "values": values.tolist()},
                )
                assert ack["sequence"] == index
        finally:
            # No drain, no flush, no goodbye: the WAL is the only truth.
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        proc, port = _start_server(data_dir)
        try:
            # The boot snapshot must already cover every acked batch.
            snapshot = _request(port, "GET", "/v1/snapshot")
            assert snapshot["wal_records"] == 7
            status = _request(port, "GET", "/v1/status")
            assert status["recovery"]["wal_records"] == 7
            for tenant, stream, values in BATCHES[7:]:
                _request(
                    port,
                    "POST",
                    "/v1/report",
                    {"tenant": tenant, "stream": stream, "values": values.tolist()},
                )
            published = _request(port, "POST", "/v1/publish")
            answer = _request(
                port,
                "GET",
                f"/v1/estimate?tenant={TENANT}&kind=join&streams=A,B",
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert published["digest"] == reference_digest
        assert answer["estimate"] == reference_estimate
        assert answer["snapshot_digest"] == reference_digest
        assert proc.returncode == 0  # SIGTERM exits the graceful path


# ---------------------------------------------------------------------------
# FaultPlan.load: malformed plan files fail with typed diagnoses
# ---------------------------------------------------------------------------
class TestFaultPlanLoadValidation:
    def _write(self, tmp_path, payload) -> Path:
        path = tmp_path / "plan.json"
        path.write_text(payload if isinstance(payload, str) else json.dumps(payload))
        return path

    def _valid(self, **spec_overrides) -> dict:
        spec = {"point": "service.ingest", "kind": "error", "times": 1}
        spec.update(spec_overrides)
        return {
            "format": "repro/fault-plan",
            "version": 1,
            "name": "edited-by-hand",
            "seed": None,
            "hard_crashes": False,
            "specs": [spec],
        }

    def test_round_trip(self, tmp_path):
        plan = FaultPlan.random(
            9, points=SERVICE_POINTS, num_faults=3, num_shards=SHARDS
        )
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path).to_dict() == plan.to_dict()

    def test_invalid_json_names_the_file(self, tmp_path):
        path = self._write(tmp_path, "{ not json at all")
        with pytest.raises(ParameterError, match="not valid JSON") as excinfo:
            FaultPlan.load(path)
        assert str(path) in str(excinfo.value)

    def test_unknown_kind_rejected(self, tmp_path):
        path = self._write(tmp_path, self._valid(kind="flood"))
        with pytest.raises(ParameterError, match="kind must be one of") as excinfo:
            FaultPlan.load(path)
        assert str(path) in str(excinfo.value)

    def test_unknown_spec_field_rejected(self, tmp_path):
        path = self._write(tmp_path, self._valid(surprise=1))
        with pytest.raises(ParameterError, match=r"unknown field\(s\) \['surprise'\]"):
            FaultPlan.load(path)

    def test_non_mapping_match_rejected(self, tmp_path):
        path = self._write(tmp_path, self._valid(match=["shard", 1]))
        with pytest.raises(ParameterError, match="'match' must be a mapping"):
            FaultPlan.load(path)

    def test_non_string_match_keys_rejected(self):
        # Unreachable through JSON (keys are always strings there) but
        # reachable through the Python API, so validated all the same.
        with pytest.raises(ParameterError, match="'match' keys must be strings"):
            FaultSpec.from_dict(
                {"point": "service.ingest", "match": {1: "shard"}}
            )

    def test_boolean_times_rejected(self, tmp_path):
        path = self._write(tmp_path, self._valid(times=True))
        with pytest.raises(ParameterError, match="'times' must be a positive int"):
            FaultPlan.load(path)

    def test_non_numeric_delay_rejected(self, tmp_path):
        path = self._write(tmp_path, self._valid(kind="latency", delay="soon"))
        with pytest.raises(ParameterError, match="'delay' must be a number"):
            FaultPlan.load(path)

    def test_specs_must_be_a_list(self, tmp_path):
        payload = self._valid()
        payload["specs"] = "service.ingest"
        path = self._write(tmp_path, payload)
        with pytest.raises(ParameterError, match="'specs' must be a list"):
            FaultPlan.load(path)

    def test_bad_seed_rejected(self, tmp_path):
        payload = self._valid()
        payload["seed"] = "abc"
        path = self._write(tmp_path, payload)
        with pytest.raises(ParameterError, match="'seed' must be an int or null"):
            FaultPlan.load(path)

    def test_wrong_format_rejected(self, tmp_path):
        payload = self._valid()
        payload["format"] = "repro/other"
        path = self._write(tmp_path, payload)
        with pytest.raises(ParameterError, match="not a fault-plan payload"):
            FaultPlan.load(path)

    def test_unsupported_version_rejected(self, tmp_path):
        payload = self._valid()
        payload["version"] = 2
        path = self._write(tmp_path, payload)
        with pytest.raises(ParameterError, match="unsupported fault-plan version"):
            FaultPlan.load(path)
