"""Tests for :class:`repro.core.SketchParams`."""

from __future__ import annotations

import math

import pytest

from repro.core import SketchParams
from repro.errors import ParameterError


class TestSketchParams:
    def test_basic_construction(self):
        params = SketchParams(k=18, m=1024, epsilon=4.0)
        assert params.k == 18 and params.m == 1024 and params.epsilon == 4.0

    def test_m_must_be_power_of_two(self):
        with pytest.raises(ParameterError, match="power of two"):
            SketchParams(k=2, m=100, epsilon=1.0)

    def test_k_positive(self):
        with pytest.raises(ParameterError):
            SketchParams(k=0, m=8, epsilon=1.0)

    def test_epsilon_positive(self):
        with pytest.raises(ParameterError):
            SketchParams(k=2, m=8, epsilon=0.0)

    def test_c_epsilon(self):
        params = SketchParams(k=2, m=8, epsilon=1.0)
        assert params.c_epsilon == pytest.approx((math.e + 1) / (math.e - 1))

    def test_flip_probability(self):
        params = SketchParams(k=2, m=8, epsilon=2.0)
        assert params.flip_probability == pytest.approx(1 / (math.exp(2) + 1))

    def test_scale(self):
        params = SketchParams(k=5, m=8, epsilon=1.0)
        assert params.scale == pytest.approx(5 * params.c_epsilon)

    def test_report_bits(self):
        params = SketchParams(k=18, m=1024, epsilon=4.0)
        # 1 sign bit + ceil(log2 18) = 5 + log2 1024 = 10.
        assert params.report_bits == 1 + 5 + 10

    def test_report_bits_minimum_one_per_index(self):
        params = SketchParams(k=1, m=1, epsilon=1.0)
        assert params.report_bits == 3

    def test_frozen(self):
        params = SketchParams(k=2, m=8, epsilon=1.0)
        with pytest.raises(AttributeError):
            params.k = 3

    def test_equality(self):
        assert SketchParams(2, 8, 1.0) == SketchParams(2, 8, 1.0)
        assert SketchParams(2, 8, 1.0) != SketchParams(2, 8, 2.0)

    def test_with_epsilon(self):
        params = SketchParams(k=2, m=8, epsilon=1.0)
        bumped = params.with_epsilon(3.0)
        assert bumped.epsilon == 3.0
        assert bumped.k == params.k and bumped.m == params.m
        assert params.epsilon == 1.0  # original untouched

    def test_for_failure_probability(self):
        # Theorem 5: k = ceil(4 log(1/delta)).
        params = SketchParams.for_failure_probability(0.01, m=64, epsilon=2.0)
        assert params.k == math.ceil(4 * math.log(100))
        assert params.m == 64

    def test_for_failure_probability_validation(self):
        with pytest.raises(ValueError):
            SketchParams.for_failure_probability(1.5, m=64, epsilon=2.0)
