"""Replication, fenced failover, and exactly-once ingest tests.

Four attack layers on the PR's headline property — *any schedule of
primary kills, torn replication streams, and client retries leaves the
surviving node's published snapshot byte-identical to a fault-free
single-node run*:

* Unit tests for the WAL v2 fencing-epoch header (persistence,
  monotonicity, legacy-file migration) and the ``fsync="batch"``
  mid-batch crash window (recovery truncates to the last intact frame
  and the service logs a typed tear reason).
* Deterministic protocol tests: frame shipping and digest parity, gap
  catch-up, quorum arithmetic, duplicate suppression across restarts,
  promotion/fencing/zombie rejection, epoch adoption, and divergence
  repair (a zombie's forked suffix is byte-checked, truncated and
  re-synced instead of being acked as a duplicate).
* A hypothesis property driving random absorbable fault schedules over
  every replication fault point through a primary/standby pair with a
  retrying idempotent client.
* A real two-process ``kill -9`` failover: SIGKILL the primary server
  mid-stream, promote the standby over HTTP, finish the stream through
  the re-targeting client, and compare digests.
"""

from __future__ import annotations

import base64
import logging
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    FencedEpochError,
    InjectedCrashError,
    InjectedFaultError,
    NotPrimaryError,
    ParameterError,
    ReplicaDivergenceError,
    ReplicaGapError,
    ReplicationQuorumError,
    RetryExhaustedError,
)
from repro.reliability import FaultPlan
from repro.reliability.faults import injected
from repro.service import (
    REPLICATION_FAULT_POINTS,
    AggregationService,
    CircuitBreaker,
    LocalReplica,
    ReplicaLink,
    ReplicatedService,
    ResilientClient,
    ServiceConfig,
    WriteAheadLog,
)
from repro.service.wal import decode_frame, encode_frame

TENANT = "acme"
SHARDS = 3
SEED = 17
RETRIES = 3
MAX_TIMES = RETRIES - 1
MAX_RESTARTS = 40

#: The full fault surface of a replicated pair: the single-node points
#: plus the shipping/apply/promote points this PR threads.
REPLICATED_POINTS = (
    "service.ingest",
    "service.wal.append",
) + REPLICATION_FAULT_POINTS


def make_config(data_dir, **overrides) -> ServiceConfig:
    options = dict(
        data_dir=data_dir,
        k=3,
        m=32,
        epsilon=2.0,
        num_shards=SHARDS,
        seed=SEED,
        checkpoint_interval=4,
        retries=RETRIES,
    )
    options.update(overrides)
    return ServiceConfig(**options)


def make_batches(num_batches: int = 12, reports: int = 30, seed: int = 5):
    rng = np.random.default_rng(seed)
    return [
        (TENANT, "A" if i % 2 == 0 else "B", rng.integers(0, 48, size=reports))
        for i in range(num_batches)
    ]


BATCHES = make_batches()

_BASELINE: dict = {}


def baseline():
    """``(digest, estimate)`` of the fault-free single-node run."""
    if "outcome" not in _BASELINE:
        with tempfile.TemporaryDirectory(prefix="repro-repl-ref-") as tmp:
            service = AggregationService(make_config(Path(tmp)))
            service.start()
            for tenant, stream, values in BATCHES:
                service.ingest(tenant, stream, values)
            service.publish()
            _BASELINE["outcome"] = (
                service.snapshot.digest,
                service.estimate(TENANT, "A", "B")["estimate"],
            )
            service.close()
    return _BASELINE["outcome"]


# ---------------------------------------------------------------------------
# WAL v2: fencing-epoch header
# ---------------------------------------------------------------------------
class TestWalEpochHeader:
    def test_new_wal_starts_at_epoch_zero(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        records, tear = wal.recover()
        assert (records, tear, wal.epoch) == ([], None, 0)
        wal.close()

    def test_set_epoch_persists_across_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.recover()
        wal.append({"n": 1})
        assert wal.set_epoch(3) == 3
        wal.append({"n": 2})
        wal.close()
        again = WriteAheadLog(tmp_path / "wal.log")
        records, tear = again.recover()
        assert again.epoch == 3
        assert [r["n"] for r in records] == [1, 2] and tear is None
        again.close()

    def test_epoch_is_monotonic(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.recover()
        wal.set_epoch(5)
        assert wal.set_epoch(5) == 5  # idempotent
        with pytest.raises(ParameterError, match="monotonic"):
            wal.set_epoch(4)
        wal.close()

    def test_set_epoch_requires_recover(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        with pytest.raises(ParameterError):
            wal.set_epoch(1)

    def test_legacy_headerless_file_migrates(self, tmp_path):
        # A v1 WAL: frames only, no file header.
        path = tmp_path / "wal.log"
        legacy = [{"tenant": TENANT, "n": i} for i in range(4)]
        path.write_bytes(b"".join(encode_frame(r) for r in legacy))
        wal = WriteAheadLog(path)
        records, tear = wal.recover()
        assert records == legacy and tear is None
        assert wal.epoch == 0
        wal.append({"n": 99})
        wal.close()
        # After migration the file is a v2 file: reopen reads the header.
        again = WriteAheadLog(path)
        records, tear = again.recover()
        assert [r["n"] for r in records] == [0, 1, 2, 3, 99]
        again.close()

    @pytest.mark.parametrize("size", [4, 6, 15])
    def test_torn_file_header_reinitialises_at_epoch_zero(self, tmp_path, size):
        # A power cut during file creation can leave any prefix of the
        # 16-byte header; recovery must treat it as a tear, not crash.
        path = tmp_path / "wal.log"
        seeded = WriteAheadLog(path)
        seeded.recover()
        seeded.close()
        path.write_bytes(path.read_bytes()[:size])
        wal = WriteAheadLog(path)
        records, tear = wal.recover()
        assert records == [] and wal.epoch == 0
        assert tear is not None and "file header" in tear.reason
        wal.append({"n": 1})  # the reinitialised file accepts appends
        wal.close()
        again = WriteAheadLog(path)
        records, tear = again.recover()
        assert [r["n"] for r in records] == [1] and tear is None
        again.close()

    def test_truncate_to_drops_suffix_durably(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.recover()
        for n in range(5):
            wal.append({"n": n})
        wal.set_epoch(2)
        assert wal.truncate_to(3) == 3
        assert len(wal) == 3
        wal.append({"n": 99})
        wal.close()
        again = WriteAheadLog(tmp_path / "wal.log")
        records, tear = again.recover()
        assert [r["n"] for r in records] == [0, 1, 2, 99] and tear is None
        assert again.epoch == 2  # truncation spares the header
        with pytest.raises(ParameterError):
            again.truncate_to(99)  # only ever shortens
        again.close()

    def test_frame_codec_round_trip_and_crc(self):
        record = {"tenant": TENANT, "values": [1, 2, 3]}
        frame = encode_frame(record)
        assert decode_frame(frame) == record
        with pytest.raises(ParameterError):
            decode_frame(frame[: len(frame) // 2])  # torn
        flipped = frame[:-1] + bytes([frame[-1] ^ 0xFF])
        with pytest.raises(ParameterError):
            decode_frame(flipped)  # crc


# ---------------------------------------------------------------------------
# fsync="batch" mid-batch crash window (satellite)
# ---------------------------------------------------------------------------
class TestBatchFsyncCrashWindow:
    def _torn_dir(self, tmp_path) -> Path:
        """A data dir whose WAL lost its unsynced tail mid-frame.

        Three records are synced (explicit durability barrier), two more
        ride in the page cache; the simulated power cut then drops the
        cache and tears the fourth frame mid-write.
        """
        data_dir = tmp_path / "victim"
        service = AggregationService(
            make_config(data_dir, wal_fsync="batch", checkpoint_interval=100)
        )
        service.start()
        for index, (tenant, stream, values) in enumerate(BATCHES[:5]):
            service.ingest(tenant, stream, values)
            if index == 2:
                service.wal.sync()
                synced_size = (data_dir / "wal.log").stat().st_size
        # Crash: nothing past the sync is guaranteed. Model the worst
        # survivor the kernel can leave — the fourth frame half-written.
        wal_path = data_dir / "wal.log"
        raw = wal_path.read_bytes()
        fourth = raw[synced_size:]
        keep = synced_size + max(1, len(fourth) // 3)
        wal_path.write_bytes(raw[:keep])
        return data_dir

    def test_recovery_truncates_to_last_synced_frame(self, tmp_path):
        data_dir = self._torn_dir(tmp_path)
        wal = WriteAheadLog(data_dir / "wal.log", fsync="batch")
        records, tear = wal.recover()
        assert len(records) == 3  # the synced prefix, nothing else
        assert tear is not None and "truncated payload" in tear.reason
        wal.close()

    def test_service_downgrade_logs_typed_tear_reason(self, tmp_path, caplog):
        data_dir = self._torn_dir(tmp_path)
        service = AggregationService(make_config(data_dir, wal_fsync="batch"))
        with caplog.at_level(logging.WARNING, logger="repro.service"):
            recovery = service.start()
        assert recovery["wal_records"] == 3
        assert "truncated payload" in recovery["torn_tail"]["reason"]
        tear_logs = [
            record
            for record in caplog.records
            if "wal tear recovered" in record.getMessage()
        ]
        assert tear_logs, "recovery must log the typed tear reason"
        assert "truncated payload" in tear_logs[0].getMessage()
        # The surviving prefix folds to the fault-free bytes.
        reference = AggregationService(make_config(tmp_path / "ref"))
        reference.start()
        for tenant, stream, values in BATCHES[:3]:
            reference.ingest(tenant, stream, values)
        assert service.publish()["digest"] == reference.publish()["digest"]
        service.close()
        reference.close()


# ---------------------------------------------------------------------------
# Exactly-once ingest
# ---------------------------------------------------------------------------
class TestExactlyOnceIngest:
    def test_duplicate_returns_original_ack(self, tmp_path):
        service = AggregationService(make_config(tmp_path / "svc"))
        service.start()
        ack = service.ingest(TENANT, "A", [1, 2, 3], idempotency_key="k1")
        digest = service.publish()["digest"]
        dup = service.ingest(TENANT, "A", [1, 2, 3], idempotency_key="k1")
        assert dup == {**ack, "deduplicated": True}
        # No re-fold, no new WAL record: the published bytes stand.
        assert service.status()["wal_records"] == 1
        assert service.publish()["digest"] == digest
        service.close()

    def test_ledger_survives_restart(self, tmp_path):
        data_dir = tmp_path / "svc"
        service = AggregationService(make_config(data_dir))
        service.start()
        ack = service.ingest(TENANT, "A", [7, 8], idempotency_key="boot-1")
        service.close()
        reborn = AggregationService(make_config(data_dir))
        reborn.start()
        dup = reborn.ingest(TENANT, "A", [7, 8], idempotency_key="boot-1")
        assert dup == {**ack, "deduplicated": True}
        assert reborn.status()["wal_records"] == 1
        reborn.close()

    def test_retention_is_bounded(self, tmp_path):
        service = AggregationService(
            make_config(tmp_path / "svc", dedup_retention=2)
        )
        service.start()
        for index in range(3):
            service.ingest(TENANT, "A", [index], idempotency_key=f"k{index}")
        assert service.status()["dedup_entries"] == 2
        # k0 fell off the horizon: resubmitting it re-folds (documented).
        resent = service.ingest(TENANT, "A", [0], idempotency_key="k0")
        assert resent["sequence"] == 3 and "deduplicated" not in resent
        service.close()

    def test_keys_are_tenant_scoped(self, tmp_path):
        service = AggregationService(make_config(tmp_path / "svc"))
        service.start()
        first = service.ingest(TENANT, "A", [1], idempotency_key="shared")
        other = service.ingest("globex", "A", [1], idempotency_key="shared")
        assert other["sequence"] == first["sequence"] + 1
        service.close()


# ---------------------------------------------------------------------------
# Replication protocol (deterministic)
# ---------------------------------------------------------------------------
def make_pair(tmp_path, *, ack_mode="quorum"):
    standby = ReplicatedService(make_config(tmp_path / "standby"), role="standby")
    standby.start()
    primary = ReplicatedService(
        make_config(tmp_path / "primary"),
        role="primary",
        replicas=[LocalReplica(standby, name="standby-0")],
        ack_mode=ack_mode,
    )
    primary.start()
    return primary, standby


class TestReplicationProtocol:
    def test_pair_publishes_identical_bytes(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        for index, (tenant, stream, values) in enumerate(BATCHES):
            primary.ingest(tenant, stream, values, idempotency_key=f"b{index}")
        assert primary.publish()["digest"] == standby.publish()["digest"]
        assert primary.publish()["digest"] == baseline()[0]
        assert standby.status()["wal_sequence"] == len(BATCHES)
        primary.close()
        standby.close()

    def test_standby_rejects_client_writes(self, tmp_path):
        _, standby = make_pair(tmp_path)
        with pytest.raises(NotPrimaryError):
            standby.ingest(TENANT, "A", [1])

    def test_quorum_failure_is_retryable_and_converges(self, tmp_path):
        primary, standby = make_pair(tmp_path)

        down = {"dead": True}
        original = standby.apply_replication

        def flaky(payload):
            if down["dead"]:
                raise ConnectionError("standby unreachable")
            return original(payload)

        primary.replicas[0].service = type(
            "Stub", (), {"apply_replication": staticmethod(flaky)}
        )()
        with pytest.raises(ReplicationQuorumError):
            primary.ingest(TENANT, "A", [1, 2], idempotency_key="q1")
        # Durable locally despite the failed round.
        assert primary.status()["wal_sequence"] == 1
        down["dead"] = False
        ack = primary.ingest(TENANT, "A", [1, 2], idempotency_key="q1")
        assert ack["deduplicated"] is True and ack["sequence"] == 0
        assert standby.status()["wal_sequence"] == 1
        assert primary.publish()["digest"] == standby.publish()["digest"]
        primary.close()
        standby.close()

    def test_async_mode_catches_up_on_later_traffic(self, tmp_path):
        primary, standby = make_pair(tmp_path, ack_mode="async")
        original = standby.apply_replication
        calls = {"drop": 2}

        def flaky(payload):
            if calls["drop"] > 0:
                calls["drop"] -= 1
                raise ConnectionError("flaky network")
            return original(payload)

        primary.replicas[0].service = type(
            "Stub", (), {"apply_replication": staticmethod(flaky)}
        )()
        for index, (tenant, stream, values) in enumerate(BATCHES[:6]):
            primary.ingest(tenant, stream, values, idempotency_key=f"a{index}")
        # Async mode never raised; later ingests re-shipped the backlog.
        assert standby.status()["wal_sequence"] == 6
        assert primary.publish()["digest"] == standby.publish()["digest"]
        primary.close()
        standby.close()

    def test_gap_rejection_names_the_expected_sequence(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        primary.ingest(TENANT, "A", [1], idempotency_key="g0")
        payload = primary._frame_payload(0)
        ahead = dict(payload, sequence=7)
        with pytest.raises(ReplicaGapError) as excinfo:
            standby.apply_replication(ahead)
        assert (excinfo.value.expected, excinfo.value.got) == (1, 7)
        primary.close()
        standby.close()

    def test_torn_frame_is_rejected_by_crc(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        primary.ingest(TENANT, "A", [1], idempotency_key="t0")
        payload = primary._frame_payload(0)
        raw = base64.b64decode(payload["frame"])
        torn = dict(
            payload,
            sequence=1,
            frame=base64.b64encode(raw[: len(raw) // 2]).decode("ascii"),
        )
        with pytest.raises(ParameterError):
            standby.apply_replication(torn)
        assert standby.status()["wal_sequence"] == 1  # nothing applied
        primary.close()
        standby.close()


class TestFencedFailover:
    def test_promotion_fences_the_zombie(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        for index, (tenant, stream, values) in enumerate(BATCHES[:4]):
            primary.ingest(tenant, stream, values, idempotency_key=f"f{index}")
        info = standby.promote()
        assert info == {"role": "primary", "fencing_epoch": 1, "promoted": True}
        with pytest.raises(FencedEpochError) as excinfo:
            primary.ingest(TENANT, "A", [9], idempotency_key="zombie")
        assert excinfo.value.required == 1
        assert primary.role == "fenced"
        # Once fenced, the zombie rejects before touching its WAL.
        fenced_wal = primary.status()["wal_sequence"]
        with pytest.raises(FencedEpochError):
            primary.ingest(TENANT, "A", [9], idempotency_key="zombie-2")
        assert primary.status()["wal_sequence"] == fenced_wal
        # The survivor carries the acked prefix and keeps serving writes.
        ack = standby.ingest(TENANT, "B", [5, 6], idempotency_key="post")
        assert ack["sequence"] == 4
        standby.close()

    def test_promotion_epoch_survives_restart(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        primary.ingest(TENANT, "A", [1], idempotency_key="e0")
        standby.promote()
        standby.close()
        reborn = ReplicatedService(
            make_config(tmp_path / "standby"), role="primary"
        )
        reborn.start()
        assert reborn.wal.epoch == 1
        assert reborn.status()["fencing_epoch"] == 1
        reborn.close()

    def test_promote_is_idempotent_on_a_healthy_primary(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        info = primary.promote()
        assert info["promoted"] is False and info["fencing_epoch"] == 0
        primary.close()
        standby.close()

    def test_higher_epoch_frame_demotes_a_primary(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        primary.ingest(TENANT, "A", [1], idempotency_key="d0")
        # The standby is promoted and starts shipping back.
        standby.promote()
        standby.ingest(TENANT, "B", [2], idempotency_key="d1")
        frame = standby._frame_payload(1)
        result = primary.apply_replication(frame)
        assert result["applied"] is True and result["epoch"] == 1
        assert primary.role == "standby"  # stood down, adopted the epoch
        primary.close()
        standby.close()

    def test_same_epoch_primaries_refuse_each_other(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        other = ReplicatedService(make_config(tmp_path / "other"), role="primary")
        other.start()
        other.ingest(TENANT, "A", [1], idempotency_key="x0")
        with pytest.raises(NotPrimaryError):
            primary.apply_replication(other._frame_payload(0))
        primary.close()
        standby.close()
        other.close()

    def test_status_reports_replication_observables(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        for index, (tenant, stream, values) in enumerate(BATCHES[:5]):
            primary.ingest(tenant, stream, values, idempotency_key=f"s{index}")
        status = primary.status()
        assert status["role"] == "primary"
        assert status["fencing_epoch"] == 0
        assert status["wal_sequence"] == 5
        assert status["last_checkpoint_sequence"] == 4  # interval 4
        assert status["quorum"] == 1
        assert status["replicas"] == [{"name": "standby-0", "cursor": 5}]
        assert standby.status()["role"] == "standby"
        primary.close()
        standby.close()


# ---------------------------------------------------------------------------
# Divergence repair: forked histories truncate, never count toward quorum
# ---------------------------------------------------------------------------
class TestDivergenceRepair:
    def test_zombie_fork_is_truncated_not_acked_as_duplicate(self, tmp_path):
        a = ReplicatedService(make_config(tmp_path / "a"), role="primary")
        a.start()
        b = ReplicatedService(make_config(tmp_path / "b"), role="standby")
        b.start()
        a.replicas = [LocalReplica(b, name="b")]
        for index, (tenant, stream, values) in enumerate(BATCHES[:3]):
            a.ingest(tenant, stream, values, idempotency_key=f"pre{index}")
        # Partition: A keeps appending but nothing reaches B any more.
        a.replicas = []
        a.ingest(TENANT, "A", [111], idempotency_key="forked")  # seq 3, A only
        # B is promoted and takes different traffic at the same sequence.
        b.promote()
        b.replicas = [LocalReplica(a, name="a")]
        ack = b.ingest(TENANT, "B", [222], idempotency_key="winner")
        assert ack["sequence"] == 3
        # Shipping demoted A, dropped its fork, and applied B's record —
        # a sequence-only duplicate ack here would lose the acked write.
        assert a.role == "standby"
        assert a.status()["wal_sequence"] == 4
        assert encode_frame(a._records[3]) == encode_frame(b._records[3])
        assert (TENANT, "forked") not in a._dedup  # the fork's key died too
        assert a.publish()["digest"] == b.publish()["digest"]
        # The truncation is durable: a restart replays the healed history.
        a.close()
        reborn = ReplicatedService(make_config(tmp_path / "a"), role="standby")
        reborn.start()
        assert reborn.publish()["digest"] == b.publish()["digest"]
        reborn.close()
        b.close()

    def test_standby_ahead_of_wal_head_fails_quorum(self, tmp_path):
        primary, standby = make_pair(tmp_path)

        class Ahead(ReplicaLink):
            name = "ahead"

            def replicate(self, payload):
                raise ReplicaGapError(7, payload["sequence"])

        primary.replicas = [Ahead()]
        with pytest.raises(ReplicationQuorumError):
            primary.ingest(TENANT, "A", [1], idempotency_key="g0")
        # Durable locally, but the link never counted as caught up.
        assert primary.status()["wal_sequence"] == 1
        assert primary.status()["replicas"][0]["cursor"] == 0
        primary.close()
        standby.close()

    def test_gap_beyond_wal_head_raises_typed_divergence(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        primary.ingest(TENANT, "A", [1], idempotency_key="d0")

        class Ahead(ReplicaLink):
            name = "ahead"

            def replicate(self, payload):
                raise ReplicaGapError(7, payload["sequence"])

        with pytest.raises(ReplicaDivergenceError) as excinfo:
            primary._ship_link(1, Ahead())
        assert excinfo.value.sequence == 1  # our WAL head, not theirs
        primary.close()
        standby.close()


# ---------------------------------------------------------------------------
# CLI: --replica argument validation
# ---------------------------------------------------------------------------
class TestReplicaFlagParsing:
    def test_bad_replica_addresses_exit_cleanly(self, tmp_path):
        from repro.service.__main__ import main

        for bad in ("host:abc", "host:", ":1234", "host:0", "host:99999"):
            with pytest.raises(SystemExit, match="HOST:PORT"):
                main(["--data-dir", str(tmp_path), "--replica", bad])


# ---------------------------------------------------------------------------
# Circuit breaker (client)
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold_and_probes_half_open(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        skips = [breaker.allow() for _ in range(3)]
        assert skips == [False, False, False]
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        breaker.record_failure()  # probe failed: back to a full cooldown
        assert breaker.state == "open"
        [breaker.allow() for _ in range(3)]
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_deterministic_replay(self):
        def drive(breaker):
            trace = []
            for step in range(20):
                allowed = breaker.allow()
                trace.append(allowed)
                if allowed:
                    (breaker.record_failure if step % 3 else breaker.record_success)()
            return trace

        a = CircuitBreaker(failure_threshold=2, cooldown=4)
        b = CircuitBreaker(failure_threshold=2, cooldown=4)
        assert drive(a) == drive(b)


# ---------------------------------------------------------------------------
# Hypothesis: the headline property
# ---------------------------------------------------------------------------
def _restart_primary(tmp_path, standby):
    """Supervisor: restart the primary engine from disk until replay wins."""
    for _ in range(MAX_RESTARTS):
        primary = ReplicatedService(
            make_config(tmp_path / "primary"),
            role="primary",
            replicas=[LocalReplica(standby, name="standby-0")],
            ack_mode="quorum",
        )
        try:
            primary.start()
            return primary
        except (InjectedFaultError, InjectedCrashError):
            primary.wal.close()
    raise AssertionError("replay faults never exhausted across restarts")


class TestReplicatedChaosProperty:
    """Kills + torn streams + retries → surviving bytes == fault-free."""

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_surviving_node_matches_fault_free_run(self, data):
        plan_seed = data.draw(st.integers(0, 2**32 - 1), label="plan_seed")
        num_faults = data.draw(st.integers(1, 4), label="num_faults")
        plan = FaultPlan.random(
            plan_seed,
            points=REPLICATED_POINTS,
            num_faults=num_faults,
            max_times=MAX_TIMES,
            kinds=("error", "crash", "torn-write", "corrupt"),
        )
        assert plan.absorbable_by(RETRIES)
        with tempfile.TemporaryDirectory(prefix="repro-repl-chaos-") as tmp:
            tmp_path = Path(tmp)
            standby = ReplicatedService(
                make_config(tmp_path / "standby"), role="standby"
            )
            standby.start()
            with injected(plan):
                primary = _restart_primary(tmp_path, standby)
                for index, (tenant, stream, values) in enumerate(BATCHES):
                    # The idempotent client: resend one key until acked.
                    for _ in range(MAX_RESTARTS):
                        try:
                            primary.ingest(
                                tenant,
                                stream,
                                values,
                                idempotency_key=f"batch-{index}",
                            )
                            break
                        except (
                            InjectedFaultError,
                            InjectedCrashError,
                            RetryExhaustedError,
                            ReplicationQuorumError,
                        ):
                            # Unacked: the primary may have died mid-append
                            # or mid-ship. SIGKILL it, restart from disk,
                            # resend the same idempotency key.
                            primary.wal.close()
                            primary = _restart_primary(tmp_path, standby)
                    else:
                        raise AssertionError("batch never acknowledged")
                # The machine hosting the primary now dies for good; the
                # standby is promoted (also under the armed plan).
                for _ in range(MAX_RESTARTS):
                    try:
                        info = standby.promote()
                        break
                    except (InjectedFaultError, InjectedCrashError):
                        continue
                else:
                    raise AssertionError("promotion never succeeded")
                assert info["promoted"] is True and info["fencing_epoch"] >= 1
                standby.publish()
                outcome = (
                    standby.snapshot.digest,
                    standby.estimate(TENANT, "A", "B")["estimate"],
                )
                primary.wal.close()
                standby.close()
        assert outcome == baseline()


# ---------------------------------------------------------------------------
# Real two-process SIGKILL failover (the CI replication leg)
# ---------------------------------------------------------------------------
_SRC = Path(__file__).resolve().parents[1] / "src"


def _start_node(data_dir, role, *, replicas=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    cmd = [
        sys.executable,
        "-m",
        "repro.service",
        "--data-dir",
        str(data_dir),
        "--port",
        "0",
        "--shards",
        str(SHARDS),
        "--k",
        "3",
        "--m",
        "32",
        "--epsilon",
        "2.0",
        "--seed",
        str(SEED),
        "--checkpoint-interval",
        "4",
        "--publish-threshold",
        "100000",
        "--role",
        role,
    ]
    for address in replicas:
        cmd += ["--replica", address]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("LISTENING "):
        proc.kill()
        rest = proc.stdout.read()
        raise AssertionError(f"{role} failed to bind: {line!r}\n{rest}")
    return proc, int(line.split()[2])


class TestKillNineFailover:
    """SIGKILL the primary process; the standby finishes the stream."""

    def test_sigkill_promotion_round_trip(self, tmp_path):
        reference_digest, reference_estimate = baseline()
        standby_proc, standby_port = _start_node(tmp_path / "standby", "standby")
        primary_proc, primary_port = _start_node(
            tmp_path / "primary",
            "primary",
            replicas=[f"127.0.0.1:{standby_port}"],
        )
        client = ResilientClient(
            [f"127.0.0.1:{primary_port}", f"127.0.0.1:{standby_port}"],
            client_id="failover-test",
            hedge_delay=0.2,
        )
        try:
            for index, (tenant, stream, values) in enumerate(BATCHES[:7]):
                ack = client.ingest(tenant, stream, values.tolist())
                assert ack["sequence"] == index

            # The machine dies: no drain, no flush, no goodbye.
            os.kill(primary_proc.pid, signal.SIGKILL)
            primary_proc.wait(timeout=30)
            assert primary_proc.returncode == -signal.SIGKILL

            # Runbook step 1: promote the standby (epoch 0 -> 1).
            info = client.promote(1)
            assert info == {
                "role": "primary",
                "fencing_epoch": 1,
                "promoted": True,
            }
            # The promoted node already owns every acked batch.
            status = client.status()
            assert status["wal_sequence"] == 7
            assert status["role"] == "primary"

            # The client finishes the stream without changing its code
            # path — re-targeting is the client's job, not the caller's.
            for tenant, stream, values in BATCHES[7:]:
                client.ingest(tenant, stream, values.tolist())
            published = client.publish()
            answer = client.estimate(TENANT, "A", "B")
        finally:
            if primary_proc.poll() is None:
                primary_proc.kill()
                primary_proc.wait(timeout=30)
            standby_proc.send_signal(signal.SIGTERM)
            try:
                standby_proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                standby_proc.kill()
                raise
        # Runbook step 3: digest parity with the fault-free run.
        assert published["digest"] == reference_digest
        assert answer["estimate"] == reference_estimate
        assert standby_proc.returncode == 0

    def test_zombie_restart_is_fenced_and_client_retargets(self, tmp_path):
        standby_proc, standby_port = _start_node(tmp_path / "standby", "standby")
        primary_proc, primary_port = _start_node(
            tmp_path / "primary",
            "primary",
            replicas=[f"127.0.0.1:{standby_port}"],
        )
        client = ResilientClient(
            [f"127.0.0.1:{primary_port}", f"127.0.0.1:{standby_port}"],
            client_id="zombie-test",
            hedge_delay=0.2,
        )
        try:
            for index, (tenant, stream, values) in enumerate(BATCHES[:3]):
                client.ingest(tenant, stream, values.tolist())
            os.kill(primary_proc.pid, signal.SIGKILL)
            primary_proc.wait(timeout=30)
            client.promote(1)

            # The old primary's supervisor restarts it, still thinking
            # it leads. Its first shipped frame must come back 409 and
            # fence it; a fresh client pointed at the zombie first must
            # land its write on the true primary.
            zombie_proc, zombie_port = _start_node(
                tmp_path / "primary",
                "primary",
                replicas=[f"127.0.0.1:{standby_port}"],
            )
            try:
                fresh = ResilientClient(
                    [f"127.0.0.1:{zombie_port}", f"127.0.0.1:{standby_port}"],
                    client_id="fresh",
                    hedge_delay=0.2,
                )
                ack = fresh.ingest(TENANT, "C", [1, 2, 3])
                assert ack["endpoint"] == f"127.0.0.1:{standby_port}"
                assert ack["attempts"] >= 2  # first try hit the zombie
            finally:
                zombie_proc.send_signal(signal.SIGTERM)
                zombie_proc.wait(timeout=30)
        finally:
            if primary_proc.poll() is None:
                primary_proc.kill()
            standby_proc.send_signal(signal.SIGTERM)
            try:
                standby_proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                standby_proc.kill()
                raise


# ---------------------------------------------------------------------------
# Temporal ring parity across the replication stream
# ---------------------------------------------------------------------------
class TestTemporalReplication:
    """The epoch ring is a pure function of the WAL sequence, so a
    standby that applied the same frames must answer every windowed
    estimate with the primary's exact bytes — before and after a
    failover promotion."""

    def _make_pair(self, tmp_path):
        overrides = dict(epoch_interval=2, window_epochs=4)
        standby = ReplicatedService(
            make_config(tmp_path / "standby", **overrides), role="standby"
        )
        standby.start()
        primary = ReplicatedService(
            make_config(tmp_path / "primary", **overrides),
            role="primary",
            replicas=[LocalReplica(standby, name="standby-0")],
        )
        primary.start()
        return primary, standby

    def test_standby_rebuilds_identical_ring(self, tmp_path):
        primary, standby = self._make_pair(tmp_path)
        for index, (tenant, stream, values) in enumerate(BATCHES):
            primary.ingest(tenant, stream, values, idempotency_key=f"t{index}")

        assert primary.status()["temporal"] == standby.status()["temporal"]
        for window in (2, 4):
            assert primary.estimate(TENANT, "A", "B", window=window) == (
                standby.estimate(TENANT, "A", "B", window=window)
            )
        primary.close()
        standby.close()

    def test_windowed_answers_survive_promotion(self, tmp_path):
        primary, standby = self._make_pair(tmp_path)
        for index, (tenant, stream, values) in enumerate(BATCHES):
            primary.ingest(tenant, stream, values, idempotency_key=f"p{index}")
        before = primary.estimate(TENANT, "A", "B", window=3)

        standby.promote()
        after = standby.estimate(TENANT, "A", "B", window=3)
        assert after == before
        primary.close()
        standby.close()
