"""Tests for the one-call protocol drivers (:mod:`repro.core.protocol`)."""

from __future__ import annotations

import pytest

from repro.core import SketchParams, run_ldp_join_sketch, run_ldp_join_sketch_plus
from repro.join import exact_join_size

from .conftest import zipf_values


class TestRunLDPJoinSketch:
    def test_estimates_reasonably(self, skewed_pair):
        a, b, domain = skewed_pair
        params = SketchParams(k=9, m=512, epsilon=8.0)
        truth = exact_join_size(a, b, domain)
        result = run_ldp_join_sketch(a, b, params, seed=1)
        assert abs(result.estimate - truth) / truth < 0.4

    def test_deterministic_given_seed(self, skewed_pair):
        a, b, _ = skewed_pair
        params = SketchParams(k=3, m=64, epsilon=4.0)
        r1 = run_ldp_join_sketch(a, b, params, seed=7)
        r2 = run_ldp_join_sketch(a, b, params, seed=7)
        assert r1.estimate == r2.estimate

    def test_different_seeds_differ(self, skewed_pair):
        a, b, _ = skewed_pair
        params = SketchParams(k=3, m=64, epsilon=4.0)
        assert (
            run_ldp_join_sketch(a, b, params, seed=1).estimate
            != run_ldp_join_sketch(a, b, params, seed=2).estimate
        )

    def test_accounting_fields(self, skewed_pair):
        a, b, _ = skewed_pair
        params = SketchParams(k=3, m=64, epsilon=4.0)
        result = run_ldp_join_sketch(a, b, params, seed=3)
        assert result.uplink_bits == (a.size + b.size) * params.report_bits
        assert result.sketch_bytes == 2 * params.k * params.m * 8
        assert result.offline_seconds > 0
        assert result.online_seconds >= 0

    def test_budget_ledger(self, skewed_pair):
        a, b, _ = skewed_pair
        params = SketchParams(k=3, m=64, epsilon=4.0)
        result = run_ldp_join_sketch(a, b, params, seed=4)
        assert result.ledger.worst_case_epsilon() == pytest.approx(4.0)
        assert {group for group, _, _ in result.ledger.charges} == {"A", "B"}


class TestRunLDPJoinSketchPlus:
    def test_estimates_reasonably(self):
        a = zipf_values(40_000, 512, 1.4, seed=5)
        b = zipf_values(40_000, 512, 1.4, seed=6)
        params = SketchParams(k=9, m=512, epsilon=20.0)
        truth = exact_join_size(a, b, 512)
        result = run_ldp_join_sketch_plus(
            a, b, 512, params, sample_rate=0.2, threshold=0.02, seed=7
        )
        assert abs(result.estimate - truth) / truth < 0.5

    def test_budget_is_parallel_composed(self, skewed_pair):
        a, b, domain = skewed_pair
        params = SketchParams(k=3, m=64, epsilon=4.0)
        result = run_ldp_join_sketch_plus(a, b, domain, params, seed=8)
        assert result.ledger.worst_case_epsilon() == pytest.approx(4.0)
        assert len(result.ledger.charges) == 6

    def test_uplink_covers_every_user_once(self, skewed_pair):
        a, b, domain = skewed_pair
        params = SketchParams(k=3, m=64, epsilon=4.0)
        result = run_ldp_join_sketch_plus(a, b, domain, params, seed=9)
        assert result.uplink_bits == (a.size + b.size) * params.report_bits

    def test_phase1_shape_override(self, skewed_pair):
        a, b, domain = skewed_pair
        params = SketchParams(k=4, m=128, epsilon=4.0)
        phase1 = SketchParams(k=4, m=32, epsilon=4.0)
        result = run_ldp_join_sketch_plus(
            a, b, domain, params, phase1_params=phase1, seed=10
        )
        assert result.sketch_bytes == 2 * 4 * 32 * 8 + 4 * 4 * 128 * 8
