"""Numba-vs-NumPy backend parity: bit-identical sketches and estimates.

The backend ABI's determinism contract says every backend reproduces the
NumPy reference bit for bit — randomness is drawn host-side in the
protocol order, kernels are pure array functions, and the FWHT applies
the identical float operation per element pair.  This suite enforces the
contract over a seeded grid (methods × epsilons × population sizes,
including the odd-chunk / ``T = 1`` / ``n ∈ {0, 1}`` / shared-vs-per-trial
edge cases) whenever numba is installed; without numba the whole module
skips and the tier-1 suite exercises the NumPy fallback alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import backend_available, resolve_backend
from repro.core import SketchParams
from repro.core.client import (
    encode_reports_grouped_into,
    encode_reports_into,
    encode_reports_trials_into,
)
from repro.hashing import HashPairs
from repro.hashing.kwise import MERSENNE_PRIME_31

pytestmark = pytest.mark.skipif(
    not backend_available("numba"), reason="numba not installed"
)

EPSILONS = (1.0, 4.0)
SIZES = (0, 1, 3, 1000)
ODD_CHUNK = 17
METHODS = ("ldp-join-sketch", "ldp-compass", "flh", "hcms")


@pytest.fixture
def numpy_backend():
    return resolve_backend("numpy")


@pytest.fixture
def numba_backend():
    return resolve_backend("numba")


@pytest.fixture
def params():
    return SketchParams(k=5, m=64, epsilon=2.0)


@pytest.fixture
def pairs(params):
    return HashPairs(params.k, params.m, seed=2024)


def _values(n, seed=0):
    return np.random.default_rng(seed).integers(0, 10_000, size=n)


class TestKernelParity:
    def test_polyval_rows(self, numpy_backend, numba_backend, pairs):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, pairs.k, size=999)
        x = rng.integers(0, MERSENNE_PRIME_31, size=999).astype(np.uint64)
        for coeffs in (pairs._bucket_coeffs, pairs._sign_coeffs):
            assert np.array_equal(
                numpy_backend.polyval_mersenne_rows(coeffs, rows, x),
                numba_backend.polyval_mersenne_rows(coeffs, rows, x),
            )

    def test_polyval_all(self, numpy_backend, numba_backend, pairs):
        x = np.random.default_rng(2).integers(0, MERSENNE_PRIME_31, size=257).astype(
            np.uint64
        )
        assert np.array_equal(
            numpy_backend.polyval_mersenne_all(pairs._bucket_coeffs, x),
            numba_backend.polyval_mersenne_all(pairs._bucket_coeffs, x),
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_fused_encode_accumulate(
        self, numpy_backend, numba_backend, params, pairs, n
    ):
        rng = np.random.default_rng(n)
        x = _values(n, seed=n).astype(np.uint64)
        rows = rng.integers(0, params.k, size=n)
        cols = rng.integers(0, params.m, size=n)
        flips = rng.random(n) < 0.25
        out_np = np.zeros((params.k, params.m), dtype=np.int64)
        out_nb = np.zeros_like(out_np)
        numpy_backend.fused_encode_accumulate(
            pairs._bucket_coeffs, pairs._sign_coeffs, x, rows, cols, flips,
            params.m, out_np,
        )
        numba_backend.fused_encode_accumulate(
            pairs._bucket_coeffs, pairs._sign_coeffs, x, rows, cols, flips,
            params.m, out_nb,
        )
        assert out_np.tobytes() == out_nb.tobytes()

    def test_fwht_bit_identical(self, numpy_backend, numba_backend):
        data = np.random.default_rng(3).normal(size=(7, 128))
        a, b = data.copy(), data.copy()
        numpy_backend.fwht_batch_inplace(a)
        numba_backend.fwht_batch_inplace(b)
        assert a.tobytes() == b.tobytes()

    def test_bincount_accumulate(self, numpy_backend, numba_backend):
        rng = np.random.default_rng(4)
        for dtype, weights in (
            (np.int64, rng.choice(np.array([-1, 1]), size=500)),
            (np.float64, rng.normal(size=500)),
            (np.int64, None),
        ):
            flat = rng.integers(0, 64, size=500 if weights is None else weights.size)
            out_np = np.zeros(64, dtype=dtype)
            out_nb = np.zeros(64, dtype=dtype)
            numpy_backend.bincount_accumulate(out_np, flat, weights)
            numba_backend.bincount_accumulate(out_nb, flat, weights)
            assert out_np.tobytes() == out_nb.tobytes()

    def test_bincount_accumulate_sparse_branch(self, numpy_backend, numba_backend):
        # flat.size * SPARSE_RATIO < out.size forces the element-wise
        # scatter — the branch base.py pins as bit-for-bit-critical (the
        # two branches sum float bins in different orders, so a backend
        # flipping branches at a different threshold diverges exactly
        # here: tiny batch, huge accumulator).
        rng = np.random.default_rng(11)
        size = 4096
        for dtype, weights in (
            (np.int64, rng.choice(np.array([-1, 1]), size=8)),
            (np.float64, rng.normal(size=8)),
            (np.int64, None),
        ):
            flat = rng.integers(0, size, size=8 if weights is None else weights.size)
            out_np = rng.normal(size=size).astype(dtype)
            out_nb = out_np.copy()
            numpy_backend.bincount_accumulate(out_np, flat, weights)
            numba_backend.bincount_accumulate(out_nb, flat, weights)
            assert out_np.tobytes() == out_nb.tobytes()

    def test_fused_encode_parallel_kernel_parity(
        self, numpy_backend, numba_backend
    ):
        # A one-shot call big enough to cross the serial/parallel
        # threshold (n >= threads * out.size) so the thread-private
        # histogram kernel — unreachable from the chunked production
        # path — is exercised against the reference.
        import numba

        params = SketchParams(k=2, m=16, epsilon=2.0)
        pairs = HashPairs(params.k, params.m, seed=77)
        n = numba.get_num_threads() * params.k * params.m + 1
        rng = np.random.default_rng(13)
        x = rng.integers(0, MERSENNE_PRIME_31, size=n).astype(np.uint64)
        rows = rng.integers(0, params.k, size=n)
        cols = rng.integers(0, params.m, size=n)
        flips = rng.random(n) < params.flip_probability
        out_np = np.zeros((params.k, params.m), dtype=np.int64)
        out_nb = np.zeros((params.k, params.m), dtype=np.int64)
        numpy_backend.fused_encode_accumulate(
            pairs._bucket_coeffs, pairs._sign_coeffs, x, rows, cols, flips,
            params.m, out_np,
        )
        numba_backend.fused_encode_accumulate(
            pairs._bucket_coeffs, pairs._sign_coeffs, x, rows, cols, flips,
            params.m, out_nb,
        )
        assert out_np.tobytes() == out_nb.tobytes()

    def test_oracle_support_scan(self, numpy_backend, numba_backend):
        rng = np.random.default_rng(5)
        users, g = 300, 8
        a = rng.integers(1, MERSENNE_PRIME_31, size=users, dtype=np.int64)
        b = rng.integers(0, MERSENNE_PRIME_31, size=users, dtype=np.int64)
        reports = rng.integers(0, g, size=users, dtype=np.int64)
        counts = rng.integers(0, 40, size=(users, g)).astype(np.int64)
        candidates = rng.integers(0, 5000, size=41).astype(np.int64)
        assert np.array_equal(
            numpy_backend.oracle_support_scan(a, b, candidates, g, reports=reports),
            numba_backend.oracle_support_scan(a, b, candidates, g, reports=reports),
        )
        assert np.array_equal(
            numpy_backend.oracle_support_scan(a, b, candidates, g, counts=counts),
            numba_backend.oracle_support_scan(a, b, candidates, g, counts=counts),
        )


class TestSketchParity:
    """Dispatcher-level: whole accumulators byte-identical under shared seeds."""

    @pytest.mark.parametrize("epsilon", EPSILONS)
    @pytest.mark.parametrize("n", SIZES)
    def test_encode_reports_into(self, pairs, epsilon, n):
        params = SketchParams(pairs.k, pairs.m, epsilon)
        values = _values(n, seed=n)
        sketches = {}
        for name in ("numpy", "numba"):
            out = np.zeros((params.k, params.m), dtype=np.int64)
            encode_reports_into(
                values, params, pairs, out, rng=777, chunk_size=ODD_CHUNK,
                backend=name,
            )
            sketches[name] = out
        assert sketches["numpy"].tobytes() == sketches["numba"].tobytes()

    @pytest.mark.parametrize("trials", [1, 3])
    @pytest.mark.parametrize("shared_pairs", [True, False])
    def test_encode_reports_trials_into(self, params, pairs, trials, shared_pairs):
        values = _values(600, seed=6)
        pair_arg = (
            pairs
            if shared_pairs
            else [HashPairs(params.k, params.m, seed=50 + t) for t in range(trials)]
        )
        sketches = {}
        for name in ("numpy", "numba"):
            out = np.zeros((trials, params.k, params.m), dtype=np.int64)
            encode_reports_trials_into(
                values, params, pair_arg, out, list(range(trials)),
                chunk_size=ODD_CHUNK, backend=name,
            )
            sketches[name] = out
        assert sketches["numpy"].tobytes() == sketches["numba"].tobytes()

    def test_encode_reports_grouped_into(self, pairs):
        values = _values(600, seed=8)
        sketches = {}
        for name in ("numpy", "numba"):
            out = np.zeros((2, 3, pairs.k, pairs.m), dtype=np.int64)
            encode_reports_grouped_into(
                values, pairs, [1.0, 2.0, 4.0], out, 11, [21, 22],
                chunk_size=ODD_CHUNK, backend=name,
            )
            sketches[name] = out
        assert sketches["numpy"].tobytes() == sketches["numba"].tobytes()


class TestEstimateParity:
    """End-to-end: identical EstimateResults across the method grid."""

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_estimates_identical(self, method, epsilon):
        from repro.api import get_estimator
        from repro.data import make_join_instance

        instance = make_join_instance("zipf-1.1", size=1500, seed=9)
        results = {}
        for name in ("numpy", "numba"):
            estimator = get_estimator(method, backend=name)
            results[name] = estimator.estimate(instance, epsilon, seed=31)
        assert results["numpy"].estimate == results["numba"].estimate
        assert results["numpy"].uplink_bits == results["numba"].uplink_bits

    def test_session_roundtrip_identical(self):
        from repro.api import JoinSession

        estimates = {}
        for name in ("numpy", "numba"):
            session = JoinSession(SketchParams(6, 128, 2.0), seed=12, backend=name)
            rng = np.random.default_rng(0)
            session.collect("A", rng.integers(0, 700, size=3000))
            session.collect("B", rng.integers(0, 700, size=3000))
            estimates[name] = session.estimate().estimate
        assert estimates["numpy"] == estimates["numba"]

    def test_env_var_forces_numpy_even_with_numba(self):
        # REPRO_BACKEND=numpy must win over numba auto-detection.
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["REPRO_BACKEND"] = "numpy"
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.backend import get_backend; print(get_backend().name)",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.stdout.strip() == "numpy"
