"""Tests for the LDPJoinSketch client (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ReportBatch, SketchParams, encode_report, encode_reports
from repro.errors import ParameterError
from repro.hashing import HashPairs
from repro.transform import hadamard_matrix


class TestEncodeReport:
    def test_output_ranges(self, small_params, small_pairs):
        rng = np.random.default_rng(0)
        for _ in range(200):
            y, j, l = encode_report(5, small_params, small_pairs, rng)
            assert y in (-1, 1)
            assert 0 <= j < small_params.k
            assert 0 <= l < small_params.m

    def test_deterministic_given_rng(self, small_params, small_pairs):
        out1 = encode_report(5, small_params, small_pairs, np.random.default_rng(3))
        out2 = encode_report(5, small_params, small_pairs, np.random.default_rng(3))
        assert out1 == out2

    def test_payload_formula_without_flip(self, small_pairs):
        # With a huge epsilon the sign channel never flips, so the report
        # must equal xi_j(d) * H[h_j(d), l] exactly.
        params = SketchParams(k=3, m=8, epsilon=100.0)
        h = hadamard_matrix(params.m)
        rng = np.random.default_rng(4)
        for d in (0, 3, 11):
            y, j, l = encode_report(d, params, small_pairs, rng)
            bucket = small_pairs.bucket(j, np.array([d]))[0]
            sign = small_pairs.sign(j, np.array([d]))[0]
            assert y == sign * h[bucket, l]

    def test_pairs_shape_checked(self, small_params):
        wrong = HashPairs(small_params.k + 1, small_params.m, seed=1)
        with pytest.raises(ParameterError, match="do not match"):
            encode_report(0, small_params, wrong)


class TestEncodeReports:
    def test_batch_matches_scalar_given_same_rng(self, small_params, small_pairs):
        values = np.array([1, 7, 7, 3, 0, 12])
        batch = encode_reports(values, small_params, small_pairs, np.random.default_rng(5))
        # The batched path draws (rows, cols, flips) in a different order
        # than repeated scalar calls, so compare distributions instead of
        # the exact stream: payloads must obey the same formula.
        params_inf = SketchParams(small_params.k, small_params.m, 100.0)
        batch = encode_reports(values, params_inf, small_pairs, np.random.default_rng(5))
        h = hadamard_matrix(params_inf.m)
        for i, d in enumerate(values):
            bucket = small_pairs.bucket(int(batch.rows[i]), np.array([d]))[0]
            sign = small_pairs.sign(int(batch.rows[i]), np.array([d]))[0]
            assert batch.ys[i] == sign * h[bucket, batch.cols[i]]

    def test_row_col_distributions_uniform(self, small_params, small_pairs):
        n = 60_000
        batch = encode_reports(
            np.zeros(n, dtype=np.int64), small_params, small_pairs, np.random.default_rng(6)
        )
        row_counts = np.bincount(batch.rows, minlength=small_params.k)
        col_counts = np.bincount(batch.cols, minlength=small_params.m)
        assert np.all(np.abs(row_counts - n / small_params.k) < 5 * np.sqrt(n / small_params.k))
        assert np.all(np.abs(col_counts - n / small_params.m) < 5 * np.sqrt(n / small_params.m))

    def test_flip_rate_matches_epsilon(self, small_pairs):
        # With the all-ones Hadamard row (bucket 0 hashes...) easier: use
        # epsilon-only check via the empirical sign agreement rate.
        params = SketchParams(k=3, m=8, epsilon=2.0)
        n = 100_000
        values = np.full(n, 4, dtype=np.int64)
        batch = encode_reports(values, params, small_pairs, np.random.default_rng(7))
        h = hadamard_matrix(params.m)
        buckets = small_pairs.bucket_rows(batch.rows, values)
        signs = small_pairs.sign_rows(batch.rows, values)
        unperturbed = signs * h[buckets, batch.cols]
        agreement = float(np.mean(batch.ys == unperturbed))
        assert abs(agreement - params.flip_probability * 0 - (1 - params.flip_probability)) < 0.006

    def test_empty_batch(self, small_params, small_pairs):
        batch = encode_reports([], small_params, small_pairs)
        assert len(batch) == 0
        assert batch.total_bits == 0

    def test_total_bits(self, small_params, small_pairs):
        batch = encode_reports(np.arange(10), small_params, small_pairs, 0)
        assert batch.total_bits == 10 * small_params.report_bits


class TestReportBatch:
    def test_validation_shapes(self, small_params):
        with pytest.raises(ParameterError, match="equal-length"):
            ReportBatch(np.array([1]), np.array([0, 0]), np.array([0]), small_params)

    def test_validation_sign_values(self, small_params):
        with pytest.raises(ParameterError, match="-1/\\+1"):
            ReportBatch(np.array([2]), np.array([0]), np.array([0]), small_params)

    def test_validation_row_range(self, small_params):
        with pytest.raises(ParameterError, match="rows"):
            ReportBatch(
                np.array([1]), np.array([small_params.k]), np.array([0]), small_params
            )

    def test_validation_col_range(self, small_params):
        with pytest.raises(ParameterError, match="cols"):
            ReportBatch(
                np.array([1]), np.array([0]), np.array([small_params.m]), small_params
            )

    def test_concat(self, small_params, small_pairs):
        b1 = encode_reports(np.arange(5), small_params, small_pairs, 1)
        b2 = encode_reports(np.arange(3), small_params, small_pairs, 2)
        combined = b1.concat(b2)
        assert len(combined) == 8
        assert np.array_equal(combined.ys[:5], b1.ys)
        assert np.array_equal(combined.ys[5:], b2.ys)

    def test_concat_requires_same_params(self, small_params, small_pairs):
        other_params = SketchParams(small_params.k, small_params.m, 9.0)
        b1 = encode_reports(np.arange(5), small_params, small_pairs, 1)
        b2 = encode_reports(np.arange(5), other_params, small_pairs, 1)
        with pytest.raises(ParameterError, match="different parameters"):
            b1.concat(b2)
