"""Unit + property tests for :mod:`repro.transform.hadamard`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform import (
    fwht,
    fwht_inplace,
    hadamard_entry,
    hadamard_matrix,
    hadamard_row,
    sample_hadamard_entries,
)

ORDERS = [1, 2, 4, 8, 16, 64]


class TestHadamardEntry:
    def test_base_case(self):
        assert hadamard_entry(0, 0, 1) == 1

    def test_order_two(self):
        assert hadamard_entry(0, 0, 2) == 1
        assert hadamard_entry(0, 1, 2) == 1
        assert hadamard_entry(1, 0, 2) == 1
        assert hadamard_entry(1, 1, 2) == -1

    @pytest.mark.parametrize("order", ORDERS)
    def test_first_row_and_column_all_ones(self, order):
        idx = np.arange(order)
        assert np.all(hadamard_entry(np.zeros(order, dtype=int), idx, order) == 1)
        assert np.all(hadamard_entry(idx, np.zeros(order, dtype=int), order) == 1)

    @pytest.mark.parametrize("order", ORDERS)
    def test_symmetry(self, order):
        rng = np.random.default_rng(1)
        i = rng.integers(0, order, size=50)
        j = rng.integers(0, order, size=50)
        assert np.array_equal(
            hadamard_entry(i, j, order), hadamard_entry(j, i, order)
        )

    @pytest.mark.parametrize("order", [2, 4, 8, 32])
    def test_matches_recursive_definition(self, order):
        # Build H recursively and compare with the closed form.
        h = np.array([[1]])
        while h.shape[0] < order:
            h = np.block([[h, h], [h, -h]])
        assert np.array_equal(hadamard_matrix(order), h)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            hadamard_entry(4, 0, 4)
        with pytest.raises(IndexError):
            hadamard_entry(0, -1, 4)

    def test_non_power_of_two_order_rejected(self):
        with pytest.raises(ValueError):
            hadamard_entry(0, 0, 3)

    def test_scalar_returns_python_int(self):
        assert isinstance(hadamard_entry(1, 1, 4), int)


class TestHadamardMatrix:
    @pytest.mark.parametrize("order", ORDERS)
    def test_orthogonality(self, order):
        h = hadamard_matrix(order)
        assert np.array_equal(h @ h.T, order * np.eye(order, dtype=np.int64))

    @pytest.mark.parametrize("order", ORDERS)
    def test_entries_are_signs(self, order):
        h = hadamard_matrix(order)
        assert set(np.unique(h)) <= {-1, 1}

    def test_row_extraction(self):
        h = hadamard_matrix(16)
        for i in (0, 5, 15):
            assert np.array_equal(hadamard_row(i, 16), h[i])


class TestFWHT:
    @pytest.mark.parametrize("order", ORDERS)
    def test_matches_matrix_product(self, order):
        rng = np.random.default_rng(2)
        x = rng.normal(size=order)
        assert np.allclose(fwht(x), x @ hadamard_matrix(order))

    def test_batch_rows(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(5, 32))
        expected = x @ hadamard_matrix(32)
        assert np.allclose(fwht(x), expected)

    def test_three_dimensional_batch(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 3, 16))
        out = fwht(x)
        for i in range(2):
            for j in range(3):
                assert np.allclose(out[i, j], fwht(x[i, j]))

    def test_involution(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=64)
        assert np.allclose(fwht(fwht(x)) / 64, x)

    def test_non_destructive(self):
        x = np.ones(8)
        fwht(x)
        assert np.array_equal(x, np.ones(8))

    def test_inplace_returns_same_object(self):
        x = np.ones(8)
        assert fwht_inplace(x) is x

    def test_inplace_modifies(self):
        x = np.array([1.0, 0.0])
        fwht_inplace(x)
        assert np.array_equal(x, [1.0, 1.0])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fwht(np.ones(6))

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            fwht_inplace(np.float64(1.0))

    def test_inplace_rejects_integer_dtypes(self):
        # Integer input used to silently transform in integer arithmetic;
        # the in-place butterfly now demands an explicit float conversion.
        with pytest.raises(TypeError, match="float"):
            fwht_inplace(np.ones(8, dtype=np.int64))

    def test_order_one_is_identity(self):
        x = np.array([[3.0], [4.0]])
        assert np.array_equal(fwht_inplace(x), [[3.0], [4.0]])

    def test_one_hot_transform_is_matrix_row(self):
        # The client-side identity: fwht(one-hot at r) == H[r, :].
        m = 32
        for r in (0, 7, 31):
            v = np.zeros(m)
            v[r] = 1.0
            assert np.array_equal(fwht(v), hadamard_matrix(m)[r].astype(float))


class TestFWHTProperties:
    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_involution_random(self, log_m, seed):
        m = 2**log_m
        x = np.random.default_rng(seed).normal(size=m)
        assert np.allclose(fwht(fwht(x)) / m, x, atol=1e-9)

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_parseval(self, log_m, seed):
        m = 2**log_m
        x = np.random.default_rng(seed).normal(size=m)
        assert np.isclose(np.sum(fwht(x) ** 2), m * np.sum(x**2))

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=-5, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_linearity(self, log_m, seed, scale):
        m = 2**log_m
        rng = np.random.default_rng(seed)
        x, y = rng.normal(size=m), rng.normal(size=m)
        assert np.allclose(fwht(x + scale * y), fwht(x) + scale * fwht(y), atol=1e-8)


class TestSampleHadamardEntries:
    def test_matches_matrix(self):
        order = 16
        rng = np.random.default_rng(6)
        rows = rng.integers(0, order, size=100)
        cols = rng.integers(0, order, size=100)
        h = hadamard_matrix(order)
        assert np.array_equal(sample_hadamard_entries(rows, cols, order), h[rows, cols])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            sample_hadamard_entries(np.zeros(3, dtype=int), np.zeros(4, dtype=int), 8)


class TestPopcountParityLUT:
    """The 16-bit lookup-table parity must pin to the word-level fold."""

    @staticmethod
    def _reference_fold(x, bits=64):
        # The pre-LUT implementation: XOR folds down to one bit.
        x = np.asarray(x)
        if x.dtype == np.int64:
            x = x.view(np.uint64)
        else:
            x = x.astype(np.uint64)
        x = x.copy()
        shift = 32
        while shift:
            if shift < bits:
                x = x ^ (x >> np.uint64(shift))
            shift //= 2
        return (x & np.uint64(1)).astype(np.int64)

    @pytest.mark.parametrize("bits", [1, 4, 10, 16, 17, 31, 63, 64])
    def test_matches_fold_reference(self, bits):
        from repro.transform.hadamard import _popcount_parity

        rng = np.random.default_rng(bits)
        high = min(1 << bits, 1 << 62)
        x = rng.integers(0, high, size=2000, dtype=np.int64)
        assert np.array_equal(
            _popcount_parity(x, bits=bits), self._reference_fold(x, bits=bits)
        )

    def test_exhaustive_16_bit(self):
        from repro.transform.hadamard import _popcount_parity

        x = np.arange(1 << 16, dtype=np.int64)
        expected = np.array([bin(int(v)).count("1") & 1 for v in range(1 << 16)])
        assert np.array_equal(_popcount_parity(x, bits=16), expected)

    def test_caller_buffer_survives_without_consume(self):
        from repro.transform.hadamard import _popcount_parity

        x = np.arange(100, dtype=np.uint64) << np.uint64(20)
        original = x.copy()
        _popcount_parity(x, bits=64, consume=False)
        assert np.array_equal(x, original)

    def test_dtypes_and_edge_values(self):
        from repro.transform.hadamard import _popcount_parity

        for dtype in (np.int32, np.uint32, np.int64, np.uint64):
            x = np.array([0, 1, 2, 3, (1 << 31) - 1], dtype=dtype)
            assert np.array_equal(
                _popcount_parity(x), self._reference_fold(x.astype(np.int64))
            )


class TestFwhtScratchCache:
    """The cached scratch buffer must never leak state across calls."""

    def test_interleaved_shapes_stay_correct(self):
        rng = np.random.default_rng(7)
        for m in (8, 64, 16, 256, 8, 1024, 32):
            x = rng.normal(size=(3, m))
            expected = x @ hadamard_matrix(m)
            assert np.allclose(fwht_inplace(x.copy()), expected)

    def test_cache_is_reused_between_calls(self):
        from repro.transform import hadamard as hd

        a = np.random.default_rng(8).normal(size=(4, 64))
        fwht_inplace(a.copy())
        buf_first = getattr(hd._SCRATCH, "buf", None)
        fwht_inplace(a.copy())
        assert getattr(hd._SCRATCH, "buf", None) is buf_first

    def test_oversized_scratch_not_retained(self, monkeypatch):
        from repro.transform import hadamard as hd

        monkeypatch.setattr(hd, "_SCRATCH_CACHE_MAX", 16)
        before = getattr(hd._SCRATCH, "buf", None)
        data = np.random.default_rng(9).normal(size=(4, 64))  # scratch = 128 > 16
        expected = data @ hadamard_matrix(64)
        assert np.allclose(fwht_inplace(data.copy()), expected)
        after = getattr(hd._SCRATCH, "buf", None)
        assert after is before or (after is not None and after.size <= 16)
