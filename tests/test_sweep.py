"""Sweep engine determinism: trial-axis kernels, scheduler, worker counts.

The engine's contract is that execution strategy never changes results:

* the trial-axis fused kernel is bit-for-bit ``T`` serial
  ``encode_reports_into`` runs under the same generators (including
  ``T=1`` and odd chunk boundaries);
* ``run_join_sketch_trials`` / ``estimate_trials`` reproduce the serial
  estimator path bit-for-bit under the same seeds;
* ``workers=N`` reproduces ``workers=1`` exactly for the same plan, in
  both exact and grouped trial-axis modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import get_estimator, run_join_sketch, run_join_sketch_trials
from repro.core import SketchParams
from repro.core.client import (
    encode_reports_grouped_into,
    encode_reports_into,
    encode_reports_trials_into,
)
from repro.data import ZipfGenerator
from repro.errors import ParameterError
from repro.experiments.harness import run_trials
from repro.experiments.sweep import plan_grid, run_sweep, sweep_table
from repro.hashing import HashPairs
from repro.privacy.response import flip_probability
from repro.transform.hadamard import sample_hadamard_parities

PARAMS = SketchParams(6, 64, 3.0)


@pytest.fixture(scope="module")
def values():
    return np.random.default_rng(0).integers(0, 5000, size=10_001)


@pytest.fixture(scope="module")
def instance():
    return ZipfGenerator(512, alpha=1.3).make_join_instance(6_000, rng=1)


def _record_key(records):
    """The deterministic fields of a record stream (timings excluded)."""
    return [
        (r.method, r.dataset, r.epsilon, r.truth, r.estimate, r.uplink_bits, r.sketch_bytes)
        for r in records
    ]


class TestTrialAxisKernel:
    @pytest.mark.parametrize("chunk_size", [777, 8192, 100_000])
    def test_shared_pairs_bit_identical(self, values, chunk_size):
        pairs = HashPairs(PARAMS.k, PARAMS.m, seed=7)
        trials = 3
        out = np.zeros((trials, PARAMS.k, PARAMS.m), dtype=np.int64)
        encode_reports_trials_into(
            values, PARAMS, pairs, out, [100 + t for t in range(trials)], chunk_size
        )
        for t in range(trials):
            ref = np.zeros((PARAMS.k, PARAMS.m), dtype=np.int64)
            encode_reports_into(values, PARAMS, pairs, ref, 100 + t, chunk_size)
            assert np.array_equal(out[t], ref)

    def test_per_trial_pairs_bit_identical(self, values):
        pairs_list = [HashPairs(PARAMS.k, PARAMS.m, seed=50 + t) for t in range(3)]
        out = np.zeros((3, PARAMS.k, PARAMS.m), dtype=np.int64)
        encode_reports_trials_into(values, PARAMS, pairs_list, out, [1, 2, 3])
        for t in range(3):
            ref = np.zeros((PARAMS.k, PARAMS.m), dtype=np.int64)
            encode_reports_into(values, PARAMS, pairs_list[t], ref, t + 1)
            assert np.array_equal(out[t], ref)

    def test_single_trial_is_fused_path(self, values):
        pairs = HashPairs(PARAMS.k, PARAMS.m, seed=7)
        out = np.zeros((1, PARAMS.k, PARAMS.m), dtype=np.int64)
        encode_reports_trials_into(values, PARAMS, pairs, out, [9], chunk_size=100)
        ref = np.zeros((PARAMS.k, PARAMS.m), dtype=np.int64)
        encode_reports_into(values, PARAMS, pairs, ref, 9, chunk_size=100)
        assert np.array_equal(out[0], ref)

    def test_empty_values(self):
        pairs = HashPairs(PARAMS.k, PARAMS.m, seed=7)
        out = np.zeros((2, PARAMS.k, PARAMS.m), dtype=np.int64)
        assert encode_reports_trials_into([], PARAMS, pairs, out, [1, 2]) == 0
        assert not out.any()

    def test_shape_mismatch_rejected(self, values):
        pairs = HashPairs(PARAMS.k, PARAMS.m, seed=7)
        out = np.zeros((3, PARAMS.k, PARAMS.m), dtype=np.int64)
        with pytest.raises(ParameterError):
            encode_reports_trials_into(values, PARAMS, pairs, out, [1, 2])

    def test_pairs_count_mismatch_rejected(self, values):
        pairs_list = [HashPairs(PARAMS.k, PARAMS.m, seed=s) for s in (1, 2)]
        out = np.zeros((3, PARAMS.k, PARAMS.m), dtype=np.int64)
        with pytest.raises(ParameterError):
            encode_reports_trials_into(values, PARAMS, pairs_list, out, [1, 2, 3])


class TestGroupedKernel:
    def test_matches_dense_reference(self, values):
        """The S - 2F factorisation equals materialising every cell."""
        pairs = HashPairs(PARAMS.k, PARAMS.m, seed=7)
        epsilons = [8.0, 1.0, 4.0]  # deliberately unsorted
        trials, chunk = 3, 999
        out = np.zeros((trials, len(epsilons), PARAMS.k, PARAMS.m), dtype=np.int64)
        encode_reports_grouped_into(
            values, pairs, epsilons, out, 33, [300 + t for t in range(trials)], chunk
        )
        ref = np.zeros_like(out)
        sampler = np.random.default_rng(33)
        gens = [np.random.default_rng(300 + t) for t in range(trials)]
        for start in range(0, values.size, chunk):
            block = values[start : start + chunk]
            rows = sampler.integers(0, PARAMS.k, size=block.size)
            cols = sampler.integers(0, PARAMS.m, size=block.size)
            buckets, parity = pairs.bucket_and_sign_parity_rows(rows, block)
            base = parity ^ sample_hadamard_parities(buckets, cols, PARAMS.m)
            uniforms = [g.random(block.size) for g in gens]
            for t in range(trials):
                for e, epsilon in enumerate(epsilons):
                    flips = uniforms[t] < flip_probability(epsilon)
                    np.add.at(ref[t, e], (rows, cols), 1 - 2 * (base ^ flips))
        assert np.array_equal(out, ref)

    def test_requires_contiguous_out(self, values):
        pairs = HashPairs(PARAMS.k, PARAMS.m, seed=7)
        out = np.zeros((2, 2, PARAMS.k, PARAMS.m), dtype=np.int64)
        with pytest.raises(ParameterError):
            encode_reports_grouped_into(
                values, pairs, [1.0, 2.0], out.transpose(1, 0, 2, 3), 1, [1, 2]
            )


class TestTrialVectorizedEstimators:
    def test_run_join_sketch_trials_bit_identical(self, instance):
        params = SketchParams(5, 128, 4.0)
        seeds = [11, 22, 33]
        serial = [
            run_join_sketch(instance.values_a, instance.values_b, params, seed=s)
            for s in seeds
        ]
        batched = run_join_sketch_trials(
            instance.values_a, instance.values_b, params, seeds
        )
        for s, b in zip(serial, batched):
            assert s.estimate == b.estimate
            assert s.uplink_bits == b.uplink_bits
            assert s.sketch_bytes == b.sketch_bytes
            assert s.extras["num_reports"] == b.extras["num_reports"]

    @pytest.mark.parametrize("name", ["ldp-join-sketch", "compass"])
    def test_estimate_trials_matches_estimate(self, instance, name):
        est = get_estimator(name, k=5, m=128)
        seeds = [4, 5]
        serial = [est.estimate(instance, 6.0, s).estimate for s in seeds]
        batched = [r.estimate for r in est.estimate_trials(instance, 6.0, seeds)]
        assert serial == batched

    def test_empty_seed_list(self, instance):
        params = SketchParams(5, 128, 4.0)
        assert run_join_sketch_trials(instance.values_a, instance.values_b, params, []) == []

    def test_trial_group_marginal_sanity(self, instance):
        est = get_estimator("ldp-join-sketch", k=8, m=256)
        blocks = est.estimate_trial_group(
            instance, [8.0, 2.0], [1, 2, 3, 4], group_seed=9
        )
        truth = float(instance.true_join_size)
        assert len(blocks) == 2 and all(len(b) == 4 for b in blocks)
        for results in blocks:
            for r in results:
                assert np.isfinite(r.estimate)
        # At a generous budget the trial mean lands near the truth.
        mean_high_eps = np.mean([r.estimate for r in blocks[0]])
        assert abs(mean_high_eps - truth) < truth


class TestRunTrialsRouting:
    def test_fast_path_matches_explicit_serial_loop(self, instance):
        """run_trials' estimate_trials routing reproduces the per-seed loop."""
        method = get_estimator("ldp-join-sketch", k=5, m=128)
        from repro.rng import derive_seed, ensure_rng

        rng = ensure_rng(123)
        expected = [
            method.estimate(instance, 4.0, derive_seed(rng)).estimate for _ in range(3)
        ]
        records = run_trials(method, instance, 4.0, trials=3, seed=123)
        assert [r.estimate for r in records] == expected

    def test_workers_split_is_bit_identical(self, instance):
        method = get_estimator("ldp-join-sketch", k=5, m=64)
        serial = run_trials(method, instance, 4.0, trials=3, seed=5)
        parallel = run_trials(method, instance, 4.0, trials=3, seed=5, workers=2)
        assert _record_key(serial) == _record_key(parallel)


class TestScheduler:
    def test_workers_bit_identical_exact(self, instance):
        methods = {
            "LDPJoinSketch": get_estimator("ldp-join-sketch", k=4, m=64),
            "FAGMS": get_estimator("fagms", k=4, m=64),
        }
        kwargs = dict(scale=0.0005, seed=42)
        p1 = plan_grid(["facebook"], methods, [2.0, 8.0], 2, **kwargs)
        p2 = plan_grid(["facebook"], methods, [2.0, 8.0], 2, **kwargs)
        r1 = [r for recs in run_sweep(p1, workers=1) for r in recs]
        r2 = [r for recs in run_sweep(p2, workers=2) for r in recs]
        assert _record_key(r1) == _record_key(r2)

    def test_workers_bit_identical_grouped(self, instance):
        methods = {"LDPJoinSketch": get_estimator("ldp-join-sketch", k=4, m=64)}
        kwargs = dict(scale=0.0005, seed=42, trial_axis="grouped")
        p1 = plan_grid(["facebook"], methods, [2.0, 8.0], 3, **kwargs)
        p2 = plan_grid(["facebook"], methods, [2.0, 8.0], 3, **kwargs)
        r1 = [r for recs in run_sweep(p1, workers=1) for r in recs]
        r2 = [r for recs in run_sweep(p2, workers=2) for r in recs]
        assert _record_key(r1) == _record_key(r2)
        # One unit covers the whole epsilon axis, epsilon-major.
        assert [r.epsilon for r in r1] == [2.0, 2.0, 2.0, 8.0, 8.0, 8.0]

    def test_grouped_fallback_without_fast_path(self):
        """Methods lacking estimate_trial_group still run grouped plans."""
        methods = {"FAGMS": get_estimator("fagms", k=4, m=64)}
        plan = plan_grid(
            ["facebook"], methods, [2.0, 8.0], 2, scale=0.0005, seed=3,
            trial_axis="grouped",
        )
        records = [r for recs in run_sweep(plan) for r in recs]
        assert len(records) == 4
        assert all(np.isfinite(r.estimate) for r in records)

    def test_plan_seed_order_matches_legacy_serial_loop(self):
        """The plan derives seeds exactly as the historical figure loop."""
        from repro.data.registry import make_join_instance
        from repro.experiments.harness import run_trials as legacy_run_trials
        from repro.rng import derive_seed, ensure_rng

        methods = {
            "LDPJoinSketch": get_estimator("ldp-join-sketch", k=4, m=64),
            "FAGMS": get_estimator("fagms", k=4, m=64),
        }
        epsilons, trials, seed = [2.0, 8.0], 2, 77
        rng = ensure_rng(seed)
        legacy = []
        for dataset in ["facebook"]:
            inst = make_join_instance(dataset, scale=0.0005, seed=derive_seed(rng))
            for method in methods.values():
                for epsilon in epsilons:
                    legacy.extend(
                        legacy_run_trials(method, inst, epsilon, trials, derive_seed(rng))
                    )
        plan = plan_grid(["facebook"], methods, epsilons, trials, scale=0.0005, seed=seed)
        engine = [r for recs in run_sweep(plan) for r in recs]
        assert _record_key(legacy) == _record_key(engine)

    def test_sweep_table_structure(self):
        table = sweep_table(
            ["facebook"], ["ldp-join-sketch"], [4.0], 2, scale=0.0005, seed=7,
            k=4, m=64,
        )
        assert table.column("method") == ["LDPJoinSketch"]
        assert len(table.rows) == 1

    def test_plan_rejects_bad_axis(self):
        with pytest.raises(ParameterError):
            plan_grid(["facebook"], ["fagms"], [1.0], 1, trial_axis="bogus")


class TestSummarize:
    def test_relative_error_nan_when_truth_zero(self):
        from repro.experiments.harness import TrialRecord

        record = TrialRecord("m", "d", 1.0, 0.0, 5.0, 0.0, 0.0, 0, 0)
        assert np.isnan(record.relative_error)

    def test_summarize_skips_undefined_re(self):
        from repro.experiments.harness import TrialRecord, summarize

        records = [
            TrialRecord("m", "d", 1.0, 0.0, 5.0, 0.1, 0.0, 8, 64),
            TrialRecord("m", "d", 1.0, 100.0, 120.0, 0.3, 0.0, 8, 64),
        ]
        stats = summarize(records)
        assert np.isfinite(stats["re"]) and stats["re"] == pytest.approx(0.2)
        assert stats["offline_seconds"] == pytest.approx(0.2)

    def test_summarize_all_zero_truth_is_nan(self):
        from repro.experiments.harness import TrialRecord, summarize

        records = [TrialRecord("m", "d", 1.0, 0.0, 5.0, 0.0, 0.0, 0, 0)]
        assert np.isnan(summarize(records)["re"])
