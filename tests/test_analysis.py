"""Tests for :mod:`repro.analysis` — the invariant linter.

Every RPR rule is exercised with at least one minimal *bad* fixture
(must flag) and one minimal *good* fixture (must stay silent), plus the
framework semantics: line suppressions, baseline allowances, runner exit
codes and output formats, and the self-check that the shipped source
tree is clean under the shipped (empty) baseline.

Fixture files are written into a miniature package layout
(``<tmp>/repro/<subpackage>/mod.py``) because most rules scope
themselves by location inside the ``repro`` package.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    SYNTAX_ERROR_CODE,
    apply_baseline,
    lint_paths,
    load_baseline,
    save_baseline,
)
from repro.analysis.runner import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_tree(tmp_path, tree):
    """Write ``{relative_path: source}`` under ``tmp_path`` and lint it."""
    for rel, source in tree.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path])


def codes_of(result):
    return [d.code for d in result.diagnostics]


# ---------------------------------------------------------------------------
# Rule fixtures: (rule code, relative path, source, expected hit count)
# ---------------------------------------------------------------------------

BAD_FIXTURES = [
    ("RPR101", "repro/core/a.py", "import random\n", 1),
    ("RPR101", "repro/core/b.py", "from random import choice\n", 1),
    ("RPR101", "repro/core/c.py", "import numpy as np\nnp.random.seed(1)\n", 1),
    ("RPR101", "repro/core/d.py", "import numpy as np\nx = np.random.rand(3)\n", 1),
    (
        "RPR101",
        "repro/core/e.py",
        "import numpy as np\nrng = np.random.default_rng()\n",
        1,
    ),
    (
        "RPR101",
        "repro/core/f.py",
        "from numpy.random import default_rng\nrng = default_rng()\n",
        1,
    ),
    ("RPR101", "scripts/tool.py", "import random\n", 1),  # applies outside repro too
    (
        "RPR102",
        "repro/core/g.py",
        "import numpy as np\nnp.add.at(out, (rows, cols), w)\n",
        1,
    ),
    (
        "RPR102",
        "repro/core/h.py",
        "import numpy as np\nacc = acc.astype(np.float64)\n",
        1,
    ),
    (
        "RPR102",
        "repro/distributed/i.py",
        "raw = counts.astype('float32')\n",
        1,
    ),
    ("RPR102", "repro/transform/j.py", "acc /= 3\n", 1),
    ("RPR102", "repro/core/j2.py", "accum = accum / total\n", 1),
    (
        "RPR102",
        "repro/core/k.py",
        "import numpy as np\nout = np.bincount(flat.astype(np.int32), minlength=n)\n",
        1,
    ),
    (
        "RPR102",
        "repro/distributed/k2.py",
        "bincount_accumulate(out, idx.astype('int32'), w)\n",
        1,
    ),
    ("RPR103", "repro/core/l.py", "import numba\n", 1),
    ("RPR103", "repro/core/m.py", "from numba import njit\n", 1),
    (
        "RPR103",
        "repro/core/n.py",
        "from repro.backend.numpy_backend import fused_encode_accumulate\n",
        1,
    ),
    ("RPR103", "repro/api/o.py", "from ..backend import numba_backend\n", 1),
    ("RPR103", "repro/core/p.py", "y = fwht_batch_inplace(x)\n", 1),
    ("RPR104", "repro/core/q.py", "import math\np = math.exp(epsilon)\n", 1),
    (
        "RPR104",
        "repro/experiments/r.py",
        "import numpy as np\nw = np.exp(self.eps / 2)\n",
        1,
    ),
    (
        "RPR105",
        "repro/experiments/s.py",
        "for item in set(items):\n    work(item)\n",
        1,
    ),
    (
        "RPR105",
        "repro/distributed/t.py",
        "for name in set(a) & set(b):\n    work(name)\n",
        1,
    ),
    ("RPR105", "repro/core/u.py", "key, value = state.popitem()\n", 1),
    (
        "RPR105",
        "repro/experiments/v.py",
        "import time\nseed = int(time.time())\n",
        1,
    ),
    (
        # Flags twice: wall-clock bound to an rng-named target AND fed
        # into ensure_rng.
        "RPR105",
        "repro/core/w.py",
        "import time\nrng = ensure_rng(int(time.time()))\n",
        2,
    ),
    (
        "RPR105",
        "repro/core/w2.py",
        "import time\nrun(seed=time.time_ns())\n",
        1,
    ),
    ("RPR106", "repro/service/x1.py", "import requests\n", 1),
    ("RPR106", "repro/service/x2.py", "from requests import get\n", 1),
    (
        "RPR106",
        "repro/service/x3.py",
        "import time\nasync def handle():\n    time.sleep(1)\n",
        1,
    ),
    (
        "RPR106",
        "repro/service/x4.py",
        "async def handle(path):\n    path.write_text('x')\n",
        1,
    ),
    (
        "RPR106",
        "repro/service/x5.py",
        "async def handle():\n    with open('f') as fh:\n        pass\n",
        1,
    ),
    (
        "RPR106",
        "repro/service/x6.py",
        "import time\nseed = int(time.time())\n",
        1,
    ),
    (
        "RPR107",
        "repro/api/y1.py",
        "self.ledger.charges.append((group, eps, mech))\n",
        1,
    ),
    (
        "RPR107",
        "repro/api/y2.py",
        "session.ledger.charges.extend(other.ledger.charges)\n",
        1,
    ),
    (
        "RPR107",
        "repro/temporal/y3.py",
        "ledger.charges += [(group, eps, mech)]\n",
        1,
    ),
]

GOOD_FIXTURES = [
    # RPR101: seeded construction, the sanctioned module, and ensure_rng.
    ("RPR101", "repro/core/ga.py", "import numpy as np\nrng = np.random.default_rng(7)\n"),
    ("RPR101", "repro/rng.py", "import numpy as np\nrng = np.random.default_rng()\n"),
    ("RPR101", "repro/core/gb.py", "from repro.rng import ensure_rng\nrng = ensure_rng(None)\n"),
    # RPR102: sanctioned np.add.at homes; reads into fresh names; int64 stays.
    ("RPR102", "repro/accumulate.py", "import numpy as np\nnp.add.at(out, idx, 1)\n"),
    ("RPR102", "repro/backend/gimpl.py", "import numpy as np\nnp.add.at(out, idx, 1)\n"),
    ("RPR102", "repro/core/gc.py", "import numpy as np\ncounts = raw.astype(np.float64)\n"),
    ("RPR102", "repro/core/gd.py", "import numpy as np\nacc = acc.astype(np.int64)\n"),
    ("RPR102", "repro/api/ge.py", "import numpy as np\nraw = x.astype(np.float64)\n"),
    (
        "RPR102",
        "repro/core/gf.py",
        "import numpy as np\nout = np.bincount(flat.astype(np.int64), minlength=n)\n",
    ),
    # RPR103: implementation modules may self-import; dispatch is the API.
    ("RPR103", "repro/backend/gg.py", "import numba\nfrom .numpy_backend import kernels\n"),
    ("RPR103", "repro/core/gh.py", "from ..backend import get_backend\n"),
    ("RPR103", "repro/core/gi.py", "y = get_backend().fwht_batch_inplace(x)\n"),
    # RPR104: inside the accounted packages, or no epsilon in sight.
    ("RPR104", "repro/mechanisms/gj.py", "import math\np = math.exp(epsilon)\n"),
    ("RPR104", "repro/privacy/gk.py", "import math\nratio = math.exp(eps)\n"),
    ("RPR104", "repro/data/gl.py", "import numpy as np\nw = np.exp(-0.5 * z * z)\n"),
    ("RPR104", "repro/core/gm.py", "import math\nn_steps = math.exp(steps)\n"),
    # RPR105: sorted iteration, out-of-scope package, explicit seeds.
    ("RPR105", "repro/experiments/gn.py", "for item in sorted(set(items)):\n    work(item)\n"),
    ("RPR105", "repro/api/go.py", "for item in set(items):\n    work(item)\n"),
    ("RPR105", "repro/core/gp.py", "import time\nelapsed = time.time() - start\n"),
    # RPR106: async-safe sleep, sync helpers (the executor runs those),
    # blocking work behind run_in_executor, and non-service packages.
    (
        "RPR106",
        "repro/service/gq.py",
        "import asyncio\nasync def handle():\n    await asyncio.sleep(0)\n",
    ),
    (
        "RPR106",
        "repro/service/gr.py",
        "import os\ndef barrier(fh):\n    os.fsync(fh.fileno())\n",
    ),
    (
        "RPR106",
        "repro/service/gs.py",
        "async def handle(loop, executor):\n"
        "    def work(path):\n"
        "        return path.read_bytes()\n"
        "    await loop.run_in_executor(executor, work, p)\n",
    ),
    ("RPR106", "repro/experiments/gt.py", "import requests\n"),
    # RPR107: the sanctioned module, the ledger API, reads, local lists.
    (
        "RPR107",
        "repro/privacy/budget.py",
        "self.charges.append((group, eps, mech))\n",
    ),
    (
        "RPR107",
        "repro/api/gu.py",
        "self.ledger.absorb(other.ledger.charges, label=label)\n",
    ),
    (
        "RPR107",
        "repro/api/gv.py",
        "charges.append((group, eps, mech))\n",
    ),
]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "code,rel,source,count", BAD_FIXTURES, ids=[f[1] for f in BAD_FIXTURES]
    )
    def test_bad_fixture_flags(self, tmp_path, code, rel, source, count):
        result = lint_tree(tmp_path, {rel: source})
        assert codes_of(result).count(code) == count, result.diagnostics

    @pytest.mark.parametrize(
        "code,rel,source", GOOD_FIXTURES, ids=[f[1] for f in GOOD_FIXTURES]
    )
    def test_good_fixture_silent(self, tmp_path, code, rel, source):
        result = lint_tree(tmp_path, {rel: source})
        assert codes_of(result).count(code) == 0, result.diagnostics

    def test_every_rule_has_good_and_bad_fixture(self):
        bad = {f[0] for f in BAD_FIXTURES}
        good = {f[0] for f in GOOD_FIXTURES}
        assert bad == set(RULES) == good

    def test_diagnostic_positions(self, tmp_path):
        result = lint_tree(
            tmp_path, {"repro/core/pos.py": "x = 1\nimport random\n"}
        )
        (diag,) = result.diagnostics
        assert diag.line == 2
        assert diag.code == "RPR101"
        assert diag.format_text().endswith(
            f":2:0: RPR101 {diag.message}"
        )

    def test_rule_catalogue_is_documented(self):
        for code, rule in RULES.items():
            assert rule.name and rule.rationale, f"{code} lacks documentation"


class TestSuppressions:
    def test_targeted_suppression(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {"repro/core/sa.py": "import random  # repro: ignore[RPR101]\n"},
        )
        assert codes_of(result) == []
        assert [d.code for d in result.suppressed] == ["RPR101"]

    def test_blanket_suppression(self, tmp_path):
        result = lint_tree(
            tmp_path, {"repro/core/sb.py": "import random  # repro: ignore\n"}
        )
        assert codes_of(result) == []
        assert len(result.suppressed) == 1

    def test_wrong_code_does_not_suppress(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {"repro/core/sc.py": "import random  # repro: ignore[RPR105]\n"},
        )
        assert codes_of(result) == ["RPR101"]

    def test_multiple_codes(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/sd.py": (
                    "import random  # repro: ignore[RPR105, RPR101]\n"
                )
            },
        )
        assert codes_of(result) == []

    def test_suppression_is_line_scoped(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "repro/core/se.py": (
                    "import random  # repro: ignore[RPR101]\n"
                    "from random import choice\n"
                )
            },
        )
        assert codes_of(result) == ["RPR101"]


class TestBaseline:
    def _diags(self, tmp_path):
        return lint_tree(
            tmp_path,
            {
                "repro/core/ba.py": "import random\nfrom random import choice\n",
                "repro/core/bb.py": "import numba\n",
            },
        ).diagnostics

    def test_roundtrip_and_allowance(self, tmp_path):
        diags = self._diags(tmp_path)
        assert len(diags) == 3
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, diags)
        baseline = load_baseline(baseline_path)
        fresh, absorbed = apply_baseline(diags, baseline)
        assert fresh == [] and len(absorbed) == 3

    def test_allowance_is_counted(self, tmp_path):
        diags = self._diags(tmp_path)
        only_one = [d for d in diags if d.code == "RPR101"][:1]
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, only_one)
        fresh, absorbed = apply_baseline(diags, load_baseline(baseline_path))
        # One RPR101 absorbed, the second RPR101 and the RPR103 stay fresh.
        assert len(absorbed) == 1 and len(fresh) == 2

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_rejects_bad_allowance(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1, "entries": {"a.py::RPR101": 0}}))
        with pytest.raises(ValueError):
            load_baseline(path)


class TestRunner:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "0 diagnostic(s)" in capsys.readouterr().out

    def test_exit_one_on_violation(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPR101" in out and "bad.py" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing")]) == 2

    def test_syntax_error_is_reported(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert main([str(tmp_path)]) == 1
        assert SYNTAX_ERROR_CODE in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main([str(tmp_path), "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        (diag,) = payload["diagnostics"]
        assert diag["code"] == "RPR101" and diag["line"] == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_baseline_flow(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path), "--baseline", str(baseline), "--update-baseline"]) == 0
        capsys.readouterr()
        # Baselined violation no longer fails ...
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ... but a fresh one still does.
        (tmp_path / "worse.py").write_text("import numba\n")  # outside repro: fine
        (tmp_path / "repro" / "core").mkdir(parents=True)
        (tmp_path / "repro" / "core" / "worse.py").write_text("import numba\n")
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 1

    def test_update_baseline_requires_baseline(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(tmp_path), "--update-baseline"])

    def test_skips_cache_directories(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("import random\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        result = lint_paths([tmp_path])
        assert result.files_checked == 1

    def test_explicit_file_target(self, tmp_path):
        bad = tmp_path / "one.py"
        bad.write_text("import random\n")
        result = lint_paths([bad])
        assert codes_of(result) == ["RPR101"]


class TestRepoIsClean:
    """The shipped tree passes its own linter with the shipped baseline."""

    def test_src_tree_clean(self, capsys):
        assert main([str(REPO_ROOT / "src")]) == 0

    def test_shipped_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / "tools" / "lint_baseline.json")
        assert sum(baseline.values()) == 0


class TestCLIIntegration:
    def test_experiments_cli_forwards_lint(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        (tmp_path / "bad.py").write_text("import random\n")
        assert cli_main(["lint", str(tmp_path)]) == 1
        assert "RPR101" in capsys.readouterr().out
        assert cli_main(["lint", "--list-rules"]) == 0
