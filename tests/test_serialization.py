"""Serialisation round-trips for sketches and their hash substrate."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import LDPJoinSketch, SketchParams, build_sketch, encode_reports
from repro.hashing import HashPairs

from .conftest import zipf_values


class TestLDPJoinSketchSerialization:
    def _sketch(self):
        params = SketchParams(k=3, m=32, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=1)
        values = zipf_values(2_000, 64, 1.3, seed=2)
        return build_sketch(encode_reports(values, params, pairs, 3), pairs)

    def test_roundtrip_preserves_state(self):
        sketch = self._sketch()
        clone = LDPJoinSketch.from_dict(sketch.to_dict())
        assert np.array_equal(clone.counts, sketch.counts)
        assert clone.params == sketch.params
        assert clone.pairs == sketch.pairs
        assert clone.num_reports == sketch.num_reports

    def test_payload_is_json_compatible(self):
        payload = self._sketch().to_dict()
        text = json.dumps(payload)
        restored = LDPJoinSketch.from_dict(json.loads(text))
        assert restored.num_reports == self._sketch().num_reports

    def test_restored_sketch_is_joinable_with_original(self):
        params = SketchParams(k=3, m=64, epsilon=8.0)
        pairs = HashPairs(params.k, params.m, seed=4)
        a = zipf_values(5_000, 64, 1.3, seed=5)
        b = zipf_values(5_000, 64, 1.3, seed=6)
        sketch_a = build_sketch(encode_reports(a, params, pairs, 7), pairs)
        sketch_b = build_sketch(encode_reports(b, params, pairs, 8), pairs)
        direct = sketch_a.join_size(sketch_b)
        revived = LDPJoinSketch.from_dict(sketch_a.to_dict())
        assert revived.join_size(sketch_b) == pytest.approx(direct)

    def test_frequencies_survive_roundtrip(self):
        sketch = self._sketch()
        clone = LDPJoinSketch.from_dict(sketch.to_dict())
        candidates = np.arange(20)
        assert np.allclose(clone.frequencies(candidates), sketch.frequencies(candidates))
