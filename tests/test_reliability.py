"""Unit tests for the fault-tolerance layer (repro.reliability).

Covers the fault-injection harness (FaultPlan / fault_point), the retry
policy (deterministic backoff, attempt ledgers), checkpoint corruption
recovery, the partial-aggregate content checksum, degraded merges, and
the sweep pool's broken-worker recovery.  The chaos property suite lives
in ``test_reliability_chaos.py``.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.api import JoinSession, get_estimator
from repro.core import SketchParams
from repro.data.base import JoinInstance
from repro.distributed import (
    PARTIAL_VERSION,
    PartialAggregate,
    ShardCheckpoint,
    estimate_sharded,
    ingest_with_checkpoint,
    merge_sequential,
    merge_tree,
    prepare_shard_run,
)
from repro.errors import (
    CheckpointCorruptError,
    InjectedCrashError,
    InjectedFaultError,
    ParameterError,
    PartialIntegrityError,
    RetryExhaustedError,
    ShardLostError,
    SweepWorkerLostError,
)
from repro.reliability import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    active_plan,
    arm,
    attempt_scope,
    current_attempt,
    disarm,
    fault_point,
    injected,
)

from .conftest import zipf_values

DOMAIN = 64
EPSILON = 4.0


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no plan armed (process-wide state)."""
    disarm()
    yield
    disarm()


@pytest.fixture()
def instance() -> JoinInstance:
    return JoinInstance(
        name="rel-zipf",
        values_a=zipf_values(1_200, DOMAIN, 1.2, seed=31),
        values_b=zipf_values(1_200, DOMAIN, 1.1, seed=32),
        domain_size=DOMAIN,
    )


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ParameterError):
            FaultSpec(point="x", kind="meteor-strike")
        with pytest.raises(ParameterError):
            FaultSpec(point="x", times=0)
        with pytest.raises(ParameterError):
            FaultSpec(point="x", kind="latency", delay=-1.0)

    def test_fault_point_is_noop_without_plan(self):
        assert active_plan() is None
        assert fault_point("anywhere", shard=3) is None

    def test_error_spec_fires_then_dies_out_by_hit_counter(self):
        plan = arm(FaultPlan([FaultSpec(point="p", kind="error", times=2)]))
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                fault_point("p")
        assert fault_point("p") is None  # hit budget spent
        arm(plan)  # re-arming resets the counters
        with pytest.raises(InjectedFaultError):
            fault_point("p")

    def test_attempt_context_overrides_hit_counter(self):
        arm(FaultPlan([FaultSpec(point="p", kind="error", times=2)]))
        # Fires as long as attempt < times, however often it is consulted;
        # from attempt `times` on it never fires again.
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                fault_point("p", attempt=0)
        with pytest.raises(InjectedFaultError):
            fault_point("p", attempt=1)
        assert fault_point("p", attempt=2) is None
        with attempt_scope(5):
            assert current_attempt() == 5
            assert fault_point("p") is None

    def test_match_restricts_firing(self):
        arm(FaultPlan([FaultSpec(point="p", match={"shard": 2})]))
        assert fault_point("p", shard=1) is None
        with pytest.raises(InjectedFaultError) as excinfo:
            fault_point("p", shard=2)
        assert excinfo.value.point == "p"
        assert excinfo.value.context["shard"] == 2

    def test_crash_spec_raises_typed_crash(self):
        arm(FaultPlan([FaultSpec(point="p", kind="crash")]))
        with pytest.raises(InjectedCrashError):
            fault_point("p")

    def test_corruption_specs_are_returned_not_raised(self):
        spec = FaultSpec(point="write", kind="torn-write")
        arm(FaultPlan([spec]))
        assert fault_point("write") == spec
        assert fault_point("write") is None  # single hit spent

    def test_injected_scopes_and_restores(self):
        outer = FaultPlan([FaultSpec(point="o")], name="outer")
        inner = FaultPlan([FaultSpec(point="i")], name="inner")
        arm(outer)
        with injected(inner):
            assert active_plan() is inner
            with injected(None):  # None is a no-op passthrough
                assert active_plan() is inner
        assert active_plan() is outer

    def test_plan_round_trips_through_json(self, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec(point="shard.collect", kind="crash", times=2, match={"shard": 1}),
                FaultSpec(point="checkpoint.flush", kind="torn-write"),
                FaultSpec(point="p", kind="latency", delay=0.25),
            ],
            name="round-trip",
            seed=9,
            hard_crashes=True,
        )
        path = plan.save(tmp_path / "plan.json")
        loaded = FaultPlan.load(path)
        assert loaded.to_dict() == plan.to_dict()
        with pytest.raises(ParameterError):
            FaultPlan.from_dict({"format": "something-else"})
        bad_version = dict(plan.to_dict(), version=99)
        with pytest.raises(ParameterError):
            FaultPlan.from_dict(bad_version)

    def test_random_plans_are_seed_deterministic(self):
        kwargs = dict(
            points=("shard.collect", "sweep.shard"),
            num_faults=3,
            num_shards=7,
            max_times=2,
        )
        first = FaultPlan.random(123, **kwargs)
        again = FaultPlan.random(123, **kwargs)
        other = FaultPlan.random(124, **kwargs)
        assert first.to_dict() == again.to_dict()
        assert other.to_dict() != first.to_dict()

    def test_absorbable_by(self):
        plan = FaultPlan(
            [
                FaultSpec(point="p", kind="error", times=2),
                FaultSpec(point="q", kind="torn-write", times=99),  # never raises
            ]
        )
        assert not plan.absorbable_by(2)
        assert plan.absorbable_by(3)

    def test_errors_survive_pickling(self):
        # Worker exceptions cross the process-pool boundary pickled.
        for error in (
            InjectedFaultError("p", {"shard": 3}),
            InjectedCrashError("p", {}),
            CheckpointCorruptError("/tmp/x", "torn"),
            RetryExhaustedError("op", ()),
            ShardLostError("lost", lost=(1, 2)),
            SweepWorkerLostError("pool died", cells=("a/b/eps=1",)),
        ):
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error)
            assert str(clone) == str(error)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_success_passes_through(self):
        assert RetryPolicy(3).call(lambda: 42) == 42

    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(0)
        with pytest.raises(ParameterError):
            RetryPolicy(2, backoff=0.5)
        with pytest.raises(ParameterError):
            RetryPolicy(2, jitter=1.5)
        with pytest.raises(ParameterError):
            RetryPolicy(2, deadline=0)

    def test_absorbs_retryable_errors(self):
        calls = []

        def flaky():
            calls.append(len(calls))
            if len(calls) < 3:
                raise InjectedFaultError("p", {})
            return "done"

        retried = []
        result = RetryPolicy(4).call(flaky, on_retry=retried.append)
        assert result == "done"
        assert calls == [0, 1, 2]
        assert [r.attempt for r in retried] == [0, 1]
        assert all(r.error_type == "InjectedFaultError" for r in retried)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ParameterError("config, not weather")

        with pytest.raises(ParameterError):
            RetryPolicy(5).call(broken)
        assert len(calls) == 1

    def test_exhaustion_carries_the_ledger(self):
        def always_fails():
            raise InjectedFaultError("p", {"shard": 0})

        with pytest.raises(RetryExhaustedError) as excinfo:
            RetryPolicy(3).call(always_fails, operation="collect shard 0")
        error = excinfo.value
        assert error.operation == "collect shard 0"
        assert len(error.attempts) == 3
        assert [a.attempt for a in error.attempts] == [0, 1, 2]
        assert isinstance(error.__cause__, InjectedFaultError)

    def test_reset_runs_before_every_reattempt(self):
        resets = []
        attempts = []

        def flaky():
            attempts.append(current_attempt())
            if len(attempts) < 3:
                raise InjectedFaultError("p", {})
            return True

        assert RetryPolicy(3).call(flaky, reset=lambda: resets.append(len(attempts)))
        assert resets == [1, 2]  # after the 1st and 2nd failures
        assert attempts == [0, 1, 2]  # attempt_scope surrounds each try

    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(5, base_delay=0.8, backoff=2.0, max_delay=2.0, seed=3)
        assert policy.delay_for(0) == 0.0
        assert policy.delay_for(1) == 0.8
        assert policy.delay_for(2) == 1.6
        assert policy.delay_for(3) == 2.0  # capped
        twin = RetryPolicy(5, base_delay=0.8, backoff=2.0, max_delay=2.0, seed=3)
        mine = [policy._jittered(policy.delay_for(i)) for i in range(1, 5)]
        theirs = [twin._jittered(twin.delay_for(i)) for i in range(1, 5)]
        assert mine == theirs  # jitter comes from the seeded stream
        assert all(0.4 <= d <= 2.0 for d in mine)  # jitter=0.5 shaves <= half

    def test_to_dict_round_trips(self):
        policy = RetryPolicy(4, base_delay=0.1, backoff=3.0, jitter=0.2, max_delay=9.0)
        clone = RetryPolicy(**policy.to_dict())
        assert clone.to_dict() == policy.to_dict()


# ----------------------------------------------------------------------
# Checkpoint corruption -> typed error -> cold start
# ----------------------------------------------------------------------
def _cohort_fixture():
    params = SketchParams(k=3, m=32, epsilon=2.0)
    cohorts = [zipf_values(200, DOMAIN, 1.3, seed=40 + i) for i in range(4)]
    seeds = [500 + i for i in range(4)]
    return params, cohorts, seeds


def _fresh_shard(params, seed=17):
    coordinator = JoinSession(params, seed=seed)
    return coordinator.spawn_shard()


def _deterministic_counters(partial):
    """Counters minus wall-clock accounting."""
    return {k: v for k, v in partial.counters.items() if "seconds" not in k}


class TestCheckpointDurability:
    """Regression: flush must fsync the data before publishing the name.

    The original flush fsynced the temp file only when ``fsync=True``
    and never fsynced the directory — so a crash shortly after
    ``os.replace`` could surface the *new* name with torn or empty
    contents (data blocks never reached disk) or forget the rename
    entirely.  Both orderings are now load-bearing for the replication
    layer's byte-identical recovery story.
    """

    def _flush_events(self, tmp_path, monkeypatch, **kwargs):
        import os as os_module
        import stat

        from repro.distributed import checkpoint as checkpoint_module

        events = []
        real_fsync = os_module.fsync
        real_replace = os_module.replace

        def spy_fsync(fd):
            kind = "dir" if stat.S_ISDIR(os_module.fstat(fd).st_mode) else "file"
            events.append(f"fsync-{kind}")
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(checkpoint_module.os, "fsync", spy_fsync)
        monkeypatch.setattr(checkpoint_module.os, "replace", spy_replace)
        params, _, _ = _cohort_fixture()
        partial = _fresh_shard(params).to_partial()
        checkpoint = ShardCheckpoint(tmp_path / "shard-0.ckpt", **kwargs)
        checkpoint.flush(partial, cursor=1)
        assert checkpoint.load() is not None
        return events

    def test_flush_fsyncs_file_before_rename_and_directory_after(
        self, tmp_path, monkeypatch
    ):
        events = self._flush_events(tmp_path, monkeypatch)
        assert events == ["fsync-file", "replace", "fsync-dir"]

    def test_fsync_false_no_longer_weakens_the_guarantee(
        self, tmp_path, monkeypatch
    ):
        # Older call sites passing fsync=False keep working, but the
        # atomic dance is only atomic with the syncs — they stay.
        events = self._flush_events(tmp_path, monkeypatch, fsync=False)
        assert events == ["fsync-file", "replace", "fsync-dir"]


class TestCheckpointCorruption:
    def test_garbage_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text('{"format": "repro/shard-checkpoint", "ver')  # torn
        with pytest.raises(CheckpointCorruptError) as excinfo:
            ShardCheckpoint(path).load()
        assert "invalid JSON" in excinfo.value.reason
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointCorruptError):
            ShardCheckpoint(path).load()

    def test_wrong_format_is_a_config_error_not_corruption(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(ParameterError) as excinfo:
            ShardCheckpoint(path).load()
        assert not isinstance(excinfo.value, CheckpointCorruptError)

    def test_torn_write_fault_corrupts_then_cold_start_recovers(self, tmp_path):
        params, cohorts, seeds = _cohort_fixture()
        checkpoint = ShardCheckpoint(tmp_path / "shard-0.json")

        # Clean reference run, no checkpoint involved at the end state.
        clean = ingest_with_checkpoint(
            _fresh_shard(params), "A", cohorts, seeds, ShardCheckpoint(tmp_path / "c.json")
        )

        # Tear the *last* flush, then reload: the file is corrupt.
        tear = FaultPlan(
            [FaultSpec(point="checkpoint.flush", kind="torn-write", match={"cursor": 4})]
        )
        with injected(tear):
            ingest_with_checkpoint(_fresh_shard(params), "A", cohorts, seeds, checkpoint)
        with pytest.raises(CheckpointCorruptError):
            checkpoint.load()

        # The restarted aggregator downgrades to a cold start: the final
        # partial is byte-identical to the clean run, and the recovery is
        # recorded in its meta.
        recovered = ingest_with_checkpoint(
            _fresh_shard(params), "A", cohorts, seeds, checkpoint
        )
        for key in clean.arrays:
            np.testing.assert_array_equal(recovered.arrays[key], clean.arrays[key])
        assert _deterministic_counters(recovered) == _deterministic_counters(clean)
        note = recovered.meta["checkpoint_recovery"][str(checkpoint.path)]
        assert note["cold_start"] is True
        assert note["cohorts_replayed"] == len(cohorts)
        assert "invalid JSON" in note["reason"]

    def test_warm_resume_is_byte_identical(self, tmp_path):
        params, cohorts, seeds = _cohort_fixture()
        checkpoint = ShardCheckpoint(tmp_path / "shard-0.json")
        clean = ingest_with_checkpoint(
            _fresh_shard(params), "A", cohorts, seeds, ShardCheckpoint(tmp_path / "c.json")
        )
        # Die after cohort 2 (fault on the third ingest), then restart.
        crash = FaultPlan([FaultSpec(point="checkpoint.ingest", match={"cohort": 2})])
        with injected(crash):
            with pytest.raises(InjectedFaultError):
                ingest_with_checkpoint(
                    _fresh_shard(params), "A", cohorts, seeds, checkpoint
                )
        _, cursor = checkpoint.load()
        assert cursor == 2
        resumed = ingest_with_checkpoint(
            _fresh_shard(params), "A", cohorts, seeds, checkpoint
        )
        for key in clean.arrays:
            np.testing.assert_array_equal(resumed.arrays[key], clean.arrays[key])
        assert _deterministic_counters(resumed) == _deterministic_counters(clean)
        assert "checkpoint_recovery" not in resumed.meta


# ----------------------------------------------------------------------
# PartialAggregate content checksum
# ----------------------------------------------------------------------
def _small_partial():
    params = SketchParams(k=3, m=16, epsilon=2.0)
    shard = _fresh_shard(params)
    shard.collect("A", zipf_values(300, DOMAIN, 1.3, seed=50), seed=51)
    return shard.to_partial()


class TestPartialChecksum:
    def test_round_trip_verifies(self):
        partial = _small_partial()
        payload = partial.to_dict()
        assert payload["version"] == PARTIAL_VERSION
        assert isinstance(payload["checksum"], int)
        clone = type(partial).from_dict(payload)
        for key in partial.arrays:
            np.testing.assert_array_equal(clone.arrays[key], partial.arrays[key])

    def test_bit_flip_is_rejected(self):
        partial = _small_partial()
        payload = json.loads(json.dumps(partial.to_dict()))
        name = sorted(payload["arrays"])[0]
        data = payload["arrays"][name]["data"]["data"]
        flipped = ("A" if data[0] != "A" else "B") + data[1:]
        payload["arrays"][name]["data"]["data"] = flipped
        with pytest.raises(PartialIntegrityError):
            type(partial).from_dict(payload)

    def test_truncation_is_rejected(self):
        partial = _small_partial()
        payload = json.loads(json.dumps(partial.to_dict()))
        name = sorted(payload["arrays"])[0]
        entry = payload["arrays"][name]["data"]
        entry["data"] = entry["data"][:-8]
        with pytest.raises(PartialIntegrityError):
            type(partial).from_dict(payload)

    def test_version_1_payload_still_loads(self):
        partial = _small_partial()
        payload = json.loads(json.dumps(partial.to_dict()))
        payload["version"] = 1
        del payload["checksum"]  # v1 payloads predate the checksum
        clone = type(partial).from_dict(payload)
        for key in partial.arrays:
            np.testing.assert_array_equal(clone.arrays[key], partial.arrays[key])

    def test_future_version_is_rejected(self):
        payload = _small_partial().to_dict()
        payload["version"] = PARTIAL_VERSION + 1
        with pytest.raises(ParameterError):
            PartialAggregate.from_dict(payload)


# ----------------------------------------------------------------------
# Retry + degradation on sharded estimation
# ----------------------------------------------------------------------
class TestShardedFaultTolerance:
    def test_absorbable_faults_are_byte_invisible(self, instance):
        estimator = get_estimator("ldp-join-sketch", k=3, m=32)
        baseline = estimate_sharded(
            estimator, instance, EPSILON, num_shards=3, seed=77, merge="tree"
        )
        plan = FaultPlan(
            [FaultSpec(point="shard.collect", kind="error", times=2, match={"shard": 1})]
        )
        retried = estimate_sharded(
            estimator,
            instance,
            EPSILON,
            num_shards=3,
            seed=77,
            merge="tree",
            retries=3,
            fault_plan=plan,
        )
        assert retried.estimate == baseline.estimate
        assert retried.uplink_bits == baseline.uplink_bits

    def test_unabsorbable_fault_without_degraded_raises(self, instance):
        estimator = get_estimator("ldp-join-sketch", k=3, m=32)
        plan = FaultPlan(
            [FaultSpec(point="shard.collect", kind="error", times=9, match={"shard": 1})]
        )
        with pytest.raises(RetryExhaustedError):
            estimate_sharded(
                estimator,
                instance,
                EPSILON,
                num_shards=3,
                seed=77,
                retries=2,
                fault_plan=plan,
            )

    def test_degraded_merge_rescales_and_records_loss(self, instance):
        estimator = get_estimator("ldp-join-sketch", k=3, m=32)
        plan = FaultPlan(
            [FaultSpec(point="shard.collect", kind="error", times=9, match={"shard": 2})]
        )
        result = estimate_sharded(
            estimator,
            instance,
            EPSILON,
            num_shards=3,
            seed=77,
            retries=2,
            fault_plan=plan,
            degraded=True,
        )
        ledger = result.extras["degraded"]
        assert ledger["shards_lost"] == [2]
        assert 0.0 < ledger["coverage"]["A"] < 1.0
        assert 0.0 < ledger["coverage"]["B"] < 1.0
        assert ledger["rescale"] > 1.0
        assert ledger["bound_factor"] >= 1.0
        assert np.isfinite(result.estimate)

    def test_all_shards_lost_raises_even_degraded(self, instance):
        estimator = get_estimator("krr")
        plan = FaultPlan([FaultSpec(point="shard.collect", kind="error", times=9)])
        with pytest.raises(ShardLostError) as excinfo:
            estimate_sharded(
                estimator,
                instance,
                EPSILON,
                num_shards=2,
                seed=5,
                retries=1,
                fault_plan=plan,
                degraded=True,
            )
        assert excinfo.value.lost == (0, 1)

    def test_merge_refuses_missing_partials_outside_degraded(self, instance):
        estimator = get_estimator("ldp-join-sketch", k=3, m=32)
        run = prepare_shard_run(estimator, instance, EPSILON, num_shards=3, seed=7)
        partials = run.collect_all()
        partials[1] = None
        with pytest.raises(ShardLostError) as excinfo:
            merge_tree(partials)
        assert excinfo.value.lost == (1,)
        with pytest.raises(ShardLostError):
            merge_sequential(partials)
        survivors = merge_tree(partials, degraded=True)
        assert survivors is not None


# ----------------------------------------------------------------------
# Sweep pool recovery
# ----------------------------------------------------------------------
def _sweep_plan(instance):
    from repro.experiments.sweep import plan_grid

    return plan_grid(
        [instance.name],
        {"LDPJoinSketch": get_estimator("ldp-join-sketch", k=3, m=32)},
        [2.0],
        2,
        seed=55,
        shards=2,
        instances={instance.name: instance},
    )


class TestSweepFaultRecovery:
    def test_worker_task_faults_are_absorbed_byte_identically(self, instance):
        from repro.experiments.sweep import run_sweep

        baseline = [
            [r.estimate for r in block]
            for block in run_sweep(_sweep_plan(instance), workers=1)
        ]
        plan = FaultPlan(
            [FaultSpec(point="sweep.shard", kind="error", times=1, match={"shard": 1})]
        )
        for workers in (1, 2):
            got = [
                [r.estimate for r in block]
                for block in run_sweep(
                    _sweep_plan(instance), workers=workers, retries=3, fault_plan=plan
                )
            ]
            assert got == baseline, f"workers={workers}"

    def test_worker_death_recovers_byte_identically(self, instance):
        from repro.experiments.sweep import run_sweep

        baseline = [
            [r.estimate for r in block]
            for block in run_sweep(_sweep_plan(instance), workers=1)
        ]
        death = FaultPlan(
            [FaultSpec(point="sweep.shard", kind="crash", times=1, match={"shard": 0})],
            hard_crashes=True,  # os._exit in the worker: a real BrokenProcessPool
        )
        got = [
            [r.estimate for r in block]
            for block in run_sweep(
                _sweep_plan(instance), workers=2, retries=3, fault_plan=death
            )
        ]
        assert got == baseline

    def test_exhausted_budget_names_the_lost_cells(self, instance):
        from repro.experiments.sweep import run_sweep

        plan = FaultPlan(
            [FaultSpec(point="sweep.shard", kind="error", times=9, match={"shard": 0})]
        )
        with pytest.raises(SweepWorkerLostError) as excinfo:
            run_sweep(_sweep_plan(instance), workers=2, retries=2, fault_plan=plan)
        assert excinfo.value.cells
        assert any("shard0" in cell for cell in excinfo.value.cells)


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestReliabilityCLI:
    def test_sweep_parser_accepts_reliability_flags(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "--retries", "3", "--fault-plan", "plan.json"]
        )
        assert args.retries == 3
        assert str(args.fault_plan) == "plan.json"

    def test_shard_run_with_fault_plan_and_retries(self, tmp_path, capsys):
        from repro.experiments.cli import main

        plan = FaultPlan(
            [FaultSpec(point="shard.collect", kind="error", times=1, match={"shard": 1})]
        )
        path = plan.save(tmp_path / "plan.json")
        code = main(
            [
                "shard",
                "run",
                "--dataset",
                "zipf-1.1",
                "--method",
                "ldp-join-sketch",
                "--shards",
                "3",
                "--scale",
                "0.0005",
                "--k",
                "3",
                "--m",
                "32",
                "--retries",
                "3",
                "--fault-plan",
                str(path),
            ]
        )
        assert code == 0  # absorbed faults keep tree == sequential
        assert "tree-merged == single-aggregator: True" in capsys.readouterr().out

    def test_shard_run_degraded_reports_loss(self, tmp_path, capsys):
        from repro.experiments.cli import main

        plan = FaultPlan(
            [FaultSpec(point="shard.collect", kind="error", times=9, match={"shard": 2})]
        )
        path = plan.save(tmp_path / "plan.json")
        code = main(
            [
                "shard",
                "run",
                "--dataset",
                "zipf-1.1",
                "--method",
                "ldp-join-sketch",
                "--shards",
                "3",
                "--scale",
                "0.0005",
                "--k",
                "3",
                "--m",
                "32",
                "--retries",
                "2",
                "--fault-plan",
                str(path),
                "--degraded",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded: lost shard(s) [2]" in out
