"""Exact LDP audits of the paper's client algorithms (Theorems 1 and 6).

For small ``(k, m)`` the output space of Algorithm 1 and Algorithm 4 is
finite, and their output distributions have closed forms:

* Algorithm 1 (target encoding):
  ``Pr[(y, j, l) | d] = (1/(km)) * (p if y == H[h_j(d), l] * xi_j(d) else q)``;
* Algorithm 4 non-target encoding:
  ``Pr[(y, j, l) | d] = (1/(km)) * mean_r (p if y == H[r, l] else q)``.

These tests (a) verify the implementations *follow* the closed forms by
comparing empirical frequencies against them, then (b) enumerate the
closed forms over all inputs and outputs and assert the e^eps dominance
bound exactly — turning the privacy theorems into regression tests.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np
import pytest

from repro.core import SketchParams, encode_report, fap_encode_report
from repro.core.fap import MODE_HIGH, MODE_LOW
from repro.hashing import HashPairs
from repro.privacy import keep_probability, verify_ldp
from repro.transform import hadamard_matrix

PARAMS = SketchParams(k=2, m=4, epsilon=1.5)
PAIRS = HashPairs(PARAMS.k, PARAMS.m, seed=99)
H = hadamard_matrix(PARAMS.m)
P_KEEP = keep_probability(PARAMS.epsilon)
P_FLIP = 1.0 - P_KEEP

Output = Tuple[int, int, int]


def algorithm1_distribution(d: int) -> Dict[Output, float]:
    """Closed-form output distribution of Algorithm 1 for input ``d``."""
    dist: Dict[Output, float] = {}
    for j in range(PARAMS.k):
        bucket = PAIRS.bucket(j, np.array([d]))[0]
        sign = PAIRS.sign(j, np.array([d]))[0]
        for l in range(PARAMS.m):
            w = sign * H[bucket, l]
            base = 1.0 / (PARAMS.k * PARAMS.m)
            dist[(int(w), j, l)] = dist.get((int(w), j, l), 0.0) + base * P_KEEP
            dist[(int(-w), j, l)] = dist.get((int(-w), j, l), 0.0) + base * P_FLIP
    return dist


def fap_nontarget_distribution(d: int) -> Dict[Output, float]:
    """Closed-form FAP non-target distribution (input-independent)."""
    dist: Dict[Output, float] = {}
    for j in range(PARAMS.k):
        for l in range(PARAMS.m):
            base = 1.0 / (PARAMS.k * PARAMS.m)
            for r in range(PARAMS.m):
                w = int(H[r, l])
                dist[(w, j, l)] = dist.get((w, j, l), 0.0) + base * P_KEEP / PARAMS.m
                dist[(-w, j, l)] = dist.get((-w, j, l), 0.0) + base * P_FLIP / PARAMS.m
    return dist


def fap_distribution(mode: str, frequent_items: Tuple[int, ...]):
    """Closed-form Algorithm 4 distribution for a given mode and FI set."""

    def dist(d: int) -> Dict[Output, float]:
        non_target = (mode == MODE_HIGH) == (d not in frequent_items)
        if non_target:
            return fap_nontarget_distribution(d)
        return algorithm1_distribution(d)

    return dist


def empirical_distribution(sampler, runs: int) -> Dict[Output, float]:
    counts: Dict[Output, int] = {}
    rng = np.random.default_rng(123)
    for _ in range(runs):
        out = sampler(rng)
        counts[out] = counts.get(out, 0) + 1
    return {key: value / runs for key, value in counts.items()}


class TestAlgorithm1Audit:
    def test_analytic_distribution_normalises(self):
        for d in range(6):
            assert sum(algorithm1_distribution(d).values()) == pytest.approx(1.0)

    def test_implementation_matches_analytic_distribution(self):
        d, runs = 3, 120_000
        analytic = algorithm1_distribution(d)
        empirical = empirical_distribution(
            lambda rng: encode_report(d, PARAMS, PAIRS, rng), runs
        )
        for output, prob in analytic.items():
            observed = empirical.get(output, 0.0)
            sd = math.sqrt(prob * (1 - prob) / runs)
            assert abs(observed - prob) < 6 * sd + 1e-4

    def test_theorem1_exact_epsilon_ldp(self):
        """Theorem 1: Algorithm 1 satisfies eps-LDP, tightly."""
        ok, ratio = verify_ldp(algorithm1_distribution, list(range(12)), PARAMS.epsilon)
        assert ok
        # The sign channel makes the bound tight: ratio == e^eps exactly.
        assert ratio == pytest.approx(math.exp(PARAMS.epsilon))

    def test_weaker_epsilon_fails(self):
        ok, _ = verify_ldp(algorithm1_distribution, list(range(12)), PARAMS.epsilon / 2)
        assert not ok


class TestFAPAudit:
    def test_nontarget_distribution_is_input_independent(self):
        base = fap_nontarget_distribution(0)
        for d in range(1, 8):
            other = fap_nontarget_distribution(d)
            assert base == other

    def test_implementation_matches_analytic_nontarget(self):
        # mode=H with FI empty -> every value is non-target.
        d, runs = 5, 120_000
        analytic = fap_nontarget_distribution(d)
        empirical = empirical_distribution(
            lambda rng: fap_encode_report(d, MODE_HIGH, PARAMS, PAIRS, [], rng), runs
        )
        for output, prob in analytic.items():
            observed = empirical.get(output, 0.0)
            sd = math.sqrt(prob * (1 - prob) / runs)
            assert abs(observed - prob) < 6 * sd + 1e-4

    @pytest.mark.parametrize("mode", [MODE_HIGH, MODE_LOW])
    def test_theorem6_mixed_inputs_epsilon_ldp(self, mode):
        """Theorem 6: outputs of target and non-target inputs are mutually
        e^eps-indistinguishable."""
        frequent_items = (0, 1, 2)
        inputs = list(range(8))  # values 0-2 frequent, 3-7 not
        dist = fap_distribution(mode, frequent_items)
        ok, ratio = verify_ldp(dist, inputs, PARAMS.epsilon)
        assert ok
        assert ratio <= math.exp(PARAMS.epsilon) * (1 + 1e-9)

    def test_target_branch_equals_algorithm1(self):
        # mode=L with FI empty -> every value is a target; same closed form.
        dist = fap_distribution(MODE_LOW, ())
        for d in range(4):
            assert dist(d) == algorithm1_distribution(d)


class TestHCMSAudit:
    def test_hcms_client_epsilon_ldp(self):
        """Apple-HCMS client: same channel, unsigned encoding."""

        def dist(d: int) -> Dict[Output, float]:
            out: Dict[Output, float] = {}
            for j in range(PARAMS.k):
                bucket = PAIRS.bucket(j, np.array([d]))[0]
                for l in range(PARAMS.m):
                    w = int(H[bucket, l])
                    base = 1.0 / (PARAMS.k * PARAMS.m)
                    out[(w, j, l)] = out.get((w, j, l), 0.0) + base * P_KEEP
                    out[(-w, j, l)] = out.get((-w, j, l), 0.0) + base * P_FLIP
            return out

        ok, ratio = verify_ldp(dist, list(range(10)), PARAMS.epsilon)
        assert ok
        assert ratio == pytest.approx(math.exp(PARAMS.epsilon))


class TestCompositionOfPlusProtocol:
    def test_groups_are_disjoint_so_budget_is_epsilon(self):
        """LDPJoinSketch+ charges each user exactly once (Section V-A)."""
        from repro.core import run_ldp_join_sketch_plus

        rng = np.random.default_rng(7)
        values = rng.integers(0, 64, size=2_000)
        result = run_ldp_join_sketch_plus(
            values, values, 64, SketchParams(2, 16, 2.0), seed=8
        )
        assert result.ledger.worst_case_epsilon() == pytest.approx(2.0)
        # Six disjoint groups, each charged once.
        assert len(result.ledger.charges) == 6
