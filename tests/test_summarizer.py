"""Smoke tests for the EXPERIMENTS.md results summariser."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "summarize_results.py"


@pytest.fixture(scope="module")
def summarizer():
    spec = importlib.util.spec_from_file_location("summarize_results", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSummarizer:
    def test_fmt(self, summarizer):
        assert summarizer.fmt(0) == "0"
        assert summarizer.fmt(1234) == "1234"
        assert "e" in summarizer.fmt(1.5e9)

    def test_num_detection(self, summarizer):
        assert summarizer._num("1.5")
        assert not summarizer._num("LDPJoinSketch")

    def test_build_includes_available_sections(self, summarizer):
        body = summarizer.build()
        # At minimum the sections whose CSVs the benchmark suite has
        # produced must render; fig5 runs first, so it is always present
        # once any benchmark ran.
        if (SCRIPT.parent / "results" / "fig5.csv").exists():
            assert "Fig. 5" in body
            assert "LDPJoinSketch" in body

    def test_series_table_shape(self, summarizer):
        rows = [
            {"epsilon": "1.0", "ae": "10", "method": "A"},
            {"epsilon": "1.0", "ae": "20", "method": "B"},
            {"epsilon": "2.0", "ae": "5", "method": "A"},
        ]
        table = summarizer.series_table(rows, "epsilon", "ae", ["A", "B"])
        lines = table.splitlines()
        assert lines[0].startswith("| epsilon | A | B |")
        assert "| 1 | 10 | 20 |" in table
        assert "| 2 | 5 | - |" in table
