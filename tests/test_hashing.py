"""Unit + property + statistical tests for :mod:`repro.hashing`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DomainError, ParameterError
from repro.hashing import MERSENNE_PRIME_31, HashPairs, KWiseHash, SignHash

values_strategy = st.integers(min_value=0, max_value=MERSENNE_PRIME_31 - 1)


class TestKWiseHash:
    def test_deterministic_given_seed(self):
        h1 = KWiseHash(4, seed=42)
        h2 = KWiseHash(4, seed=42)
        x = np.arange(1000)
        assert np.array_equal(h1(x), h2(x))

    def test_different_seeds_differ(self):
        x = np.arange(1000)
        assert not np.array_equal(KWiseHash(4, seed=1)(x), KWiseHash(4, seed=2)(x))

    def test_scalar_matches_batch(self):
        h = KWiseHash(4, seed=3)
        batch = h(np.arange(50))
        for i in range(50):
            assert h(i) == batch[i]

    def test_scalar_returns_int(self):
        assert isinstance(KWiseHash(2, seed=1)(5), int)

    def test_output_range(self):
        h = KWiseHash(4, seed=4)
        out = h(np.arange(10_000))
        assert out.min() >= 0 and out.max() < MERSENNE_PRIME_31

    def test_rejects_out_of_field_inputs(self):
        h = KWiseHash(2, seed=5)
        with pytest.raises(DomainError):
            h(np.array([MERSENNE_PRIME_31]))
        with pytest.raises(DomainError):
            h(np.array([-1]))

    def test_explicit_coefficients(self):
        # g(x) = (3 + 2x) mod p
        h = KWiseHash(2, coefficients=[3, 2])
        assert h(0) == 3
        assert h(10) == 23

    def test_explicit_coefficients_validation(self):
        with pytest.raises(ParameterError, match="coefficients"):
            KWiseHash(3, coefficients=[1, 2])  # wrong count
        with pytest.raises(ParameterError, match="leading"):
            KWiseHash(2, coefficients=[1, 0])  # degenerate degree
        with pytest.raises(ParameterError):
            KWiseHash(2, coefficients=[1, MERSENNE_PRIME_31])  # out of field

    def test_serialisation_roundtrip(self):
        h = KWiseHash(4, seed=6)
        clone = KWiseHash.from_dict(h.to_dict())
        assert clone == h
        x = np.arange(100)
        assert np.array_equal(h(x), clone(x))

    def test_equality_and_hash(self):
        h1 = KWiseHash(2, coefficients=[1, 2])
        h2 = KWiseHash(2, coefficients=[1, 2])
        h3 = KWiseHash(2, coefficients=[1, 3])
        assert h1 == h2 and hash(h1) == hash(h2)
        assert h1 != h3

    def test_bucket_range(self):
        h = KWiseHash(2, seed=7)
        out = h.bucket(np.arange(10_000), 37)
        assert out.min() >= 0 and out.max() < 37

    def test_bucket_scalar(self):
        h = KWiseHash(2, seed=8)
        assert h.bucket(123, 16) == h.bucket(np.array([123]), 16)[0]

    def test_horner_exactness_against_python_ints(self):
        # uint64 modular Horner must agree with arbitrary-precision math.
        h = KWiseHash(4, seed=9)
        coeffs = [int(c) for c in h.coefficients]
        for x in [0, 1, 12345, MERSENNE_PRIME_31 - 1]:
            expected = sum(c * x**t for t, c in enumerate(coeffs)) % MERSENNE_PRIME_31
            assert h(x) == expected

    @given(values_strategy, st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=100, deadline=None)
    def test_property_batch_scalar_agreement(self, value, seed):
        h = KWiseHash(4, seed=seed)
        assert h(value) == h(np.array([value]))[0]

    def test_pairwise_uniformity_statistical(self):
        # Bucket counts over a modest domain should look uniform.
        h = KWiseHash(2, seed=10)
        buckets = h.bucket(np.arange(100_000), 16)
        counts = np.bincount(buckets, minlength=16)
        expected = 100_000 / 16
        chi2 = float(np.sum((counts - expected) ** 2 / expected))
        # 15 dof; P(chi2 > 45) < 1e-4 for a uniform sample.
        assert chi2 < 45


class TestSignHash:
    def test_outputs_are_signs(self):
        s = SignHash(seed=11)
        out = s(np.arange(10_000))
        assert set(np.unique(out)) <= {-1, 1}

    def test_scalar_returns_int(self):
        out = SignHash(seed=12)(3)
        assert out in (-1, 1) and isinstance(out, int)

    def test_deterministic(self):
        x = np.arange(100)
        assert np.array_equal(SignHash(seed=13)(x), SignHash(seed=13)(x))

    def test_balance_statistical(self):
        out = SignHash(seed=14)(np.arange(100_000))
        # Mean of 1e5 fair signs has sd ~ 0.0032; allow 5 sd.
        assert abs(float(np.mean(out))) < 0.016

    def test_fourwise_cancellation_statistical(self):
        # E[xi(a) xi(b)] = 0 for a != b: empirical mean over many pairs.
        rng = np.random.default_rng(15)
        means = []
        for seed in range(200):
            s = SignHash(seed=seed)
            a, b = rng.integers(0, 10_000, size=2)
            if a == b:
                continue
            means.append(s(int(a)) * s(int(b)))
        assert abs(float(np.mean(means))) < 0.2

    def test_serialisation_roundtrip(self):
        s = SignHash(seed=16)
        clone = SignHash.from_dict(s.to_dict())
        assert clone == s
        assert np.array_equal(s(np.arange(64)), clone(np.arange(64)))


class TestHashPairs:
    def test_shapes(self):
        pairs = HashPairs(4, 32, seed=17)
        assert pairs.k == 4 and pairs.m == 32
        assert len(pairs.bucket_hashes) == 4 and len(pairs.sign_hashes) == 4

    def test_bucket_range(self):
        pairs = HashPairs(3, 16, seed=18)
        out = pairs.bucket_all(np.arange(1000))
        assert out.shape == (3, 1000)
        assert out.min() >= 0 and out.max() < 16

    def test_sign_all_values(self):
        pairs = HashPairs(3, 16, seed=19)
        out = pairs.sign_all(np.arange(1000))
        assert set(np.unique(out)) <= {-1, 1}

    def test_rows_variants_match_all(self):
        pairs = HashPairs(4, 32, seed=20)
        rng = np.random.default_rng(21)
        values = rng.integers(0, 1000, size=500)
        rows = rng.integers(0, 4, size=500)
        bucket_all = pairs.bucket_all(values)
        sign_all = pairs.sign_all(values)
        assert np.array_equal(
            pairs.bucket_rows(rows, values), bucket_all[rows, np.arange(500)]
        )
        assert np.array_equal(
            pairs.sign_rows(rows, values), sign_all[rows, np.arange(500)]
        )

    def test_row_out_of_range(self):
        pairs = HashPairs(2, 8, seed=22)
        with pytest.raises(ParameterError):
            pairs.bucket(2, np.array([1]))
        with pytest.raises(ParameterError):
            pairs.sign(-1, np.array([1]))

    def test_shape_mismatch_rejected(self):
        pairs = HashPairs(2, 8, seed=23)
        with pytest.raises(ParameterError, match="same shape"):
            pairs.bucket_rows(np.zeros(2, dtype=int), np.zeros(3, dtype=int))

    def test_serialisation_roundtrip(self):
        pairs = HashPairs(3, 16, seed=24)
        clone = HashPairs.from_dict(pairs.to_dict())
        assert clone == pairs
        values = np.arange(200)
        assert np.array_equal(pairs.bucket_all(values), clone.bucket_all(values))
        assert np.array_equal(pairs.sign_all(values), clone.sign_all(values))

    def test_equality_semantics(self):
        p1 = HashPairs(2, 8, seed=25)
        p2 = HashPairs.from_dict(p1.to_dict())
        p3 = HashPairs(2, 8, seed=26)
        assert p1 == p2
        assert p1 != p3

    def test_mixed_constructor_args_rejected(self):
        p = HashPairs(2, 8, seed=27)
        with pytest.raises(ParameterError, match="together"):
            HashPairs(2, 8, bucket_hashes=p.bucket_hashes, sign_hashes=None)

    def test_wrong_hash_count_rejected(self):
        p = HashPairs(3, 8, seed=28)
        with pytest.raises(ParameterError, match="expected 2"):
            HashPairs(2, 8, bucket_hashes=p.bucket_hashes, sign_hashes=p.sign_hashes)
