"""Tests for Frequency-Aware Perturbation (Algorithm 4) and Theorem 8."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchParams, build_sketch, encode_reports, fap_encode_reports
from repro.core.fap import MODE_HIGH, MODE_LOW, fap_encode_report
from repro.errors import ParameterError
from repro.hashing import HashPairs

from .conftest import zipf_values


class TestModeLogic:
    """Line 1 of Algorithm 4: non-target iff (mode == H) == (d not in FI)."""

    def test_mode_low_with_empty_fi_equals_algorithm1(self, small_params, small_pairs):
        # Every value is a target, and the batched code paths draw the RNG
        # in the same order, so outputs are bit-identical under one seed.
        values = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        plain = encode_reports(values, small_params, small_pairs, np.random.default_rng(1))
        fap = fap_encode_reports(
            values, MODE_LOW, small_params, small_pairs, [], np.random.default_rng(1)
        )
        assert np.array_equal(plain.ys, fap.ys)
        assert np.array_equal(plain.rows, fap.rows)
        assert np.array_equal(plain.cols, fap.cols)

    def test_mode_high_with_full_fi_equals_algorithm1(self, small_params, small_pairs):
        values = np.array([3, 1, 4, 1, 5])
        fi = np.arange(16)
        plain = encode_reports(values, small_params, small_pairs, np.random.default_rng(2))
        fap = fap_encode_reports(
            values, MODE_HIGH, small_params, small_pairs, fi, np.random.default_rng(2)
        )
        assert np.array_equal(plain.ys, fap.ys)

    def test_nontarget_output_independent_of_value(self, small_params, small_pairs):
        # mode=H, FI empty: everything is non-target; two different value
        # arrays must produce identical reports under the same seed.
        values_a = np.zeros(100, dtype=np.int64)
        values_b = np.arange(100) % 13
        out_a = fap_encode_reports(
            values_a, MODE_HIGH, small_params, small_pairs, [], np.random.default_rng(3)
        )
        out_b = fap_encode_reports(
            values_b, MODE_HIGH, small_params, small_pairs, [], np.random.default_rng(3)
        )
        assert np.array_equal(out_a.ys, out_b.ys)
        assert np.array_equal(out_a.rows, out_b.rows)
        assert np.array_equal(out_a.cols, out_b.cols)

    def test_mode_validation(self, small_params, small_pairs):
        with pytest.raises(ParameterError, match="mode"):
            fap_encode_reports([1], "X", small_params, small_pairs, [])
        with pytest.raises(ParameterError, match="mode"):
            fap_encode_report(1, "X", small_params, small_pairs, [])

    def test_pairs_shape_validated(self, small_params):
        wrong = HashPairs(small_params.k + 1, small_params.m, 4)
        with pytest.raises(ParameterError, match="do not match"):
            fap_encode_reports([1], MODE_LOW, small_params, wrong, [])

    def test_scalar_output_ranges(self, small_params, small_pairs):
        rng = np.random.default_rng(5)
        for d in range(10):
            for mode in (MODE_HIGH, MODE_LOW):
                y, j, l = fap_encode_report(d, mode, small_params, small_pairs, [2, 3], rng)
                assert y in (-1, 1)
                assert 0 <= j < small_params.k
                assert 0 <= l < small_params.m


class TestTheorem8:
    """Non-target values contribute |NT| / m to every counter in expectation."""

    def test_nontarget_mass_spreads_uniformly(self):
        params = SketchParams(k=2, m=16, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=6)
        n = 20_000
        values = zipf_values(n, 50, 1.3, seed=7)  # all non-target (FI empty, mode H)
        total = np.zeros((params.k, params.m))
        runs = 30
        rng = np.random.default_rng(8)
        for _ in range(runs):
            reports = fap_encode_reports(values, MODE_HIGH, params, pairs, [], rng)
            total += build_sketch(reports, pairs).counts
        mean_counts = total / runs
        expected = n / params.m
        # Per-cell sd ~ sqrt(k c^2 n) / sqrt(runs) ~ 38; allow 6 sd.
        assert np.all(np.abs(mean_counts - expected) < 6 * 40)

    def test_nontarget_mass_invisible_to_sign_readout(self):
        # Frequency estimates multiply by xi, so uniform non-target mass
        # cancels: estimates should be near zero, not near the counts.
        params = SketchParams(k=3, m=32, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=9)
        values = np.full(30_000, 7, dtype=np.int64)
        rng = np.random.default_rng(10)
        reports = fap_encode_reports(values, MODE_HIGH, params, pairs, [], rng)
        sketch = build_sketch(reports, pairs)
        # Raw counter at (j, h_j(7)) holds ~ n/m mass ...
        assert sketch.counts.mean() == pytest.approx(30_000 / 32, rel=0.2)
        # ... but the signed frequency estimate of 7 stays near zero.
        assert abs(sketch.frequency(7)) < 3_000


class TestMixedBatches:
    def test_target_and_nontarget_separation(self):
        """mode=H: FI values keep their identity, others melt into noise."""
        params = SketchParams(k=3, m=64, epsilon=6.0)
        pairs = HashPairs(params.k, params.m, seed=11)
        heavy, light = 5, 23
        values = np.concatenate(
            [np.full(8_000, heavy, dtype=np.int64), np.full(8_000, light, dtype=np.int64)]
        )
        rng = np.random.default_rng(12)
        reports = fap_encode_reports(values, MODE_HIGH, params, pairs, [heavy], rng)
        sketch = build_sketch(reports, pairs)
        # Target keeps its frequency (up to sketch noise) ...
        assert sketch.frequency(heavy) == pytest.approx(8_000, rel=0.25)
        # ... non-target's frequency signal is destroyed.
        assert abs(sketch.frequency(light)) < 2_000

    def test_mode_low_flips_roles(self):
        params = SketchParams(k=3, m=64, epsilon=6.0)
        pairs = HashPairs(params.k, params.m, seed=13)
        heavy, light = 5, 23
        values = np.concatenate(
            [np.full(8_000, heavy, dtype=np.int64), np.full(8_000, light, dtype=np.int64)]
        )
        rng = np.random.default_rng(14)
        reports = fap_encode_reports(values, MODE_LOW, params, pairs, [heavy], rng)
        sketch = build_sketch(reports, pairs)
        assert sketch.frequency(light) == pytest.approx(8_000, rel=0.25)
        assert abs(sketch.frequency(heavy)) < 2_000

    def test_fi_accepts_any_integer_iterable(self, small_params, small_pairs):
        out1 = fap_encode_reports(
            [1, 2], MODE_HIGH, small_params, small_pairs, [2, 2, 1], np.random.default_rng(15)
        )
        out2 = fap_encode_reports(
            [1, 2],
            MODE_HIGH,
            small_params,
            small_pairs,
            np.array([1, 2]),
            np.random.default_rng(15),
        )
        assert np.array_equal(out1.ys, out2.ys)
