"""Tests for the LDPJoinSketch server (Algorithm 2) and its estimators.

The statistical tests here are the executable versions of the paper's
Theorems 2, 3 and 7 — expectations checked by Monte Carlo with fixed seeds
and >= 4-sigma tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LDPJoinSketch, SketchParams, build_sketch, encode_reports
from repro.errors import IncompatibleSketchError, ParameterError
from repro.hashing import HashPairs
from repro.join import exact_join_size
from repro.sketches import FastAGMSSketch
from repro.transform import hadamard_matrix

from .conftest import zipf_values


class TestConstruction:
    def test_matches_literal_algorithm2(self, small_params, small_pairs):
        """build_sketch == accumulate(k c_eps y at [j,l]) then M @ H^T."""
        values = np.arange(20) % 11
        reports = encode_reports(values, small_params, small_pairs, 1)
        sketch = build_sketch(reports, small_pairs)

        raw = np.zeros((small_params.k, small_params.m))
        for y, j, l in zip(reports.ys, reports.rows, reports.cols):
            raw[j, l] += small_params.k * small_params.c_epsilon * y
        expected = raw @ hadamard_matrix(small_params.m).T
        assert np.allclose(sketch.counts, expected)

    def test_num_reports_recorded(self, small_params, small_pairs):
        reports = encode_reports(np.arange(17), small_params, small_pairs, 2)
        assert build_sketch(reports, small_pairs).num_reports == 17

    def test_empty_reports(self, small_params, small_pairs):
        reports = encode_reports([], small_params, small_pairs)
        sketch = build_sketch(reports, small_pairs)
        assert not sketch.counts.any()

    def test_pairs_shape_validated(self, small_params):
        with pytest.raises(ParameterError, match="do not match"):
            LDPJoinSketch(small_params, HashPairs(small_params.k + 1, small_params.m, 1))

    def test_counts_shape_validated(self, small_params, small_pairs):
        with pytest.raises(ParameterError, match="counts"):
            LDPJoinSketch(small_params, small_pairs, np.zeros((1, 1)))

    def test_memory_bytes(self, small_params, small_pairs):
        sketch = LDPJoinSketch(small_params, small_pairs)
        assert sketch.memory_bytes() == small_params.k * small_params.m * 8


class TestExpectationTheorems:
    """Theorem 2 / Theorem 7: expected counts match the Fast-AGMS sketch."""

    def test_expected_counts_equal_fast_agms(self):
        params = SketchParams(k=3, m=16, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=3)
        values = zipf_values(3_000, 40, 1.2, seed=4)

        reference = FastAGMSSketch(pairs)
        reference.update_batch(values)

        total = np.zeros((params.k, params.m))
        runs = 80
        rng = np.random.default_rng(5)
        for _ in range(runs):
            reports = encode_reports(values, params, pairs, rng)
            total += build_sketch(reports, pairs).counts
        mean_counts = total / runs

        # Per-cell sd ~ sqrt(k c^2 F1) / sqrt(runs) ~ 11; tolerance 6 sd.
        assert np.all(np.abs(mean_counts - reference.counts) < 66)

    def test_frequency_unbiased_theorem7(self):
        params = SketchParams(k=3, m=16, epsilon=3.0)
        pairs = HashPairs(params.k, params.m, seed=6)
        heavy, count = 7, 4_000
        values = np.concatenate(
            [np.full(count, heavy, dtype=np.int64), zipf_values(2_000, 40, 1.1, 7)]
        )
        rng = np.random.default_rng(8)
        estimates = [
            build_sketch(encode_reports(values, params, pairs, rng), pairs).frequency(heavy)
            for _ in range(60)
        ]
        mean = float(np.mean(estimates))
        sem = float(np.std(estimates) / np.sqrt(len(estimates)))
        # Fixed hashes leave a small collision offset of order F1/m ~ 375/m;
        # allow 5 SEM plus that offset.
        assert abs(mean - count) < 5 * sem + 6_000 / params.m

    def test_join_rows_unbiased_theorem3(self):
        params = SketchParams(k=2, m=32, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=9)
        a = zipf_values(3_000, 64, 1.2, seed=10)
        b = zipf_values(3_000, 64, 1.2, seed=11)
        truth = exact_join_size(a, b, 64)
        rng = np.random.default_rng(12)
        row_products = []
        for _ in range(100):
            sa = build_sketch(encode_reports(a, params, pairs, rng), pairs)
            sb = build_sketch(encode_reports(b, params, pairs, rng), pairs)
            row_products.extend(sa.row_inner_products(sb).tolist())
        mean = float(np.mean(row_products))
        sem = float(np.std(row_products) / np.sqrt(len(row_products)))
        assert abs(mean - truth) < 5 * sem


class TestEstimation:
    def test_join_size_close_to_truth(self, skewed_pair):
        a, b, domain = skewed_pair
        params = SketchParams(k=9, m=512, epsilon=6.0)
        pairs = HashPairs(params.k, params.m, seed=13)
        rng = np.random.default_rng(14)
        sa = build_sketch(encode_reports(a, params, pairs, rng), pairs)
        sb = build_sketch(encode_reports(b, params, pairs, rng), pairs)
        truth = exact_join_size(a, b, domain)
        assert abs(sa.join_size(sb) - truth) / truth < 0.35

    def test_join_is_median_of_rows(self, small_params, small_pairs):
        rng = np.random.default_rng(15)
        sa = build_sketch(
            encode_reports(np.arange(50), small_params, small_pairs, rng), small_pairs
        )
        sb = build_sketch(
            encode_reports(np.arange(50), small_params, small_pairs, rng), small_pairs
        )
        assert sa.join_size(sb) == pytest.approx(
            float(np.median(sa.row_inner_products(sb)))
        )

    def test_frequencies_batch_matches_scalar(self, small_params, small_pairs):
        rng = np.random.default_rng(16)
        sketch = build_sketch(
            encode_reports(np.arange(100) % 13, small_params, small_pairs, rng),
            small_pairs,
        )
        batch = sketch.frequencies(np.arange(13))
        for v in range(13):
            assert batch[v] == pytest.approx(sketch.frequency(v))

    def test_second_moment_debiased(self):
        """The F2 estimate must remove the per-report noise energy."""
        from repro.join import FrequencyVector

        params = SketchParams(k=9, m=256, epsilon=4.0)
        pairs = HashPairs(params.k, params.m, seed=30)
        a = zipf_values(100_000, 2048, 1.4, seed=31)
        truth = FrequencyVector.from_values(a, 2048).second_moment
        estimates = [
            build_sketch(encode_reports(a, params, pairs, seed), pairs).second_moment()
            for seed in range(5)
        ]
        assert abs(float(np.mean(estimates)) - truth) / truth < 0.15
        # Sanity: the raw (un-debiased) self product is far above truth.
        sketch = build_sketch(encode_reports(a, params, pairs, 99), pairs)
        raw = float(np.median(np.einsum("jx,jx->j", sketch.counts, sketch.counts)))
        assert raw > 1.1 * truth

    def test_shifted_subtracts_constant(self, small_params, small_pairs):
        rng = np.random.default_rng(17)
        sketch = build_sketch(
            encode_reports(np.arange(30), small_params, small_pairs, rng), small_pairs
        )
        shifted = sketch.shifted(2.5)
        assert np.allclose(shifted.counts, sketch.counts - 2.5)
        assert shifted.num_reports == sketch.num_reports
        # Original untouched.
        assert not np.allclose(shifted.counts, sketch.counts)


class TestCompatibility:
    def test_join_requires_shared_pairs(self, small_params):
        p1 = HashPairs(small_params.k, small_params.m, 18)
        p2 = HashPairs(small_params.k, small_params.m, 19)
        s1 = LDPJoinSketch(small_params, p1)
        s2 = LDPJoinSketch(small_params, p2)
        with pytest.raises(IncompatibleSketchError, match="hash pairs"):
            s1.join_size(s2)

    def test_join_requires_same_shape(self):
        s1 = LDPJoinSketch(SketchParams(2, 8, 1.0), HashPairs(2, 8, 20))
        s2 = LDPJoinSketch(SketchParams(2, 16, 1.0), HashPairs(2, 16, 20))
        with pytest.raises(IncompatibleSketchError, match="shape"):
            s1.join_size(s2)

    def test_join_rejects_foreign_type(self, small_params, small_pairs):
        sketch = LDPJoinSketch(small_params, small_pairs)
        with pytest.raises(IncompatibleSketchError):
            sketch.join_size(FastAGMSSketch(small_pairs))

    def test_merge_adds_counts(self, small_params, small_pairs):
        rng = np.random.default_rng(21)
        s1 = build_sketch(
            encode_reports(np.arange(10), small_params, small_pairs, rng), small_pairs
        )
        s2 = build_sketch(
            encode_reports(np.arange(10), small_params, small_pairs, rng), small_pairs
        )
        expected = s1.counts + s2.counts
        s1.merge(s2)
        assert np.array_equal(s1.counts, expected)
        assert s1.num_reports == 20

    def test_merge_requires_same_epsilon(self, small_params, small_pairs):
        s1 = LDPJoinSketch(small_params, small_pairs)
        s2 = LDPJoinSketch(small_params.with_epsilon(9.0), small_pairs)
        with pytest.raises(IncompatibleSketchError, match="budget"):
            s1.merge(s2)
