"""Property-based tests of the core protocol (hypothesis).

These explore the parameter space (k, m, epsilon, value sets) rather than
fixed configurations: wire-format invariants, determinism, and structural
identities that must hold for *every* legal configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SketchParams, build_sketch, encode_reports, fap_encode_reports
from repro.core.fap import MODE_HIGH, MODE_LOW
from repro.hashing import HashPairs

params_strategy = st.builds(
    SketchParams,
    k=st.integers(min_value=1, max_value=6),
    m=st.sampled_from([2, 4, 8, 16, 32]),
    epsilon=st.floats(min_value=0.1, max_value=20.0),
)

values_strategy = st.lists(
    st.integers(min_value=0, max_value=500), min_size=1, max_size=64
).map(lambda xs: np.asarray(xs, dtype=np.int64))


class TestClientProperties:
    @given(params_strategy, values_strategy, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_wire_format_always_valid(self, params, values, seed):
        pairs = HashPairs(params.k, params.m, seed=seed)
        batch = encode_reports(values, params, pairs, seed)
        assert len(batch) == values.size
        assert set(np.unique(batch.ys)) <= {-1, 1}
        assert batch.rows.min() >= 0 and batch.rows.max() < params.k
        assert batch.cols.min() >= 0 and batch.cols.max() < params.m

    @given(params_strategy, values_strategy, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_under_seed(self, params, values, seed):
        pairs = HashPairs(params.k, params.m, seed=seed)
        b1 = encode_reports(values, params, pairs, seed)
        b2 = encode_reports(values, params, pairs, seed)
        assert np.array_equal(b1.ys, b2.ys)
        assert np.array_equal(b1.rows, b2.rows)
        assert np.array_equal(b1.cols, b2.cols)

    @given(params_strategy, values_strategy, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_fap_wire_format_matches_plain(self, params, values, seed):
        """FAP output is indistinguishable from Algorithm 1 at the format
        level regardless of mode or FI content."""
        pairs = HashPairs(params.k, params.m, seed=seed)
        fi = values[: max(1, values.size // 2)]
        for mode in (MODE_HIGH, MODE_LOW):
            batch = fap_encode_reports(values, mode, params, pairs, fi, seed)
            assert len(batch) == values.size
            assert set(np.unique(batch.ys)) <= {-1, 1}


class TestServerProperties:
    @given(params_strategy, values_strategy, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_construction_linearity(self, params, values, seed):
        """Sketch(batch1) + Sketch(batch2) == Sketch(batch1 ++ batch2)."""
        pairs = HashPairs(params.k, params.m, seed=seed)
        rng = np.random.default_rng(seed)
        half = values.size // 2
        b1 = encode_reports(values[:half], params, pairs, rng)
        b2 = encode_reports(values[half:], params, pairs, rng)
        merged = build_sketch(b1, pairs).merge(build_sketch(b2, pairs))
        combined = build_sketch(b1.concat(b2), pairs)
        assert np.allclose(merged.counts, combined.counts)
        assert merged.num_reports == combined.num_reports

    @given(params_strategy, values_strategy, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_join_size_symmetry(self, params, values, seed):
        pairs = HashPairs(params.k, params.m, seed=seed)
        rng = np.random.default_rng(seed)
        sa = build_sketch(encode_reports(values, params, pairs, rng), pairs)
        sb = build_sketch(encode_reports(values[::-1].copy(), params, pairs, rng), pairs)
        assert sa.join_size(sb) == pytest.approx(sb.join_size(sa))

    @given(
        params_strategy,
        values_strategy,
        st.floats(min_value=-100, max_value=100),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_shift_identity(self, params, values, mass, seed):
        """shifted(x).shifted(-x) restores the counters."""
        pairs = HashPairs(params.k, params.m, seed=seed)
        sketch = build_sketch(encode_reports(values, params, pairs, seed), pairs)
        restored = sketch.shifted(mass).shifted(-mass)
        assert np.allclose(restored.counts, sketch.counts)
