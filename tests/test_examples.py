"""Integration tests: every example script runs and prints sane output."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_examples_directory_complete(self):
        scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in scripts
        assert len(scripts) >= 3

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "exact join size" in out
        assert "LDPJoinSketch+" in out
        assert "eps = 4.0" in out

    def test_private_similarity(self):
        out = run_example("private_similarity.py")
        assert "private cos" in out
        # The similar seller must rank above the unrelated one.
        lines = [l for l in out.splitlines() if l.startswith("seller")]
        similar = float(lines[0].split()[-1])
        unrelated = float(lines[2].split()[-1])
        assert similar > unrelated

    def test_dataset_discovery(self):
        out = run_example("dataset_discovery.py")
        assert "Privately ranked join candidates" in out
        # The genuinely joinable columns outrank the unrelated ones.
        ranked = [l.strip() for l in out.splitlines() if l.strip().startswith(("1.", "2."))]
        assert any("panel_results" in line for line in ranked)

    def test_multiway_join(self):
        out = run_example("multiway_join.py")
        assert "COMPASS" in out
        assert "eps=10.0" in out

    def test_frequency_estimation(self):
        out = run_example("frequency_estimation.py")
        assert "MSE over" in out
        assert "LDPJoinSketch" in out

    def test_streaming_collection(self):
        out = run_example("streaming_collection.py")
        assert "lossless" in out
        # Seven daily waves reported.
        assert sum(1 for l in out.splitlines() if l.strip() and l.split()[0].isdigit()) == 7
