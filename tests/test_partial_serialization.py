"""Metamorphic tests of the distributed wire formats.

Two families:

* **save → load → merge == merge** — every :class:`PartialAggregate` a
  driver can emit (and every session payload) must round-trip through
  JSON and then merge to byte-identical state, so partials can travel
  files/queues/RPC without perturbing a single bit;
* **unsafe merges are refused** — a partial built under the wrong seed,
  the wrong width or the wrong privacy budget (or a tampered payload)
  raises :class:`IncompatibleSketchError`/:class:`ParameterError`
  instead of corrupting the estimate.

Plus the checkpoint contract: a shard aggregator killed mid-stream and
resumed from its last flushed checkpoint finishes byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import JoinSession, get_estimator
from repro.core import SketchParams
from repro.data.base import JoinInstance
from repro.distributed import (
    PartialAggregate,
    ShardCheckpoint,
    ingest_with_checkpoint,
    merge_sequential,
    merge_tree,
    prepare_shard_run,
)
from repro.errors import IncompatibleSketchError, ParameterError

from .conftest import zipf_values

DOMAIN = 64
EPSILON = 4.0

#: (registry name, options, strategy) for every single-round driver.
SINGLE_ROUND_METHODS = [
    ("fagms", dict(k=3, m=32)),
    ("krr", dict()),
    ("olh", dict()),
    ("flh", dict(pool_size=16)),
    ("hcms", dict(k=3, m=32)),
    ("ldp-join-sketch", dict(k=3, m=32)),
    ("compass", dict(k=3, m=32)),
]


@pytest.fixture(scope="module")
def instance() -> JoinInstance:
    return JoinInstance(
        name="wire-zipf",
        values_a=zipf_values(800, DOMAIN, 1.2, seed=1),
        values_b=zipf_values(900, DOMAIN, 1.1, seed=2),
        domain_size=DOMAIN,
    )


def _roundtrip(partial: PartialAggregate) -> PartialAggregate:
    return PartialAggregate.from_dict(json.loads(json.dumps(partial.to_dict())))


class TestPartialRoundTrip:
    @pytest.mark.parametrize("name,options", SINGLE_ROUND_METHODS)
    def test_save_load_merge_equals_in_memory_merge(self, name, options, instance):
        estimator = get_estimator(name, **options)
        run = prepare_shard_run(
            estimator, instance, EPSILON, num_shards=3, seed=17
        )
        partials = run.collect_all()
        in_memory = merge_tree(partials)
        through_disk = merge_tree([_roundtrip(p) for p in partials])
        assert set(in_memory.arrays) == set(through_disk.arrays)
        for key in in_memory.arrays:
            assert in_memory.arrays[key].dtype == through_disk.arrays[key].dtype
            np.testing.assert_array_equal(
                in_memory.arrays[key], through_disk.arrays[key]
            )
        assert in_memory.counters == through_disk.counters
        assert in_memory.fingerprint == through_disk.fingerprint
        # The finalised estimates agree bit for bit too.
        assert (
            run.finalize(in_memory).estimate
            == run.finalize(through_disk).estimate
        )

    def test_roundtrip_preserves_equality_exactly(self, instance):
        estimator = get_estimator("ldp-join-sketch", k=3, m=32)
        run = prepare_shard_run(estimator, instance, EPSILON, num_shards=2, seed=3)
        for partial in run.collect_all():
            assert _roundtrip(partial) == partial

    def test_session_payload_roundtrip_then_merge(self):
        """Session to_dict payloads merge identically after a round-trip."""
        params = SketchParams(k=3, m=32, epsilon=2.0)
        coordinator = JoinSession(params, seed=5)
        shard_a = coordinator.spawn_shard()
        shard_b = coordinator.spawn_shard()
        shard_a.collect("A", zipf_values(500, DOMAIN, 1.3, seed=6), seed=10)
        shard_b.collect("A", zipf_values(400, DOMAIN, 1.3, seed=7), seed=11)

        direct = JoinSession(params, pairs=coordinator.pairs)
        direct.merge(shard_a).merge(shard_b)
        via_json = JoinSession(params, pairs=coordinator.pairs)
        via_json.merge(
            JoinSession.from_dict(json.loads(json.dumps(shard_a.to_dict())))
        )
        via_json.merge(
            JoinSession.from_dict(json.loads(json.dumps(shard_b.to_dict())))
        )
        np.testing.assert_array_equal(
            direct._streams["A"].raw, via_json._streams["A"].raw
        )
        via_partial = JoinSession(params, pairs=coordinator.pairs)
        via_partial.merge(
            merge_sequential(
                [_roundtrip(shard_a.to_partial()), _roundtrip(shard_b.to_partial())]
            )
        )
        np.testing.assert_array_equal(
            direct._streams["A"].raw, via_partial._streams["A"].raw
        )

    def test_version_gate(self, instance):
        estimator = get_estimator("krr")
        run = prepare_shard_run(estimator, instance, EPSILON, num_shards=2, seed=1)
        payload = run.collect(0).to_dict()
        payload["version"] = 99
        with pytest.raises(ParameterError, match="version"):
            PartialAggregate.from_dict(payload)
        payload["version"] = 1
        payload["format"] = "something/else"
        with pytest.raises(ParameterError, match="partial-aggregate"):
            PartialAggregate.from_dict(payload)

    def test_tampered_array_payload_rejected(self, instance):
        estimator = get_estimator("krr")
        run = prepare_shard_run(estimator, instance, EPSILON, num_shards=2, seed=1)
        payload = run.collect(0).to_dict()
        entry = payload["arrays"]["A:report_counts"]["data"]
        entry["data"] = entry["data"][: len(entry["data"]) // 2]
        with pytest.raises(ParameterError):
            PartialAggregate.from_dict(payload)


class TestUnsafeMergeRefusal:
    @staticmethod
    def _session_partial(seed, m=32, epsilon=2.0):
        session = JoinSession(SketchParams(k=3, m=m, epsilon=epsilon), seed=seed)
        session.collect("A", zipf_values(200, DOMAIN, 1.2, seed=9), seed=1)
        return session.to_partial()

    def test_wrong_seed_refused(self):
        """Different session seeds => different published pairs => refused."""
        with pytest.raises(IncompatibleSketchError, match="hash pairs"):
            self._session_partial(seed=1).merge(self._session_partial(seed=2))

    def test_wrong_m_refused(self):
        with pytest.raises(IncompatibleSketchError, match="m mismatch"):
            self._session_partial(seed=1).merge(self._session_partial(seed=1, m=64))

    def test_wrong_epsilon_refused(self):
        with pytest.raises(IncompatibleSketchError, match="budget"):
            self._session_partial(seed=1).merge(
                self._session_partial(seed=1, epsilon=8.0)
            )

    def test_wrong_method_refused(self, instance):
        krr = prepare_shard_run(
            get_estimator("krr"), instance, EPSILON, num_shards=2, seed=1
        ).collect(0)
        flh = prepare_shard_run(
            get_estimator("flh", pool_size=16), instance, EPSILON, num_shards=2, seed=1
        ).collect(0)
        with pytest.raises(IncompatibleSketchError, match="method"):
            krr.merge(flh)

    def test_session_refuses_foreign_partial(self, instance):
        session = JoinSession(SketchParams(k=3, m=32, epsilon=2.0), seed=1)
        oracle_partial = prepare_shard_run(
            get_estimator("krr"), instance, EPSILON, num_shards=2, seed=1
        ).collect(0)
        with pytest.raises(IncompatibleSketchError):
            session.merge(oracle_partial)

    def test_oracle_wrong_pool_seed_refused(self, instance):
        """Same estimator, different master seed: the published-state
        digest differs, so the wire merge is refused."""
        make = lambda seed: prepare_shard_run(  # noqa: E731
            get_estimator("flh", pool_size=16),
            instance,
            EPSILON,
            num_shards=2,
            seed=seed,
        ).collect(0)
        with pytest.raises(IncompatibleSketchError, match="digest"):
            make(1).merge(make(2))


class TestReviewRegressions:
    def test_to_partial_snapshots_the_accumulator(self):
        """Ingesting after to_partial() must not mutate the emitted partial."""
        session = JoinSession(SketchParams(k=3, m=32, epsilon=2.0), seed=1)
        session.collect("A", np.arange(64), seed=2)
        partial = session.to_partial()
        frozen = partial.arrays["stream:A:raw"].copy()
        session.collect("A", np.arange(64), seed=3)
        np.testing.assert_array_equal(partial.arrays["stream:A:raw"], frozen)

    def test_sequential_partial_merges_keep_ledger_groups_unique(self):
        """Folding N partials one by one renames every charge collision,
        so disjoint shard cohorts stay parallel-composed (worst case eps,
        not N*eps)."""
        params = SketchParams(k=3, m=32, epsilon=2.0)
        coordinator = JoinSession(params, seed=4)
        for i in range(4):
            shard = coordinator.spawn_shard()
            shard.collect("A", np.arange(50), seed=10 + i)
            coordinator.merge(shard.to_partial())
        groups = [g for g, _, _ in coordinator.ledger.charges]
        assert len(groups) == len(set(groups)) == 4
        assert coordinator.ledger.worst_case_epsilon() == pytest.approx(2.0)

    def test_cross_round_plus_partials_refused(self, instance):
        """Phase-1 and phase-2 LDPJoinSketch+ partials carry different
        rounds in their fingerprints and must not fuse."""
        p1 = PartialAggregate("ldp-join-sketch-plus", {"round": 1})
        p2 = PartialAggregate("ldp-join-sketch-plus", {"round": 2})
        with pytest.raises(IncompatibleSketchError, match="round"):
            p1.merge(p2)

    def test_conflicting_scalar_meta_refused(self):
        fp = {"k": 3}
        a = PartialAggregate("m", fp, meta={"tag": "x"})
        b = PartialAggregate("m", fp, meta={"tag": "y"})
        with pytest.raises(IncompatibleSketchError, match="tag"):
            a.merge(b)


class TestCheckpointResume:
    def _cohorts(self):
        rng = np.random.default_rng(77)
        cohorts = [rng.integers(0, DOMAIN, size=150) for _ in range(5)]
        seeds = [100 + i for i in range(len(cohorts))]
        return cohorts, seeds

    def test_resume_is_byte_identical(self, tmp_path):
        params = SketchParams(k=3, m=32, epsilon=2.0)
        coordinator = JoinSession(params, seed=8)
        cohorts, seeds = self._cohorts()

        # Uninterrupted run.
        straight = ingest_with_checkpoint(
            coordinator.spawn_shard(),
            "A",
            cohorts,
            seeds,
            ShardCheckpoint(tmp_path / "straight.json"),
        )

        # Crash after cohort 2 (simulated by just stopping), then resume
        # with a fresh session from the same checkpoint.
        crash_path = ShardCheckpoint(tmp_path / "crash.json")
        dying = coordinator.spawn_shard()
        for i in range(2):
            dying.collect("A", cohorts[i], seed=seeds[i])
            crash_path.flush(dying.to_partial(), cursor=i + 1)
        del dying  # the process is gone

        resumed = ingest_with_checkpoint(
            coordinator.spawn_shard(), "A", cohorts, seeds, crash_path
        )
        np.testing.assert_array_equal(
            straight.arrays["stream:A:raw"], resumed.arrays["stream:A:raw"]
        )
        assert (
            straight.counters["stream:A:num_reports"]
            == resumed.counters["stream:A:num_reports"]
        )

    def test_flush_is_atomic(self, tmp_path):
        """The temp file never lingers and the checkpoint is always valid."""
        params = SketchParams(k=3, m=32, epsilon=2.0)
        session = JoinSession(params, seed=8)
        session.collect("A", np.arange(64), seed=1)
        checkpoint = ShardCheckpoint(tmp_path / "ckpt.json")
        checkpoint.flush(session.to_partial(), cursor=1)
        assert not (tmp_path / "ckpt.json.tmp").exists()
        partial, cursor = checkpoint.load()
        assert cursor == 1
        np.testing.assert_array_equal(
            partial.arrays["stream:A:raw"], session.to_partial().arrays["stream:A:raw"]
        )
        checkpoint.clear()
        assert checkpoint.load() is None

    def test_completed_checkpoint_short_circuits(self, tmp_path):
        params = SketchParams(k=3, m=32, epsilon=2.0)
        coordinator = JoinSession(params, seed=8)
        cohorts, seeds = self._cohorts()
        checkpoint = ShardCheckpoint(tmp_path / "done.json")
        finished = ingest_with_checkpoint(
            coordinator.spawn_shard(), "A", cohorts, seeds, checkpoint
        )
        again = ingest_with_checkpoint(
            coordinator.spawn_shard(), "A", cohorts, seeds, checkpoint
        )
        np.testing.assert_array_equal(
            finished.arrays["stream:A:raw"], again.arrays["stream:A:raw"]
        )

    def test_cursor_beyond_plan_rejected(self, tmp_path):
        params = SketchParams(k=3, m=32, epsilon=2.0)
        coordinator = JoinSession(params, seed=8)
        cohorts, seeds = self._cohorts()
        checkpoint = ShardCheckpoint(tmp_path / "over.json")
        checkpoint.flush(coordinator.spawn_shard().to_partial(), cursor=99)
        with pytest.raises(ParameterError, match="cursor"):
            ingest_with_checkpoint(
                coordinator.spawn_shard(), "A", cohorts, seeds, checkpoint
            )
