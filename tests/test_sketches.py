"""Tests for the non-private sketch substrates (:mod:`repro.sketches`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IncompatibleSketchError, ParameterError
from repro.hashing import HashPairs
from repro.join import FrequencyVector, exact_join_size, exact_multiway_chain_size
from repro.sketches import (
    AGMSSketch,
    CompassChainSketches,
    CountMeanSketch,
    CountMinSketch,
    CountSketch,
    FastAGMSSketch,
)

from .conftest import zipf_values


class TestFastAGMS:
    def test_update_equals_counts_definition(self):
        pairs = HashPairs(3, 16, seed=1)
        sketch = FastAGMSSketch(pairs)
        values = np.array([5, 5, 9])
        sketch.update_batch(values)
        expected = np.zeros((3, 16))
        for j in range(3):
            for v in values:
                expected[j, pairs.bucket(j, np.array([v]))[0]] += pairs.sign(
                    j, np.array([v])
                )[0]
        assert np.array_equal(sketch.counts, expected)

    def test_update_scalar_matches_batch(self):
        pairs = HashPairs(2, 8, seed=2)
        s1 = FastAGMSSketch(pairs)
        s2 = FastAGMSSketch(pairs)
        s1.update(3)
        s2.update_batch([3])
        assert np.array_equal(s1.counts, s2.counts)

    def test_empty_update_noop(self):
        sketch = FastAGMSSketch.create(2, 8, seed=3)
        sketch.update_batch([])
        assert sketch.total_weight == 0
        assert not sketch.counts.any()

    def test_inner_product_accuracy(self):
        a = zipf_values(30_000, 256, 1.4, seed=4)
        b = zipf_values(30_000, 256, 1.4, seed=5)
        truth = exact_join_size(a, b, 256)
        pairs = HashPairs(7, 512, seed=6)
        sa = FastAGMSSketch(pairs)
        sa.update_batch(a)
        sb = FastAGMSSketch(pairs)
        sb.update_batch(b)
        est = sa.inner_product(sb)
        # Fast-AGMS error bound: ~ F2 / sqrt(m); 10% is > 5x slack here.
        assert abs(est - truth) / truth < 0.10

    def test_inner_product_unbiased_over_hash_draws(self):
        a = zipf_values(2_000, 64, 1.2, seed=7)
        b = zipf_values(2_000, 64, 1.2, seed=8)
        truth = exact_join_size(a, b, 64)
        estimates = []
        for seed in range(40):
            pairs = HashPairs(1, 128, seed=seed)
            sa = FastAGMSSketch(pairs)
            sa.update_batch(a)
            sb = FastAGMSSketch(pairs)
            sb.update_batch(b)
            estimates.append(sa.inner_product(sb))
        mean = float(np.mean(estimates))
        sd = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - truth) < 5 * sd + 0.01 * truth

    def test_second_moment(self):
        a = zipf_values(20_000, 128, 1.5, seed=9)
        truth = FrequencyVector.from_values(a, 128).second_moment
        sketch = FastAGMSSketch.create(7, 512, seed=10)
        sketch.update_batch(a)
        assert abs(sketch.second_moment() - truth) / truth < 0.10

    def test_frequency_estimates(self):
        a = np.concatenate([np.zeros(5000, dtype=np.int64), zipf_values(5000, 100, 1.1, 11)])
        sketch = FastAGMSSketch.create(7, 256, seed=12)
        sketch.update_batch(a)
        f0 = FrequencyVector.from_values(a, 100).frequency(0)
        assert abs(sketch.frequency(0) - f0) < 0.05 * f0

    def test_frequencies_batch_matches_scalar(self):
        sketch = FastAGMSSketch.create(3, 64, seed=13)
        sketch.update_batch(zipf_values(1000, 50, 1.0, 14))
        batch = sketch.frequencies(np.arange(10))
        for v in range(10):
            assert batch[v] == sketch.frequency(v)

    def test_requires_shared_pairs(self):
        sa = FastAGMSSketch.create(2, 8, seed=15)
        sb = FastAGMSSketch.create(2, 8, seed=16)
        with pytest.raises(IncompatibleSketchError, match="hash pairs"):
            sa.inner_product(sb)

    def test_type_mismatch_rejected(self):
        pairs = HashPairs(2, 8, seed=17)
        sa = FastAGMSSketch(pairs)
        cm = CountMinSketch(pairs)
        with pytest.raises(IncompatibleSketchError):
            sa.inner_product(cm)

    def test_merge_linearity(self):
        pairs = HashPairs(2, 16, seed=18)
        a = zipf_values(500, 40, 1.0, 19)
        b = zipf_values(500, 40, 1.0, 20)
        merged = FastAGMSSketch(pairs)
        merged.update_batch(a)
        other = FastAGMSSketch(pairs)
        other.update_batch(b)
        merged.merge(other)
        combined = FastAGMSSketch(pairs)
        combined.update_batch(np.concatenate([a, b]))
        assert np.array_equal(merged.counts, combined.counts)
        assert merged.total_weight == combined.total_weight

    def test_memory_bytes(self):
        sketch = FastAGMSSketch.create(4, 128, seed=21)
        assert sketch.memory_bytes() == 4 * 128 * 8

    def test_weighted_updates(self):
        pairs = HashPairs(2, 16, seed=22)
        s1 = FastAGMSSketch(pairs)
        s1.update_batch([3], weight=5.0)
        s2 = FastAGMSSketch(pairs)
        s2.update_batch([3, 3, 3, 3, 3])
        assert np.allclose(s1.counts, s2.counts)


class TestAGMS:
    def test_second_moment_statistical(self):
        a = zipf_values(5_000, 64, 1.3, seed=23)
        truth = FrequencyVector.from_values(a, 64).second_moment
        sketch = AGMSSketch.create(5, 64, seed=24)
        sketch.update_batch(a)
        assert abs(sketch.second_moment() - truth) / truth < 0.25

    def test_inner_product_statistical(self):
        a = zipf_values(4_000, 64, 1.3, seed=25)
        b = zipf_values(4_000, 64, 1.3, seed=26)
        truth = exact_join_size(a, b, 64)
        sa = AGMSSketch.create(5, 64, seed=27)
        sa.update_batch(a)
        sb = AGMSSketch(sa.sign_hashes)
        sb.update_batch(b)
        assert abs(sa.inner_product(sb) - truth) / truth < 0.3

    def test_counter_definition(self):
        sketch = AGMSSketch.create(2, 3, seed=28)
        values = np.array([1, 1, 7])
        sketch.update_batch(values)
        for j in range(2):
            for x in range(3):
                expected = float(np.sum(sketch.sign_hashes[j][x](values)))
                assert sketch.counts[j, x] == expected

    def test_incompatible_sign_hashes(self):
        sa = AGMSSketch.create(2, 4, seed=29)
        sb = AGMSSketch.create(2, 4, seed=30)
        with pytest.raises(IncompatibleSketchError, match="sign hashes"):
            sa.inner_product(sb)

    def test_shape_mismatch(self):
        sa = AGMSSketch.create(2, 4, seed=31)
        sb = AGMSSketch.create(3, 4, seed=31)
        with pytest.raises(IncompatibleSketchError, match="shape"):
            sa.inner_product(sb)

    def test_grid_validation(self):
        with pytest.raises(ParameterError):
            AGMSSketch([])

    def test_update_scalar(self):
        sketch = AGMSSketch.create(1, 2, seed=32)
        sketch.update(5)
        assert sketch.total_weight == 1


class TestCountMin:
    def test_never_underestimates(self):
        a = zipf_values(5_000, 100, 1.2, seed=33)
        freq = FrequencyVector.from_values(a, 100)
        sketch = CountMinSketch.create(5, 64, seed=34)
        sketch.update_batch(a)
        estimates = sketch.frequencies(np.arange(100))
        assert np.all(estimates >= freq.counts - 1e-9)

    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch.create(3, 1024, seed=35)
        sketch.update_batch([7, 7, 7])
        assert sketch.frequency(7) == 3.0

    def test_heavy_hitters(self):
        a = np.concatenate(
            [np.full(3000, 4, dtype=np.int64), zipf_values(1000, 100, 1.0, 36)]
        )
        sketch = CountMinSketch.create(5, 256, seed=37)
        sketch.update_batch(a)
        heavy = sketch.heavy_hitters(100, threshold=2000)
        assert 4 in heavy

    def test_total_weight(self):
        sketch = CountMinSketch.create(2, 8, seed=38)
        sketch.update_batch([1, 2, 3])
        assert sketch.total_weight == 3


class TestCountSketch:
    def test_unbiased_frequency(self):
        a = zipf_values(10_000, 100, 1.2, seed=39)
        freq = FrequencyVector.from_values(a, 100)
        sketch = CountSketch.create(7, 256, seed=40)
        sketch.update_batch(a)
        top = freq.top_k(5)
        estimates = sketch.frequencies(top)
        for value, est in zip(top, estimates):
            true = freq.frequency(int(value))
            assert abs(est - true) < 0.2 * true + 50

    def test_heavy_hitters_returns_estimates(self):
        a = np.concatenate(
            [np.full(5000, 9, dtype=np.int64), zipf_values(2000, 64, 1.0, 41)]
        )
        sketch = CountSketch.create(5, 128, seed=42)
        sketch.update_batch(a)
        values, estimates = sketch.heavy_hitters(64, threshold=3000)
        assert 9 in values
        assert estimates[list(values).index(9)] > 3000


class TestCountMean:
    def test_debiased_estimates(self):
        a = zipf_values(20_000, 128, 1.3, seed=43)
        freq = FrequencyVector.from_values(a, 128)
        sketch = CountMeanSketch.create(18, 256, seed=44)
        sketch.update_batch(a)
        top = freq.top_k(5)
        for value in top:
            true = freq.frequency(int(value))
            assert abs(sketch.frequency(int(value)) - true) < 0.15 * true + 100

    def test_mean_debias_zero_for_absent_items(self):
        # Items never inserted should estimate ~0 on average.
        a = zipf_values(20_000, 64, 1.1, seed=45)
        sketch = CountMeanSketch.create(18, 256, seed=46)
        sketch.update_batch(a)
        absent = np.arange(64, 128)  # outside the data range
        estimates = sketch.frequencies(absent)
        assert abs(float(np.mean(estimates))) < 60

    def test_requires_m_at_least_two(self):
        sketch = CountMeanSketch.create(2, 1, seed=47)
        sketch.update_batch([0])
        with pytest.raises(ParameterError, match="m >= 2"):
            sketch.frequency(0)


class TestCompass:
    def test_three_way_accuracy(self):
        d = 64
        t1 = zipf_values(8_000, d, 1.3, seed=49)
        t2 = (zipf_values(8_000, d, 1.3, seed=50), zipf_values(8_000, d, 1.3, seed=51))
        t3 = zipf_values(8_000, d, 1.3, seed=52)
        truth = exact_multiway_chain_size((t1, t3), [t2], [d, d])
        sketches = CompassChainSketches([256, 256], k=7, seed=53)
        first = sketches.build_end(0, t1)
        mid = sketches.build_middle(0, *t2)
        last = sketches.build_end(1, t3)
        est = sketches.estimate_chain(first, [mid], last)
        assert abs(est - truth) / truth < 0.25

    def test_two_way_reduces_to_fast_agms(self):
        a = zipf_values(5_000, 64, 1.2, seed=54)
        b = zipf_values(5_000, 64, 1.2, seed=55)
        sketches = CompassChainSketches([256], k=5, seed=56)
        first = sketches.build_end(0, a)
        last = sketches.build_end(0, b)
        est = sketches.estimate_chain(first, [], last)
        assert est == pytest.approx(first.inner_product(last))

    def test_middle_counter_definition(self):
        sketches = CompassChainSketches([8, 8], k=2, seed=57)
        left = np.array([3, 3])
        right = np.array([5, 1])
        mid = sketches.build_middle(0, left, right)
        lp, rp = mid.left_pairs, mid.right_pairs
        expected = np.zeros((2, 8, 8))
        for j in range(2):
            for a, b in zip(left, right):
                expected[
                    j, lp.bucket(j, np.array([a]))[0], rp.bucket(j, np.array([b]))[0]
                ] += lp.sign(j, np.array([a]))[0] * rp.sign(j, np.array([b]))[0]
        assert np.array_equal(mid.counts, expected)

    def test_column_length_mismatch(self):
        sketches = CompassChainSketches([8, 8], k=2, seed=58)
        with pytest.raises(ParameterError, match="equal length"):
            sketches.build_middle(0, np.array([1, 2]), np.array([3]))

    def test_wrong_middle_count_rejected(self):
        sketches = CompassChainSketches([8, 8], k=2, seed=59)
        first = sketches.build_end(0, [1])
        last = sketches.build_end(1, [1])
        with pytest.raises(IncompatibleSketchError, match="middle"):
            sketches.estimate_chain(first, [], last)

    def test_foreign_end_sketch_rejected(self):
        sketches = CompassChainSketches([8, 8], k=2, seed=60)
        other = CompassChainSketches([8, 8], k=2, seed=61)
        first = other.build_end(0, [1])
        mid = sketches.build_middle(0, [1], [1])
        last = sketches.build_end(1, [1])
        with pytest.raises(IncompatibleSketchError):
            sketches.estimate_chain(first, [mid], last)

    def test_attribute_out_of_range(self):
        sketches = CompassChainSketches([8], k=2, seed=62)
        with pytest.raises(ParameterError):
            sketches.build_end(1, [0])
