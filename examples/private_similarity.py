"""Private similarity computation for data valuation (intro scenario 1).

A data market wants to price a seller's dataset by how similar it is to a
buyer's — without either side revealing raw records.  The inner product of
two frequency vectors (exactly the join size) is the core of cosine
similarity:

    cos(A, B) = <f_A, f_B> / (||f_A|| * ||f_B||)

Under LDP we estimate all three quantities from sketches: <f_A, f_B> is
the cross join size and each squared norm is a self-join size (second
frequency moment, estimable from the same sketches).

Run:  python examples/private_similarity.py
"""

import numpy as np

from repro import SketchParams, build_sketch, encode_reports
from repro.data import MovieLensGenerator, ZipfGenerator
from repro.hashing import HashPairs
from repro.join import FrequencyVector
from repro.rng import ensure_rng, spawn


def private_cosine(values_a, values_b, params, seed):
    """Estimate cos(A, B) from LDP sketches alone."""
    rng = ensure_rng(seed)
    pairs = HashPairs(params.k, params.m, spawn(rng))
    sketch_a = build_sketch(encode_reports(values_a, params, pairs, rng), pairs)
    sketch_b = build_sketch(encode_reports(values_b, params, pairs, rng), pairs)
    inner = sketch_a.join_size(sketch_b)
    norm_a = sketch_a.second_moment()  # debiased ||f_A||^2
    norm_b = sketch_b.second_moment()
    if norm_a <= 0 or norm_b <= 0:
        return 0.0
    return inner / np.sqrt(norm_a * norm_b)


def exact_cosine(values_a, values_b, domain):
    fa = FrequencyVector.from_values(values_a, domain)
    fb = FrequencyVector.from_values(values_b, domain)
    return fa.inner(fb) / np.sqrt(float(fa.second_moment) * float(fb.second_moment))


def main() -> None:
    domain = 8192
    params = SketchParams(k=18, m=2048, epsilon=4.0)

    # The buyer's interest profile.
    buyer = ZipfGenerator(domain, alpha=1.4).sample(300_000, rng=1)

    # Three candidate seller datasets of varying relevance.
    sellers = {
        "seller-similar  (same population)": ZipfGenerator(domain, alpha=1.4).sample(300_000, rng=2),
        "seller-related  (shifted skew)": ZipfGenerator(domain, alpha=1.1).sample(300_000, rng=3),
        "seller-unrelated (permuted ids)": ZipfGenerator(
            domain, alpha=1.4, shuffle_seed=99
        ).sample(300_000, rng=4),
    }

    print(f"{'candidate':38s} {'exact cos':>10s} {'private cos':>12s}")
    for name, seller_values in sellers.items():
        exact = exact_cosine(buyer, seller_values, domain)
        private = private_cosine(buyer, seller_values, params, seed=hash(name) % 2**31)
        print(f"{name:38s} {exact:10.4f} {private:12.4f}")

    print("\nThe private ranking matches the exact ranking: the market can")
    print("price the candidates without seeing a single raw record.")


if __name__ == "__main__":
    main()
