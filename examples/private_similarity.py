"""Private similarity computation for data valuation (intro scenario 1).

A data market wants to price a seller's dataset by how similar it is to a
buyer's — without either side revealing raw records.  The inner product of
two frequency vectors (exactly the join size) is the core of cosine
similarity:

    cos(A, B) = <f_A, f_B> / (||f_A|| * ||f_B||)

Under LDP all three quantities come out of one :class:`repro.api.JoinSession`:
<f_A, f_B> is the cross join size and each squared norm is a self-join
size (second frequency moment, estimable from the same sketches).

Run:  python examples/private_similarity.py
"""

import numpy as np

from repro import JoinSession, SketchParams
from repro.data import ZipfGenerator
from repro.join import FrequencyVector


def private_cosine(values_a, values_b, params, seed):
    """Estimate cos(A, B) from one LDP collection session."""
    session = JoinSession(params, seed=seed)
    session.collect("buyer", values_a)
    session.collect("seller", values_b)
    inner = session.estimate("buyer", "seller").estimate
    norm_a = session.second_moment("buyer")   # debiased ||f_A||^2
    norm_b = session.second_moment("seller")
    if norm_a <= 0 or norm_b <= 0:
        return 0.0
    return inner / np.sqrt(norm_a * norm_b)


def exact_cosine(values_a, values_b, domain):
    fa = FrequencyVector.from_values(values_a, domain)
    fb = FrequencyVector.from_values(values_b, domain)
    return fa.inner(fb) / np.sqrt(float(fa.second_moment) * float(fb.second_moment))


def main() -> None:
    domain = 8192
    params = SketchParams(k=18, m=2048, epsilon=4.0)

    # The buyer's interest profile.
    buyer = ZipfGenerator(domain, alpha=1.4).sample(300_000, rng=1)

    # Three candidate seller datasets of varying relevance.
    sellers = {
        "seller-similar  (same population)": ZipfGenerator(domain, alpha=1.4).sample(300_000, rng=2),
        "seller-related  (shifted skew)": ZipfGenerator(domain, alpha=1.1).sample(300_000, rng=3),
        "seller-unrelated (permuted ids)": ZipfGenerator(
            domain, alpha=1.4, shuffle_seed=99
        ).sample(300_000, rng=4),
    }

    print(f"{'candidate':38s} {'exact cos':>10s} {'private cos':>12s}")
    for name, seller_values in sellers.items():
        exact = exact_cosine(buyer, seller_values, domain)
        private = private_cosine(buyer, seller_values, params, seed=hash(name) % 2**31)
        print(f"{name:38s} {exact:10.4f} {private:12.4f}")

    print("\nThe private ranking matches the exact ranking: the market can")
    print("price the candidates without seeing a single raw record.")


if __name__ == "__main__":
    main()
