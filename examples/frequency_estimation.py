"""LDPJoinSketch as a frequency oracle (Theorem 7 / Fig. 14 scenario).

Beyond join sizes, the same sketch answers "how often does value d occur?"
with unbiased estimates — the capability phase 1 of LDPJoinSketch+ builds
on to find frequent items.  This example compares a
:class:`repro.api.JoinSession` read-out against the dedicated LDP
frequency oracles on a skewed workload; the oracles themselves are
collected on two shards and merged, exercising their shardable state.

Run:  python examples/frequency_estimation.py
"""

import numpy as np

from repro import JoinSession, SketchParams
from repro.data import ZipfGenerator
from repro.join import FrequencyVector
from repro.mechanisms import FLHOracle, HCMSOracle, KRROracle


def main() -> None:
    domain = 8192
    epsilon = 2.0
    generator = ZipfGenerator(domain, alpha=1.5)
    values = generator.sample(400_000, rng=1)
    freq = FrequencyVector.from_values(values, domain)
    top = freq.top_k(8)

    # Dedicated oracles, each collected on two shards and merged — every
    # oracle's server state is a linear aggregate, so this is lossless.
    half = values.size // 2
    oracles = []
    for make in (
        lambda seed: KRROracle(domain, epsilon, seed=seed),
        lambda seed: FLHOracle(domain, epsilon, seed=seed),
        lambda seed: HCMSOracle(domain, epsilon, seed=seed, k=18, m=1024),
    ):
        seed = 2 + len(oracles)
        primary, shard = make(seed), make(seed)  # same seed = shared hashes
        # Distinct perturbation generators: the shards share published
        # hashes but their clients' random draws must be independent.
        primary.collect(values[:half], rng=100 + seed)
        shard.collect(values[half:], rng=200 + seed)
        oracles.append(primary.merge(shard))

    # The join sketch, collected through a session, read out per value.
    session = JoinSession(SketchParams(k=18, m=1024, epsilon=epsilon), seed=5)
    session.collect("values", values)

    names = [o.name for o in oracles] + ["LDPJoinSketch"]
    header = f"{'value':>8s} {'true':>9s}" + "".join(f"{n:>16s}" for n in names)
    print(header)
    for value in top:
        row = f"{value:8d} {freq.frequency(int(value)):9,d}"
        for oracle in oracles:
            estimate = float(oracle.frequencies(np.asarray([value]))[0])
            row += f"{estimate:16,.0f}"
        row += f"{float(session.frequencies('values', [value])[0]):16,.0f}"
        print(row)

    # Whole-domain MSE over the distinct values (the paper's Fig. 14 metric).
    support = np.flatnonzero(freq.counts)
    true_counts = freq.counts[support].astype(float)
    print(f"\nMSE over {support.size:,} distinct values (eps={epsilon}):")
    estimate_fns = [o.frequencies for o in oracles] + [
        lambda vals: session.frequencies("values", vals)
    ]
    for name, frequencies in zip(names, estimate_fns):
        estimates = frequencies(support)
        mse = float(np.mean((estimates - true_counts) ** 2))
        print(f"  {name:16s} {mse:14,.0f}")

    print("\nLDPJoinSketch tracks Apple-HCMS (the structures differ only by")
    print("the sign hash) while additionally supporting join estimation.")


if __name__ == "__main__":
    main()
