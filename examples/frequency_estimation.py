"""LDPJoinSketch as a frequency oracle (Theorem 7 / Fig. 14 scenario).

Beyond join sizes, the same sketch answers "how often does value d occur?"
with unbiased estimates — the capability phase 1 of LDPJoinSketch+ builds
on to find frequent items.  This example compares it against the dedicated
LDP frequency oracles on a skewed workload.

Run:  python examples/frequency_estimation.py
"""

import numpy as np

from repro.data import ZipfGenerator
from repro.join import FrequencyVector
from repro.mechanisms import FLHOracle, HCMSOracle, KRROracle, LDPJoinSketchOracle


def main() -> None:
    domain = 8192
    epsilon = 2.0
    generator = ZipfGenerator(domain, alpha=1.5)
    values = generator.sample(400_000, rng=1)
    freq = FrequencyVector.from_values(values, domain)
    top = freq.top_k(8)

    oracles = [
        KRROracle(domain, epsilon, seed=2),
        FLHOracle(domain, epsilon, seed=3),
        HCMSOracle(domain, epsilon, seed=4, k=18, m=1024),
        LDPJoinSketchOracle(domain, epsilon, seed=5, k=18, m=1024),
    ]
    for oracle in oracles:
        oracle.collect(values)

    header = f"{'value':>8s} {'true':>9s}" + "".join(f"{o.name:>16s}" for o in oracles)
    print(header)
    for value in top:
        row = f"{value:8d} {freq.frequency(int(value)):9,d}"
        for oracle in oracles:
            estimate = float(oracle.frequencies(np.asarray([value]))[0])
            row += f"{estimate:16,.0f}"
        print(row)

    # Whole-domain MSE over the distinct values (the paper's Fig. 14 metric).
    support = np.flatnonzero(freq.counts)
    true_counts = freq.counts[support].astype(float)
    print(f"\nMSE over {support.size:,} distinct values (eps={epsilon}):")
    for oracle in oracles:
        estimates = oracle.frequencies(support)
        mse = float(np.mean((estimates - true_counts) ** 2))
        print(f"  {oracle.name:16s} {mse:14,.0f}")

    print("\nLDPJoinSketch tracks Apple-HCMS (the structures differ only by")
    print("the sign hash) while additionally supporting join estimation.")


if __name__ == "__main__":
    main()
