"""Quickstart: estimate a join size under local differential privacy.

Two tables hold a sensitive join attribute (say, diagnosis codes in two
hospitals).  Neither side may reveal individual values, yet both want
``SELECT COUNT(*) FROM T1 JOIN T2 ON T1.A = T2.B``.  Every user perturbs
their value locally (Algorithm 1 of the paper); the untrusted server
aggregates the noisy reports into sketches and estimates the join size.

The unified API has two entry points, both shown below:

* :class:`repro.api.JoinSession` — collect streams incrementally, query
  between waves;
* the estimator registry — every method of the paper's evaluation behind
  one name-addressable interface.

Run:  python examples/quickstart.py
"""

from repro import JoinSession, SketchParams, exact_join_size
from repro.api import available_estimators, get_estimator
from repro.data import ZipfGenerator


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Two private value streams over a shared domain.
    # ------------------------------------------------------------------
    domain_size = 4096
    generator = ZipfGenerator(domain_size, alpha=1.4)
    values_a = generator.sample(200_000, rng=1)
    values_b = generator.sample(200_000, rng=2)

    truth = exact_join_size(values_a, values_b, domain_size)
    print(f"exact join size            : {truth:,}")

    # ------------------------------------------------------------------
    # 2. LDPJoinSketch via a JoinSession: one round, epsilon-LDP per user.
    # ------------------------------------------------------------------
    params = SketchParams(k=18, m=1024, epsilon=4.0)
    session = JoinSession(params, seed=7)
    session.collect("A", values_a)
    session.collect("B", values_b)
    result = session.estimate()
    error = abs(result.estimate - truth) / truth
    print(f"LDPJoinSketch  (eps=4)     : {result.estimate:,.0f}  (RE {error:.2%})")
    print(f"  uplink: {result.uplink_bits / 8 / 1024:,.0f} KiB "
          f"for {values_a.size + values_b.size:,} clients "
          f"({params.report_bits} bits each)")

    # The same session keeps answering: frequencies, self-join moments...
    top = int(values_a[0])
    print(f"  frequency of value {top:4d}  : "
          f"{session.frequencies('A', [top])[0]:,.0f} (exact "
          f"{int((values_a == top).sum()):,})")

    # ------------------------------------------------------------------
    # 3. Any registered estimator, by name.
    # ------------------------------------------------------------------
    print(f"\nregistry: {', '.join(available_estimators())}")
    instance = generator.make_join_instance(200_000, rng=3)
    truth2 = instance.true_join_size
    for name in ("fagms", "ldp-join-sketch", "ldp-join-sketch-plus"):
        estimator = get_estimator(name)
        res = estimator.estimate(instance, epsilon=4.0, seed=8)
        err = abs(res.estimate - truth2) / truth2
        # LDPJoinSketch+ is the display name of ldp-join-sketch-plus.
        print(f"{estimator.name:27s}: {res.estimate:,.0f}  (RE {err:.2%})")

    # ------------------------------------------------------------------
    # 4. Every client kept its epsilon budget.
    # ------------------------------------------------------------------
    print(f"\nper-user privacy spend     : eps = {result.ledger.worst_case_epsilon()}")


if __name__ == "__main__":
    main()
