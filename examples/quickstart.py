"""Quickstart: estimate a join size under local differential privacy.

Two tables hold a sensitive join attribute (say, diagnosis codes in two
hospitals).  Neither side may reveal individual values, yet both want
``SELECT COUNT(*) FROM T1 JOIN T2 ON T1.A = T2.B``.  Every user perturbs
their value locally (Algorithm 1 of the paper); the untrusted server
aggregates the noisy reports into sketches and estimates the join size.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SketchParams, exact_join_size, run_ldp_join_sketch, run_ldp_join_sketch_plus
from repro.data import ZipfGenerator


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Two private value streams over a shared domain.
    # ------------------------------------------------------------------
    domain_size = 4096
    generator = ZipfGenerator(domain_size, alpha=1.4)
    values_a = generator.sample(200_000, rng=1)
    values_b = generator.sample(200_000, rng=2)

    truth = exact_join_size(values_a, values_b, domain_size)
    print(f"exact join size            : {truth:,}")

    # ------------------------------------------------------------------
    # 2. LDPJoinSketch: one round, epsilon-LDP per user.
    # ------------------------------------------------------------------
    params = SketchParams(k=18, m=1024, epsilon=4.0)
    result = run_ldp_join_sketch(values_a, values_b, params, seed=7)
    error = abs(result.estimate - truth) / truth
    print(f"LDPJoinSketch  (eps=4)     : {result.estimate:,.0f}  (RE {error:.2%})")
    print(f"  uplink: {result.uplink_bits / 8 / 1024:,.0f} KiB "
          f"for {values_a.size + values_b.size:,} clients "
          f"({params.report_bits} bits each)")

    # ------------------------------------------------------------------
    # 3. LDPJoinSketch+: two phases, frequent items separated.
    # ------------------------------------------------------------------
    result_plus = run_ldp_join_sketch_plus(
        values_a,
        values_b,
        domain_size,
        params,
        sample_rate=0.1,
        threshold=0.01,
        seed=8,
    )
    error_plus = abs(result_plus.estimate - truth) / truth
    print(f"LDPJoinSketch+ (eps=4)     : {result_plus.estimate:,.0f}  (RE {error_plus:.2%})")

    # ------------------------------------------------------------------
    # 4. Every client kept its epsilon budget.
    # ------------------------------------------------------------------
    print(f"per-user privacy spend     : eps = {result_plus.ledger.worst_case_epsilon()}")


if __name__ == "__main__":
    main()
