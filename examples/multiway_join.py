"""Multi-way chain joins under LDP (Section VI of the paper).

Estimates ``|T1(A) join T2(A, B) join T3(B)|`` where every tuple belongs
to a different user: end-table users run the ordinary LDPJoinSketch
client; middle-table users report one doubly-Hadamard-sampled bit about
their tuple ``(a, b)``.  The whole collection runs through one
:class:`repro.api.JoinSession` with two join attributes and three
streams.  Compared against the non-private COMPASS baseline and the
exact answer.

Run:  python examples/multiway_join.py
"""

from repro import JoinSession, SketchParams
from repro.data import ZipfGenerator
from repro.experiments.chains import compass_estimate, make_chain_instance
from repro.rng import ensure_rng


def main() -> None:
    generator = ZipfGenerator(2048, alpha=1.5)
    chain = make_chain_instance(3, generator, table_size=150_000, seed=1)
    truth = chain.true_size
    print(f"query: T1(A) |x| T2(A, B) |x| T3(B)   over domain {generator.domain_size}")
    print(f"exact chain-join size      : {truth:,}")

    # Non-private COMPASS baseline.
    compass = compass_estimate(chain, k=18, m=256, seed=2)
    print(f"COMPASS (non-private)      : {compass:,.0f}  "
          f"(RE {abs(compass - truth) / truth:.2%})")

    # The LDP protocol at a few budgets: one session per collection period,
    # attributes A and B each with their own published hash pairs.
    for epsilon in (1.0, 4.0, 10.0):
        session = JoinSession(
            SketchParams(k=18, m=256, epsilon=epsilon),
            attribute_widths=[256, 256],
            seed=3,
        )
        rng = ensure_rng(4)
        session.collect("T1", chain.end_first, attribute=0, seed=rng)
        session.collect_pair("T2", *chain.middles[0], left_attribute=0, seed=rng)
        session.collect("T3", chain.end_last, attribute=1, seed=rng)
        result = session.estimate_chain(["T1", "T2", "T3"])
        print(f"LDPJoinSketch (eps={epsilon:>4}) : {result.estimate:,.0f}  "
              f"(RE {abs(result.estimate - truth) / truth:.2%})")

    print("\nEach client sent one perturbed bit plus its sketch coordinates;")
    print("no raw (A, B) tuple ever left a client.")

    # ------------------------------------------------------------------
    # Bonus: the Section VI discussion's "uncomplicated cyclic join"
    # T1(A, B) |x| T2(B, C) |x| T3(C, A) — the triangle query.
    # ------------------------------------------------------------------
    from repro import LDPCompassProtocol
    from repro.join import exact_cyclic_join_size

    domain = 256
    cyc_gen = ZipfGenerator(domain, alpha=1.4)
    rng = ensure_rng(5)
    tables = [
        (cyc_gen.sample(200_000, rng), cyc_gen.sample(200_000, rng)) for _ in range(3)
    ]
    truth = exact_cyclic_join_size(tables, [domain] * 3)
    # Fewer replicas than the chain case: every client feeds exactly one
    # replica, so 2-D cycle sketches want dense replicas over deep ones.
    protocol = LDPCompassProtocol([128, 128, 128], k=9, epsilon=4.0, seed=6)
    built = [
        protocol.build_cycle_table(i, protocol.encode_cycle_table(i, left, right, rng))
        for i, (left, right) in enumerate(tables)
    ]
    estimate = protocol.estimate_cycle(built)
    print("\ntriangle query T1(A,B) |x| T2(B,C) |x| T3(C,A):")
    print(f"exact: {truth:,}   LDP (eps=4): {estimate:,.0f}  "
          f"(RE {abs(estimate - truth) / truth:.2%})")


if __name__ == "__main__":
    main()
