"""Streaming collection: cohorts, shards, and queries between waves.

Real collectors don't see all clients at once — reports arrive in cohorts
(daily app-telemetry uploads, say) and are often ingested by several
server shards in parallel.  :class:`LDPJoinSketchAggregator` supports
exactly this: ingestion is a pre-transform sum, so shards merge losslessly
and the join query can be answered after every wave, watching the estimate
sharpen as data accumulates.

Run:  python examples/streaming_collection.py
"""

import numpy as np

from repro.core import LDPJoinSketchAggregator, SketchParams, encode_reports
from repro.data import ZipfGenerator
from repro.hashing import HashPairs
from repro.join import exact_join_size
from repro.rng import ensure_rng, spawn


def main() -> None:
    domain = 4096
    params = SketchParams(k=18, m=1024, epsilon=4.0)
    generator = ZipfGenerator(domain, alpha=1.4)
    rng = ensure_rng(1)

    # The server publishes one set of hash pairs for the collection period.
    pairs = HashPairs(params.k, params.m, spawn(rng))
    collector_a = LDPJoinSketchAggregator(params, pairs)
    collector_b = LDPJoinSketchAggregator(params, pairs)

    all_a, all_b = [], []
    print(f"{'day':>4s} {'clients so far':>15s} {'estimate':>15s} {'true so far':>15s} {'RE':>8s}")
    for day in range(1, 8):
        # Each day, a fresh cohort of clients reports once, split over two
        # ingestion shards which are merged into the day's collector state.
        cohort_a = generator.sample(60_000, rng)
        cohort_b = generator.sample(60_000, rng)
        all_a.append(cohort_a)
        all_b.append(cohort_b)

        for collector, cohort in ((collector_a, cohort_a), (collector_b, cohort_b)):
            half = cohort.size // 2
            shard1 = LDPJoinSketchAggregator(params, pairs)
            shard1.ingest(encode_reports(cohort[:half], params, pairs, rng))
            shard2 = LDPJoinSketchAggregator(params, pairs)
            shard2.ingest(encode_reports(cohort[half:], params, pairs, rng))
            collector.merge(shard1).merge(shard2)

        estimate = collector_a.join_size(collector_b)
        truth = exact_join_size(np.concatenate(all_a), np.concatenate(all_b), domain)
        re = abs(estimate - truth) / truth
        print(
            f"{day:4d} {collector_a.num_reports:15,d} {estimate:15,.0f} "
            f"{truth:15,d} {re:8.2%}"
        )

    print("\nThe estimate is queryable after every wave; shard merging is")
    print("lossless because ingestion is a pre-transform linear sum.")


if __name__ == "__main__":
    main()
