"""Streaming collection: cohorts, shards, and queries between waves.

Real collectors don't see all clients at once — reports arrive in cohorts
(daily app-telemetry uploads, say) and are often ingested by several
server shards in parallel.  :class:`repro.api.JoinSession` supports
exactly this: ingestion is a pre-transform integer sum, so shards merge
losslessly (bit-for-bit identical to a single collector) and the join
query can be answered after every wave, watching the estimate sharpen as
data accumulates.

Run:  python examples/streaming_collection.py
"""

import numpy as np

from repro import JoinSession, SketchParams
from repro.data import ZipfGenerator
from repro.join import exact_join_size
from repro.rng import ensure_rng


def main() -> None:
    domain = 4096
    params = SketchParams(k=18, m=1024, epsilon=4.0)
    generator = ZipfGenerator(domain, alpha=1.4)
    rng = ensure_rng(1)

    # The coordinator publishes one set of hash pairs for the collection
    # period; every shard spawned from it shares them.
    coordinator = JoinSession(params, seed=2)

    all_a, all_b = [], []
    print(f"{'day':>4s} {'clients so far':>15s} {'estimate':>15s} {'true so far':>15s} {'RE':>8s}")
    for day in range(1, 8):
        # Each day, a fresh cohort of clients reports once, split over two
        # ingestion shards which are merged back into the coordinator.
        cohort_a = generator.sample(60_000, rng)
        cohort_b = generator.sample(60_000, rng)
        all_a.append(cohort_a)
        all_b.append(cohort_b)

        shard1 = coordinator.spawn_shard(seed=int(rng.integers(2**31)))
        shard2 = coordinator.spawn_shard(seed=int(rng.integers(2**31)))
        half_a, half_b = cohort_a.size // 2, cohort_b.size // 2
        shard1.collect("A", cohort_a[:half_a])
        shard1.collect("B", cohort_b[:half_b])
        shard2.collect("A", cohort_a[half_a:])
        shard2.collect("B", cohort_b[half_b:])
        coordinator.merge(shard1).merge(shard2)

        result = coordinator.estimate("A", "B")
        truth = exact_join_size(np.concatenate(all_a), np.concatenate(all_b), domain)
        re = abs(result.estimate - truth) / truth
        print(
            f"{day:4d} {coordinator.num_reports('A'):15,d} {result.estimate:15,.0f} "
            f"{truth:15,d} {re:8.2%}"
        )

    print("\nThe estimate is queryable after every wave; shard merging is")
    print("lossless because ingestion is a pre-transform integer sum —")
    print("a merged session is bit-for-bit the single-collector state.")


if __name__ == "__main__":
    main()
