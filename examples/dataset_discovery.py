"""Private dataset discovery: find joinable columns (intro scenario 2).

A hospital holds a query column (patient genome-panel ids) and wants to
find, among a genetics company's catalogue of columns, the ones it joins
most strongly with — before any data-sharing agreement exists.  Join size
estimation under LDP lets both sides rank candidate columns without
exchanging raw values.  The estimator is obtained from the registry, so
swapping the method is a one-string change (try ``"ldpjs+"`` or
``"hcms"``).

Run:  python examples/dataset_discovery.py
"""

from repro.api import get_estimator
from repro.data import EgoNetworkGenerator, GaussianGenerator, TPCDSStoreSalesGenerator, ZipfGenerator
from repro.data.base import JoinInstance
from repro.join import exact_join_size


def main() -> None:
    domain = 16_384
    n = 150_000
    epsilon = 4.0
    estimator = get_estimator("ldp-join-sketch", k=18, m=1024)

    # The hospital's query column.
    query = ZipfGenerator(domain, alpha=1.3).sample(n, rng=1)

    # The company's catalogue: populations truncated/lifted onto the shared
    # id domain, with varying overlap against the query column.
    catalogue = {
        "panel_results (same cohort)": ZipfGenerator(domain, alpha=1.3).sample(n, rng=2),
        "panel_results (older assay)": ZipfGenerator(domain, alpha=1.7).sample(n, rng=3),
        "billing_codes": TPCDSStoreSalesGenerator(domain).sample(n, rng=4),
        "visit_timestamps": GaussianGenerator(domain).sample(n, rng=5),
        "referral_graph": EgoNetworkGenerator(domain, gamma=2.2).sample(n, rng=6),
    }

    print(f"{'candidate column':30s} {'exact join':>14s} {'LDP estimate':>14s} {'RE':>8s}")
    ranked = []
    for idx, (name, column) in enumerate(catalogue.items()):
        truth = exact_join_size(query, column, domain)
        instance = JoinInstance(name, query, column, domain)
        result = estimator.estimate(instance, epsilon, seed=100 + idx)
        re = abs(result.estimate - truth) / truth
        ranked.append((result.estimate, name))
        print(f"{name:30s} {truth:14,d} {result.estimate:14,.0f} {re:8.2%}")

    ranked.sort(reverse=True)
    print("\nPrivately ranked join candidates:")
    for rank, (estimate, name) in enumerate(ranked, start=1):
        print(f"  {rank}. {name}  (~{max(estimate, 0):,.0f} joining pairs)")

    print("\nStrong join candidates are identified reliably; columns whose")
    print("true join size sits below the LDP noise floor (here ~10^7) are")
    print("indistinguishable from 'no join' — the privacy we paid for.")


if __name__ == "__main__":
    main()
