"""Seeded random-number-generator utilities.

Reproducibility is a first-class requirement for an experimental library:
every stochastic component (hash-function sampling, client perturbation,
data generation, user sampling) accepts either an integer seed or a
:class:`numpy.random.Generator`.  The helpers here normalise those inputs
and derive independent child generators so that, for example, the hash
functions of a sketch and the perturbation noise of its clients never share
a stream.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["RandomState", "ensure_rng", "spawn", "spawn_many", "derive_seed"]

#: Anything accepted where randomness is required.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a nondeterministically seeded generator; an ``int`` or a
    :class:`numpy.random.SeedSequence` yields a deterministic one; an
    existing generator is passed through unchanged (not copied).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot interpret {seed!r} as a random state")


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive one independent child generator from ``rng``."""
    return np.random.default_rng(rng.integers(0, 2**63 - 1))


def spawn_many(rng: np.random.Generator, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit integer seed from ``rng``."""
    return int(rng.integers(0, 2**63 - 1))
