"""The one result type of the unified estimation API.

Every entry point — registry estimators, :class:`~repro.api.JoinSession`
queries, the deprecated ``run_*`` drivers — returns the same frozen
:class:`EstimateResult`: the estimate plus the cost accounting the
experiments track (offline/online wall time, uplink bits, server-side
sketch memory, per-user-group privacy charges).  It replaces the three
historical result dataclasses (``JoinEstimate``, ``PlusEstimate``,
``MethodResult``), which survive as aliases.

Method-specific artefacts (the frequent-item set of LDPJoinSketch+, the
per-phase bit counts, partial estimates, ...) travel in :attr:`extras` and
remain reachable as attributes, so ``result.frequent_items`` keeps working
for callers of the two-phase protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from ..privacy.budget import BudgetLedger

__all__ = ["EstimateResult"]


@dataclass(frozen=True)
class EstimateResult:
    """An estimate with the full cost accounting of producing it."""

    estimate: float
    """The estimated quantity (join size, chain size, frequency, ...)."""

    offline_seconds: float = 0.0
    """Time to perturb all reports and construct the sketches."""

    online_seconds: float = 0.0
    """Time to answer the query from the constructed sketches."""

    uplink_bits: int = 0
    """Total client-to-server communication."""

    sketch_bytes: int = 0
    """Server-side memory held by the constructed sketches."""

    ledger: Optional[BudgetLedger] = None
    """Per-user-group privacy charges of the run (``None`` for
    non-private baselines)."""

    extras: Mapping[str, Any] = field(default_factory=dict)
    """Method-specific artefacts, also reachable as attributes."""

    def __post_init__(self) -> None:
        # Copy so later mutation of the caller's dict cannot alter a
        # published result.
        object.__setattr__(self, "extras", dict(self.extras))

    def __getattr__(self, name: str) -> Any:
        # Only called for attributes the dataclass does not define;
        # fall through to the extras mapping so protocol-specific fields
        # (e.g. ``frequent_items``) read like plain attributes.
        if name.startswith("__"):
            raise AttributeError(name)
        extras: Dict[str, Any] = object.__getattribute__(self, "extras")
        try:
            return extras[name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__} has no field or extra {name!r}"
            ) from None

    def with_costs(
        self,
        *,
        offline_seconds: Optional[float] = None,
        online_seconds: Optional[float] = None,
        uplink_bits: Optional[int] = None,
        sketch_bytes: Optional[int] = None,
        ledger: Optional[BudgetLedger] = None,
    ) -> "EstimateResult":
        """A copy with some accounting fields replaced (estimate kept)."""
        changes: Dict[str, Any] = {}
        if offline_seconds is not None:
            changes["offline_seconds"] = offline_seconds
        if online_seconds is not None:
            changes["online_seconds"] = online_seconds
        if uplink_bits is not None:
            changes["uplink_bits"] = uplink_bits
        if sketch_bytes is not None:
            changes["sketch_bytes"] = sketch_bytes
        if ledger is not None:
            changes["ledger"] = ledger
        return replace(self, **changes)
