"""Streaming, shardable collection sessions — one sketch, many queries.

A :class:`JoinSession` is the server side of one collection period.  It
owns the published hash pairs (one :class:`~repro.hashing.HashPairs` per
join attribute), ingests client reports incrementally per named *stream*
(a table's join column), merges losslessly with sibling shards, and
answers join-size / chain / frequency queries between waves — returning
the unified :class:`EstimateResult` with full cost accounting.

Three properties make this the production path the paper implies:

* **Incremental** — :meth:`collect` folds batches into a *pre-transform
  integer* accumulator (each report contributes ``y in {-1, +1}`` to one
  cell), so ingestion is O(batch) and exact; the debiasing scale and the
  Hadamard inversion are applied only when a query materialises a sketch.
  Simulated cohorts take the fused encode→accumulate fast path
  (:func:`repro.core.client.encode_reports_into`): clients are perturbed
  and folded in ``chunk_size`` slices straight into the accumulator, so
  peak memory stays chunk-bounded no matter how many clients report.
* **Mergeable** — because the accumulator is an integer sum, shards built
  on shared pairs merge associatively and *bit-for-bit* reproduce the
  single-collector state: ``shard_1 + shard_2`` is the same array as one
  session that saw both batches.  :meth:`spawn_shard` / :meth:`merge`
  implement scatter/gather collection.
* **Portable** — :meth:`to_dict` / :meth:`from_dict` round-trip the whole
  session state (pairs included) through plain JSON-compatible data, so
  shards can live in different processes or machines.  Accumulators are
  packed as base64-encoded raw bytes with a dtype/shape header (compact
  and O(1) Python objects per array); payloads written by older versions,
  which shipped nested lists, still load transparently.

Two-way joins need no schema: ``collect("A", ...)``, ``collect("B", ...)``,
``estimate()``.  Multiway chains declare one width per join attribute and
add middle tables with :meth:`collect_pair`; :meth:`estimate_chain`
evaluates Eq. (27).
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..accumulate import scatter_add_signed_units
from ..backend import resolve_backend, use_backend
from ..core.client import DEFAULT_CHUNK_SIZE, ReportBatch, encode_reports_into
from ..core.multiway import (
    LDPCompassProtocol,
    LDPMiddleSketch,
    MiddleReportBatch,
    finalize_middle_counts,
)
from ..core.params import SketchParams
from ..core.server import LDPJoinSketch
from ..errors import IncompatibleSketchError, ParameterError, ProtocolError
from ..hashing import HashPairs
from ..privacy.budget import BudgetLedger
from ..reliability.faults import fault_point
from ..rng import RandomState, ensure_rng
from ..serialization import decode_array, encode_array
from ..transform.hadamard import fwht_inplace
from .result import EstimateResult

__all__ = ["JoinSession"]

#: Process-wide counter giving each session a unique label for ledger groups.
_SESSION_IDS = itertools.count(1)


class _EndStream:
    """Accumulator of one single-attribute stream (end table)."""

    __slots__ = ("attribute", "raw", "num_reports", "uplink_bits", "cohorts", "cached")

    def __init__(self, attribute: int, k: int, m: int) -> None:
        self.attribute = attribute
        self.raw = np.zeros((k, m), dtype=np.int64)
        self.num_reports = 0
        self.uplink_bits = 0
        self.cohorts = 0
        self.cached: Optional[LDPJoinSketch] = None


class _MiddleStream:
    """Accumulator of one two-attribute stream (middle table)."""

    __slots__ = (
        "left_attribute",
        "raw",
        "num_reports",
        "uplink_bits",
        "cohorts",
        "cached",
    )

    def __init__(self, left_attribute: int, k: int, m_left: int, m_right: int) -> None:
        self.left_attribute = left_attribute
        self.raw = np.zeros((k, m_left, m_right), dtype=np.int64)
        self.num_reports = 0
        self.uplink_bits = 0
        self.cohorts = 0
        self.cached: Optional[LDPMiddleSketch] = None


_StreamState = Union[_EndStream, _MiddleStream]


class JoinSession:
    """One collection period: shared hash pairs, named streams, queries.

    Parameters
    ----------
    params:
        Sketch depth ``k`` and privacy budget ``epsilon`` of every stream;
        ``params.m`` is the width of the (single) join attribute unless
        ``attribute_widths`` overrides it.
    attribute_widths:
        Optional width per join attribute for chain schemas (each a power
        of two).  Defaults to ``[params.m]`` — a plain two-way join.
    seed:
        Master seed: draws the hash pairs (when not shared via ``pairs``)
        and the default client-simulation randomness.
    pairs:
        Pre-built hash pairs to share with sibling shards; normally
        obtained from a coordinator session via :attr:`pairs` or
        :meth:`spawn_shard`.
    backend:
        Compute-backend pin (``"numpy"``, ``"numba"``, a live
        :class:`repro.backend.Backend`, or ``None`` to follow the
        process-wide selection).  Every ingest and sketch
        materialisation of this session runs scoped to it.  A runtime
        preference, not state: it does not travel through
        :meth:`to_dict` and does not affect mergeability — shards built
        on different backends produce bit-identical accumulators.
    """

    def __init__(
        self,
        params: SketchParams,
        *,
        attribute_widths: Optional[Sequence[int]] = None,
        seed: RandomState = None,
        pairs: Optional[Sequence[HashPairs]] = None,
        backend=None,
    ) -> None:
        self.params = params
        if backend is not None:
            # Fail at construction on a backend typo (the spec itself is
            # kept, not the resolved instance — names stay picklable).
            resolve_backend(backend)
        self.backend = backend
        self._rng = ensure_rng(seed)
        # The protocol owns (and validates) the pairs: shared ones must
        # match params.k and any declared widths; fresh ones are drawn
        # per attribute from the session generator.
        if pairs is not None:
            self._protocol = LDPCompassProtocol(
                () if attribute_widths is None else list(attribute_widths),
                params.k,
                params.epsilon,
                pairs=list(pairs),
            )
        else:
            widths = [params.m] if attribute_widths is None else list(attribute_widths)
            self._protocol = LDPCompassProtocol(
                widths, params.k, params.epsilon, seed=self._rng
            )
        self._pairs: List[HashPairs] = self._protocol.attribute_pairs
        self._streams: Dict[str, _StreamState] = {}
        self.ledger = BudgetLedger()
        self.offline_seconds = 0.0
        self._label = f"shard{next(_SESSION_IDS)}"

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> Tuple[HashPairs, ...]:
        """The published hash pairs, one per join attribute."""
        return tuple(self._pairs)

    @property
    def num_attributes(self) -> int:
        """Number of join attributes in the session's schema."""
        return len(self._pairs)

    def streams(self) -> Tuple[str, ...]:
        """Stream names in insertion order."""
        return tuple(self._streams)

    def num_reports(self, stream: str) -> int:
        """Reports ingested so far for ``stream``."""
        return self._state(stream).num_reports

    def params_for(self, attribute: int) -> SketchParams:
        """The :class:`SketchParams` of one attribute's sketches."""
        if not 0 <= attribute < self.num_attributes:
            raise ParameterError(
                f"attribute must lie in [0, {self.num_attributes}), got {attribute}"
            )
        return SketchParams(self.params.k, self._pairs[attribute].m, self.params.epsilon)

    def spawn_shard(self, seed: RandomState = None) -> "JoinSession":
        """An empty sibling session sharing this session's pairs.

        Shards ingest independently (in other threads, processes or
        machines — see :meth:`to_dict`) and are folded back with
        :meth:`merge`.  The shard inherits this session's backend pin.
        """
        return JoinSession(
            self.params, seed=seed, pairs=self._pairs, backend=self.backend
        )

    def shard_fingerprint(self) -> dict:
        """The merge-compatibility fingerprint of this collection period.

        Everything two shards must share for their accumulators to sum
        into a valid sketch: shape, budget, the attribute schema and a
        digest of the published hash pairs.  Used by
        :meth:`to_partial` / :meth:`merge` to refuse unsafe merges
        (wrong seed, wrong ``m``, wrong ``epsilon``) at the wire level.
        """
        from ..distributed.partial import fingerprint_digest

        return {
            "k": self.params.k,
            "m": self.params.m,
            "privacy budget (epsilon)": self.params.epsilon,
            "attribute widths": [p.m for p in self._pairs],
            "hash pairs digest": fingerprint_digest(
                [p.to_dict() for p in self._pairs]
            ),
        }

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def collect(
        self,
        stream: str,
        values: Union[np.ndarray, Sequence[int], ReportBatch],
        *,
        attribute: int = 0,
        seed: RandomState = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "JoinSession":
        """Fold one cohort of an end table into ``stream``.

        ``values`` is either raw client values (the session simulates the
        Algorithm 1 clients, drawing randomness from ``seed`` or the
        session generator) or a pre-encoded :class:`ReportBatch` received
        from real clients.  Cohorts are disjoint user groups, so each
        ``collect`` call composes in parallel on the privacy ledger.

        Simulated cohorts route through the fused
        :func:`~repro.core.client.encode_reports_into` kernel, which
        encodes and accumulates ``chunk_size`` clients at a time — peak
        transient memory is O(``chunk_size``), independent of the cohort
        size.  Lower ``chunk_size`` to cap memory tighter, raise it to
        shave per-chunk dispatch overhead; the estimate distribution is
        identical either way.
        """
        fault_point("session.ingest", stream=str(stream), attribute=int(attribute))
        start = time.perf_counter()
        state = self._end_state(stream, attribute)
        expected = self.params_for(state.attribute)
        if isinstance(values, ReportBatch):
            batch = values
            if batch.params != expected:
                raise IncompatibleSketchError(
                    f"report batch parameters {batch.params} do not match "
                    f"attribute {state.attribute} parameters {expected}"
                )
            num_new = len(batch)
            if num_new:
                with use_backend(self.backend):
                    scatter_add_signed_units(
                        state.raw, (batch.rows, batch.cols), batch.ys
                    )
        else:
            rng = self._rng if seed is None else ensure_rng(seed)
            num_new = encode_reports_into(
                values,
                expected,
                self._pairs[state.attribute],
                state.raw,
                rng,
                chunk_size=chunk_size,
                backend=self.backend,
            )
        if num_new:
            state.num_reports += num_new
            state.uplink_bits += num_new * expected.report_bits
            self._charge(stream, state, "LDPJoinSketch")
            state.cached = None
        self.offline_seconds += time.perf_counter() - start
        return self

    def collect_pair(
        self,
        stream: str,
        left_values: Union[np.ndarray, Sequence[int], MiddleReportBatch],
        right_values: Optional[Union[np.ndarray, Sequence[int]]] = None,
        *,
        left_attribute: int = 0,
        seed: RandomState = None,
    ) -> "JoinSession":
        """Fold one cohort of a two-attribute middle table into ``stream``.

        The table joins attribute ``left_attribute`` on its left column
        and ``left_attribute + 1`` on its right.  Accepts either the two
        raw columns or a pre-encoded :class:`MiddleReportBatch`.
        """
        start = time.perf_counter()
        state = self._middle_state(stream, left_attribute)
        left_pairs = self._pairs[state.left_attribute]
        right_pairs = self._pairs[state.left_attribute + 1]
        if isinstance(left_values, MiddleReportBatch):
            if right_values is not None:
                raise ParameterError(
                    "pass either a MiddleReportBatch or two value columns, not both"
                )
            batch = left_values
            if (
                batch.k != self.params.k
                or batch.m_left != left_pairs.m
                or batch.m_right != right_pairs.m
                or batch.epsilon != self.params.epsilon
            ):
                raise IncompatibleSketchError(
                    "middle report batch does not match the session schema"
                )
        else:
            if right_values is None:
                raise ParameterError("middle-table collection needs both value columns")
            rng = self._rng if seed is None else ensure_rng(seed)
            with use_backend(self.backend):
                batch = self._protocol.encode_middle(
                    state.left_attribute, left_values, right_values, rng
                )
        if len(batch):
            with use_backend(self.backend):
                scatter_add_signed_units(
                    state.raw,
                    (batch.replicas, batch.left_cols, batch.right_cols),
                    batch.ys,
                )
            state.num_reports += len(batch)
            state.uplink_bits += batch.total_bits
            self._charge(stream, state, "LDP-COMPASS")
            state.cached = None
        self.offline_seconds += time.perf_counter() - start
        return self

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def collect_sharded(
        self,
        stream: str,
        values: Union[np.ndarray, Sequence[int]],
        *,
        num_shards: int = 1,
        strategy: str = "hash",
        seed: RandomState = None,
        attribute: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "JoinSession":
        """Fold one cohort as ``num_shards`` deterministic shard cohorts.

        This is the *single-aggregator reference* of sharded collection:
        the population is partitioned by a
        :class:`~repro.distributed.ShardPlanner` and each shard's slice
        is ingested with that shard's derived seed — exactly the
        randomness the shard's own aggregator would draw.  A distributed
        run (shard sessions emitting
        :class:`~repro.distributed.PartialAggregate`\\ s, reduced by
        :func:`~repro.distributed.merge_tree`) therefore reproduces this
        session's accumulators byte for byte, for any merge topology.

        ``num_shards=1`` delegates straight to :meth:`collect` — the
        identity plan — so one-shard collection reproduces the unsharded
        figures bit for bit (``seed=None`` keeps using the session
        stream).
        """
        from ..distributed.planner import ShardPlanner

        if num_shards == 1:
            return self.collect(
                stream, values, attribute=attribute, seed=seed, chunk_size=chunk_size
            )
        planner = ShardPlanner(num_shards, strategy=strategy)
        shard_seeds = planner.shard_seeds(
            self._rng if seed is None else ensure_rng(seed)
        )
        for shard_values, shard_seed in zip(planner.split(values), shard_seeds):
            self.collect(
                stream,
                shard_values,
                attribute=attribute,
                seed=shard_seed,
                chunk_size=chunk_size,
            )
        return self

    def to_partial(self, *, include_timing: bool = True) -> "PartialAggregate":
        """This session's state as a mergeable wire partial.

        The partial carries the pre-transform integer accumulators, the
        additive accounting and the privacy-ledger charges, fingerprinted
        by :meth:`shard_fingerprint` — everything another aggregator
        needs to fold this shard in safely, at a fraction of the
        :meth:`to_dict` payload (no hash-pair coefficients, just their
        digest).  Feed it to :meth:`merge`, a
        :func:`~repro.distributed.merge_tree`, or a
        :class:`~repro.distributed.ShardCheckpoint`.

        ``include_timing=False`` drops the wall-clock ``offline_seconds``
        counter — the one field of a partial that varies between
        otherwise identical runs.  Callers that need *byte*-identical
        payloads (the online service publishing canonical snapshots)
        exclude it; accounting flows keep the default.
        """
        from ..distributed.partial import PartialAggregate

        partial = PartialAggregate(
            "join-session",
            self.shard_fingerprint(),
            counters=(
                {"offline_seconds": self.offline_seconds} if include_timing else {}
            ),
            meta={
                "streams": {
                    name: {
                        "kind": "end" if isinstance(state, _EndStream) else "middle",
                        "attribute": (
                            state.attribute
                            if isinstance(state, _EndStream)
                            else state.left_attribute
                        ),
                    }
                    for name, state in self._streams.items()
                },
                "charges": [list(charge) for charge in self.ledger.charges],
            },
        )
        for name, state in self._streams.items():
            # Snapshot, not alias: the session keeps ingesting after the
            # partial is emitted, and an in-place scatter-add must never
            # retroactively mutate an already-shipped payload.
            partial.add_array(f"stream:{name}:raw", state.raw.copy())
            partial.counters[f"stream:{name}:num_reports"] = float(state.num_reports)
            partial.counters[f"stream:{name}:uplink_bits"] = float(state.uplink_bits)
            partial.counters[f"stream:{name}:cohorts"] = float(state.cohorts)
        return partial

    def _merge_partial(self, partial: "PartialAggregate") -> "JoinSession":
        """Fold a shard's :class:`PartialAggregate` into this session."""
        from ..errors import require_merge_compatible

        mine = self.shard_fingerprint()
        require_merge_compatible(
            "join-session partials",
            method=("join-session", partial.method),
            **{key: (mine[key], partial.fingerprint.get(key)) for key in mine},
        )
        for name, entry in partial.meta.get("streams", {}).items():
            attribute = int(entry["attribute"])
            if entry["kind"] == "end":
                state: _StreamState = self._end_state(name, attribute)
            else:
                state = self._middle_state(name, attribute)
            raw = partial.arrays[f"stream:{name}:raw"]
            if raw.shape != state.raw.shape:
                raise IncompatibleSketchError(
                    f"partial stream {name!r} accumulator shaped {raw.shape}, "
                    f"expected {state.raw.shape}"
                )
            state.raw += raw
            state.num_reports += int(partial.counters[f"stream:{name}:num_reports"])
            state.uplink_bits += int(partial.counters[f"stream:{name}:uplink_bits"])
            state.cohorts += int(partial.counters[f"stream:{name}:cohorts"])
            state.cached = None
        # Shard charges describe disjoint cohorts; colliding group names
        # are renamed (probe-until-unique) so parallel — not sequential —
        # composition applies, same rule as session merge.
        self.ledger.absorb(partial.meta.get("charges", []), label="partial")
        self.offline_seconds += float(partial.counters.get("offline_seconds", 0.0))
        return self

    def merge(self, other) -> "JoinSession":
        """Fold another shard's state into this session. Returns self.

        ``other`` is either a sibling :class:`JoinSession` or a
        :class:`~repro.distributed.PartialAggregate` produced by
        :meth:`to_partial` (possibly already the reduction of a whole
        merge tree).  Requires identical :class:`SketchParams` and
        identical hash pairs for every attribute (the same checks
        :meth:`LDPJoinSketch.check_mergeable` applies to constructed
        sketches); raises :class:`IncompatibleSketchError` otherwise.
        The pre-transform sum is exact, so a merged session is
        indistinguishable — bit for bit — from one that ingested every
        batch itself.
        """
        from ..distributed.partial import PartialAggregate

        if isinstance(other, PartialAggregate):
            return self._merge_partial(other)
        if not isinstance(other, JoinSession):
            raise IncompatibleSketchError(
                f"cannot merge JoinSession with {type(other).__name__}"
            )
        if other is self:
            raise IncompatibleSketchError(
                "cannot merge a session with itself (shards are distinct objects)"
            )
        if self.params != other.params:
            raise IncompatibleSketchError(
                f"cannot merge sessions with mismatched parameters (shape or "
                f"privacy budget): {self.params} vs {other.params}"
            )
        if len(self._pairs) != len(other._pairs) or any(
            a != b for a, b in zip(self._pairs, other._pairs)
        ):
            raise IncompatibleSketchError(
                "sessions use different hash pairs; sharded collection requires "
                "pairs published once and shared by every shard"
            )
        for name, theirs in other._streams.items():
            mine = self._streams.get(name)
            if mine is None:
                mine = self._fresh_like(theirs)
                self._streams[name] = mine
            else:
                if type(mine) is not type(theirs):
                    raise IncompatibleSketchError(
                        f"stream {name!r} is an end table in one session and a "
                        f"middle table in the other"
                    )
                their_attr = (
                    theirs.attribute
                    if isinstance(theirs, _EndStream)
                    else theirs.left_attribute
                )
                my_attr = (
                    mine.attribute if isinstance(mine, _EndStream) else mine.left_attribute
                )
                if my_attr != their_attr:
                    raise IncompatibleSketchError(
                        f"stream {name!r} is bound to different join attributes "
                        f"({my_attr} vs {their_attr})"
                    )
            mine.raw += theirs.raw
            mine.num_reports += theirs.num_reports
            mine.uplink_bits += theirs.uplink_bits
            mine.cohorts += theirs.cohorts
            mine.cached = None
        # Disjoint-cohort charges: absorb probes colliding group names
        # until unique, so merging shards that share a label (sessions
        # rebuilt via from_dict in separate processes used to reboot with
        # colliding counter labels) cannot collapse two cohorts into one
        # group and double the reported worst-case spend.
        self.ledger.absorb(other.ledger.charges, label=other._label)
        self.offline_seconds += other.offline_seconds
        return self

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def sketch(self, stream: str) -> LDPJoinSketch:
        """The constructed :class:`LDPJoinSketch` of an end stream."""
        state = self._state(stream)
        if not isinstance(state, _EndStream):
            raise ProtocolError(f"stream {stream!r} is a middle table, not an end table")
        if state.num_reports == 0:
            raise ProtocolError(f"stream {stream!r} has no reports yet")
        if state.cached is None:
            params = self.params_for(state.attribute)
            # One transient: scale the float copy in place, transform in
            # place.  The result is cached until the next collect/merge
            # invalidates it, so back-to-back queries never re-run the
            # FWHT.
            counts = state.raw.astype(np.float64)
            counts *= params.scale
            with use_backend(self.backend):
                fwht_inplace(counts)
            state.cached = LDPJoinSketch(
                params, self._pairs[state.attribute], counts, state.num_reports
            )
        return state.cached

    def middle_sketch(self, stream: str) -> LDPMiddleSketch:
        """The constructed :class:`LDPMiddleSketch` of a middle stream."""
        state = self._state(stream)
        if not isinstance(state, _MiddleStream):
            raise ProtocolError(f"stream {stream!r} is an end table, not a middle table")
        if state.num_reports == 0:
            raise ProtocolError(f"stream {stream!r} has no reports yet")
        if state.cached is None:
            scaled = state.raw.astype(np.float64)
            scaled *= self.params.scale
            with use_backend(self.backend):
                counts = finalize_middle_counts(scaled)
            state.cached = LDPMiddleSketch(
                self._pairs[state.left_attribute],
                self._pairs[state.left_attribute + 1],
                counts,
                self.params.epsilon,
                state.num_reports,
            )
        return state.cached

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(
        self, stream_a: Optional[str] = None, stream_b: Optional[str] = None
    ) -> EstimateResult:
        """Eq. (5) join-size estimate between two end streams.

        With no arguments the session must hold exactly two end streams
        (the common two-way case); both streams must share the same join
        attribute.
        """
        name_a, name_b = self._resolve_pair(stream_a, stream_b)
        if name_a == name_b:
            raise ProtocolError(
                f"estimate({name_a!r}, {name_b!r}) would multiply a sketch by "
                f"itself, where the per-report noise does not cancel; use "
                f"second_moment({name_a!r}) for debiased self-joins"
            )
        state_a = self._state(name_a)
        state_b = self._state(name_b)
        for name, state in ((name_a, state_a), (name_b, state_b)):
            if not isinstance(state, _EndStream):
                raise ProtocolError(
                    f"stream {name!r} is a middle table; estimate() joins two "
                    f"end tables (use estimate_chain for multiway queries)"
                )
        if state_a.attribute != state_b.attribute:
            raise ProtocolError(
                f"streams {name_a!r} and {name_b!r} are bound to different join "
                f"attributes; use estimate_chain for multiway queries"
            )
        sketch_a = self.sketch(name_a)
        sketch_b = self.sketch(name_b)
        start = time.perf_counter()
        estimate = sketch_a.join_size(sketch_b)
        online = time.perf_counter() - start
        return EstimateResult(
            estimate=estimate,
            offline_seconds=self.offline_seconds,
            online_seconds=online,
            uplink_bits=state_a.uplink_bits + state_b.uplink_bits,
            sketch_bytes=sketch_a.memory_bytes() + sketch_b.memory_bytes(),
            ledger=self.ledger,
            extras={
                "num_reports": state_a.num_reports + state_b.num_reports,
                "streams": (name_a, name_b),
            },
        )

    def estimate_chain(self, streams: Optional[Sequence[str]] = None) -> EstimateResult:
        """Eq. (27) chain-join estimate over end/middle/.../end streams.

        ``streams`` defaults to every stream in insertion order.  The
        first and last must be end tables on the first and last join
        attributes; each middle table must bridge consecutive attributes.
        """
        names = list(streams) if streams is not None else list(self._streams)
        if len(names) < 2:
            raise ProtocolError("a chain query needs at least two streams")
        if len(set(names)) != len(names):
            # Same reason estimate() rejects identical streams: a sketch
            # multiplied by itself keeps its noise energy undebiased.
            raise ProtocolError(
                f"chain streams must be distinct, got {names}; use "
                f"second_moment for self-joins"
            )
        first_state = self._state(names[0])
        last_state = self._state(names[-1])
        for name, state, wanted in (
            (names[0], first_state, 0),
            (names[-1], last_state, self.num_attributes - 1),
        ):
            if not isinstance(state, _EndStream):
                raise ProtocolError(f"chain ends must be end tables; {name!r} is not")
            if state.attribute != wanted:
                raise ProtocolError(
                    f"chain end {name!r} is bound to attribute {state.attribute}, "
                    f"expected {wanted}"
                )
        middle_names = names[1:-1]
        for idx, name in enumerate(middle_names):
            state = self._state(name)
            if not isinstance(state, _MiddleStream):
                raise ProtocolError(f"chain middle {name!r} is not a middle table")
            if state.left_attribute != idx:
                raise ProtocolError(
                    f"chain middle {name!r} bridges attributes "
                    f"({state.left_attribute}, {state.left_attribute + 1}), "
                    f"expected ({idx}, {idx + 1})"
                )
        first = self.sketch(names[0])
        last = self.sketch(names[-1])
        middles = [self.middle_sketch(name) for name in middle_names]
        start = time.perf_counter()
        estimate = self._protocol.estimate_chain(first, middles, last)
        online = time.perf_counter() - start
        states = [self._state(name) for name in names]
        return EstimateResult(
            estimate=estimate,
            offline_seconds=self.offline_seconds,
            online_seconds=online,
            uplink_bits=sum(s.uplink_bits for s in states),
            sketch_bytes=first.memory_bytes()
            + last.memory_bytes()
            + sum(m.memory_bytes() for m in middles),
            ledger=self.ledger,
            extras={
                "num_reports": sum(s.num_reports for s in states),
                "streams": tuple(names),
            },
        )

    def frequencies(
        self, stream: str, values, *, method: str = "mean"
    ) -> np.ndarray:
        """Theorem 7 frequency estimates against one end stream."""
        return self.sketch(stream).frequencies(values, method=method)

    def second_moment(self, stream: str) -> float:
        """Debiased self-join (``F2``) estimate of one end stream."""
        return self.sketch(stream).second_moment()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise the full session state (JSON-compatible).

        Everything a remote shard needs travels along: parameters, hash
        pairs, per-stream accumulators and accounting.  Accumulators ship
        as base64-encoded raw bytes plus a dtype/shape header — roughly
        half the JSON footprint of the old ``tolist()`` payloads and no
        per-element Python objects; :meth:`from_dict` reads both the
        packed format and the legacy nested lists.
        """
        streams = {}
        for name, state in self._streams.items():
            if isinstance(state, _EndStream):
                entry = {"kind": "end", "attribute": state.attribute}
            else:
                entry = {"kind": "middle", "attribute": state.left_attribute}
            entry.update(
                raw=encode_array(state.raw),
                num_reports=state.num_reports,
                uplink_bits=state.uplink_bits,
                cohorts=state.cohorts,
            )
            streams[name] = entry
        return {
            "params": {
                "k": self.params.k,
                "m": self.params.m,
                "epsilon": self.params.epsilon,
            },
            "pairs": [p.to_dict() for p in self._pairs],
            "streams": streams,
            "charges": [list(charge) for charge in self.ledger.charges],
            "offline_seconds": self.offline_seconds,
            "label": self._label,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JoinSession":
        """Rebuild a session serialised by :meth:`to_dict`."""
        params = SketchParams(**payload["params"])
        pairs = [HashPairs.from_dict(p) for p in payload["pairs"]]
        session = cls(params, pairs=pairs)
        for name, entry in payload["streams"].items():
            k = params.k
            if entry["kind"] == "end":
                attribute = int(entry["attribute"])
                state: _StreamState = _EndStream(attribute, k, pairs[attribute].m)
            else:
                attribute = int(entry["attribute"])
                state = _MiddleStream(
                    attribute, k, pairs[attribute].m, pairs[attribute + 1].m
                )
            raw = decode_array(entry["raw"], np.int64)
            if raw.shape != state.raw.shape:
                raise ParameterError(
                    f"stream {name!r} accumulator shaped {raw.shape}, "
                    f"expected {state.raw.shape}"
                )
            state.raw = raw
            state.num_reports = int(entry["num_reports"])
            state.uplink_bits = int(entry["uplink_bits"])
            state.cohorts = int(entry["cohorts"])
            session._streams[name] = state
        session.ledger.restore(payload.get("charges", []))
        session.offline_seconds = float(payload.get("offline_seconds", 0.0))
        # Keep the serialised label: sessions rebooted in separate worker
        # processes must stay distinguishable when merged, not all reboot
        # under the restarted process-wide counter.  Legacy payloads
        # without one keep the fresh counter label from __init__.
        label = payload.get("label")
        if label:
            session._label = str(label)
        return session

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_pair(
        self, stream_a: Optional[str], stream_b: Optional[str]
    ) -> Tuple[str, str]:
        if stream_a is not None and stream_b is not None:
            return stream_a, stream_b
        if stream_a is None and stream_b is None:
            ends = [
                name
                for name, state in self._streams.items()
                if isinstance(state, _EndStream)
            ]
            if len(ends) != 2:
                raise ProtocolError(
                    f"estimate() without stream names needs exactly two end "
                    f"streams, found {ends}"
                )
            return ends[0], ends[1]
        raise ProtocolError("pass both stream names or neither")

    def _state(self, stream: str) -> _StreamState:
        try:
            return self._streams[stream]
        except KeyError:
            raise ProtocolError(
                f"unknown stream {stream!r}; collected streams: {list(self._streams)}"
            ) from None

    def _end_state(self, stream: str, attribute: int) -> _EndStream:
        self.params_for(attribute)  # bounds check
        state = self._streams.get(stream)
        if state is None:
            state = _EndStream(attribute, self.params.k, self._pairs[attribute].m)
            self._streams[stream] = state
            return state
        if not isinstance(state, _EndStream):
            raise ProtocolError(f"stream {stream!r} already collects middle tables")
        if state.attribute != attribute:
            raise ProtocolError(
                f"stream {stream!r} is bound to attribute {state.attribute}, "
                f"got {attribute}"
            )
        return state

    def _middle_state(self, stream: str, left_attribute: int) -> _MiddleStream:
        if not 0 <= left_attribute < self.num_attributes - 1:
            raise ParameterError(
                f"left_attribute must lie in [0, {self.num_attributes - 1}), "
                f"got {left_attribute}"
            )
        state = self._streams.get(stream)
        if state is None:
            state = _MiddleStream(
                left_attribute,
                self.params.k,
                self._pairs[left_attribute].m,
                self._pairs[left_attribute + 1].m,
            )
            self._streams[stream] = state
            return state
        if not isinstance(state, _MiddleStream):
            raise ProtocolError(f"stream {stream!r} already collects end tables")
        if state.left_attribute != left_attribute:
            raise ProtocolError(
                f"stream {stream!r} is bound to attributes "
                f"({state.left_attribute}, {state.left_attribute + 1}), "
                f"got left_attribute={left_attribute}"
            )
        return state

    def _fresh_like(self, other: _StreamState) -> _StreamState:
        if isinstance(other, _EndStream):
            return _EndStream(
                other.attribute, self.params.k, self._pairs[other.attribute].m
            )
        return _MiddleStream(
            other.left_attribute,
            self.params.k,
            self._pairs[other.left_attribute].m,
            self._pairs[other.left_attribute + 1].m,
        )

    def _charge(self, stream: str, state: _StreamState, mechanism: str) -> None:
        # Every cohort is a disjoint user group (parallel composition);
        # the first keeps the bare stream name so single-shot flows read
        # naturally in the ledger.
        group = stream if state.cohorts == 0 else f"{stream}#{state.cohorts + 1}"
        state.cohorts += 1
        self.ledger.charge(group, self.params.epsilon, mechanism)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        streams = ", ".join(
            f"{name}:{state.num_reports}" for name, state in self._streams.items()
        )
        return (
            f"JoinSession(k={self.params.k}, epsilon={self.params.epsilon:g}, "
            f"attributes={self.num_attributes}, streams=[{streams}])"
        )
