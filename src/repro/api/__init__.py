"""Unified estimation API: one result type, one registry, one session.

The paper's central point is that *one* private sketch answers join-size,
frequency and multiway queries.  This package gives the repo one entry
point to match:

* :class:`EstimateResult` — the single frozen result type of every
  estimator (estimate + offline/online time, uplink bits, sketch memory,
  :class:`~repro.privacy.budget.BudgetLedger`);
* the **registry** — :func:`register` / :func:`get_estimator` /
  :func:`available_estimators` hand out every method of the evaluation
  (LDPJoinSketch, LDPJoinSketch+/FAP, LDP-COMPASS, FAGMS and the k-RR /
  OLH / FLH / Apple-HCMS frequency-oracle baselines) by name;
* :class:`JoinSession` — incremental, mergeable, serialisable server-side
  collection over shared hash pairs, with ``estimate()`` /
  ``estimate_chain()`` / ``frequencies()`` queries between waves.

Quickstart::

    from repro.api import JoinSession, get_estimator
    from repro.core import SketchParams

    session = JoinSession(SketchParams(k=18, m=1024, epsilon=4.0), seed=7)
    session.collect("A", values_a)
    session.collect("B", values_b)
    print(session.estimate().estimate)

    est = get_estimator("ldpjs+", k=18, m=1024)
    print(est.estimate(instance, epsilon=4.0, seed=7).estimate)
"""

from .result import EstimateResult
from .registry import (
    JoinEstimator,
    available_estimators,
    get_estimator,
    register,
    resolve_estimator,
)
from .session import JoinSession

# The concrete estimator classes live in .estimators, which imports the
# core protocol modules; those in turn import .result for the unified
# result type.  Loading .estimators lazily (PEP 562) keeps that cycle
# open — the registry itself pulls the module in on first lookup.
_ESTIMATOR_EXPORTS = (
    "BaseEstimator",
    "FAGMSEstimator",
    "KRREstimator",
    "FLHEstimator",
    "HCMSEstimator",
    "OLHEstimator",
    "LDPJoinSketchEstimator",
    "LDPJoinSketchPlusEstimator",
    "CompassEstimator",
    "run_join_sketch",
    "run_join_sketch_trials",
    "run_join_sketch_trial_group",
    "run_join_sketch_plus",
)

__all__ = [
    "EstimateResult",
    "JoinEstimator",
    "register",
    "get_estimator",
    "available_estimators",
    "resolve_estimator",
    "JoinSession",
    *_ESTIMATOR_EXPORTS,
]


def __getattr__(name: str):
    if name in _ESTIMATOR_EXPORTS:
        from . import estimators

        return getattr(estimators, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
