"""String-keyed registry of join-size estimators.

One private sketch serves many analyses, so the package serves many
estimators through one interface: anything satisfying the
:class:`JoinEstimator` protocol can be registered under a canonical name
(plus aliases) and later instantiated with :func:`get_estimator`.  The
experiment harness, the CLI and the examples all dispatch through this
registry instead of hard-coding per-method adapters.

Names are case-insensitive and separator-insensitive: ``"LDPJoinSketch+"``,
``"ldpjs-plus"`` and ``"ldp_join_sketch_plus"`` resolve to the same
factory.

>>> from repro.api import available_estimators, get_estimator
>>> "ldp-join-sketch" in available_estimators()
True
>>> get_estimator("LDPJoinSketch").name
'LDPJoinSketch'
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Protocol, Tuple, runtime_checkable

from ..errors import UnknownEstimatorError
from ..rng import RandomState
from .result import EstimateResult

__all__ = [
    "JoinEstimator",
    "register",
    "get_estimator",
    "available_estimators",
    "resolve_estimator",
]


@runtime_checkable
class JoinEstimator(Protocol):
    """What the registry hands out: a join-size estimation method.

    Implementations turn a :class:`~repro.data.base.JoinInstance` and a
    privacy budget into an :class:`EstimateResult`.  ``name`` is the
    display name used in result tables (matching the paper's figure
    legends); ``private`` states whether the method carries an LDP
    guarantee.
    """

    name: str
    private: bool

    def estimate(
        self,
        instance: "JoinInstance",  # noqa: F821 - structural typing only
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Estimate the join size of ``instance`` under budget ``epsilon``."""
        ...

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Uplink bits one client transmits (cheap, no simulation)."""
        ...


EstimatorFactory = Callable[..., JoinEstimator]

_FACTORIES: Dict[str, EstimatorFactory] = {}
_ALIASES: Dict[str, str] = {}


def _canonical(name: str) -> str:
    """Normalise a user-supplied estimator name to a registry key."""
    return str(name).strip().lower().replace("_", "-").replace(" ", "-")


def register(
    name: str,
    factory: EstimatorFactory = None,
    *,
    aliases: Iterable[str] = (),
    replace: bool = False,
):
    """Register an estimator factory under ``name`` (and ``aliases``).

    Usable directly (``register("krr", KRREstimator)``) or as a class
    decorator::

        @register("my-method", aliases=("mm",))
        class MyMethod: ...

    ``factory`` is any callable returning a :class:`JoinEstimator`;
    keyword arguments of :func:`get_estimator` are forwarded to it.
    """

    def _do_register(fact: EstimatorFactory) -> EstimatorFactory:
        # Load the builtins first so a user registration cannot silently
        # claim a builtin name (the collision would otherwise only
        # surface — permanently — on the first lookup).  Re-entrant
        # calls from the builtin module's own import are a no-op.
        _ensure_builtins()
        key = _canonical(name)
        if not key:
            raise UnknownEstimatorError("estimator name must be non-empty")
        alias_keys = [
            ak for ak in (_canonical(alias) for alias in aliases) if ak != key
        ]
        # Validate everything before mutating: a rejected registration
        # must leave the registry untouched.
        if not replace and (key in _FACTORIES or key in _ALIASES):
            raise UnknownEstimatorError(f"estimator {key!r} is already registered")
        for alias_key in alias_keys:
            if alias_key in _FACTORIES:
                # Never allowed, even with replace: redirecting a
                # canonical name would orphan the aliases pointing at it.
                raise UnknownEstimatorError(
                    f"alias {alias_key!r} would shadow a registered estimator"
                )
            if not replace and alias_key in _ALIASES:
                raise UnknownEstimatorError(f"estimator alias {alias_key!r} is already taken")
        _FACTORIES[key] = fact
        if replace:
            # Dropping a stale alias keeps the new factory reachable
            # (resolution consults _ALIASES before _FACTORIES).
            _ALIASES.pop(key, None)
        for alias_key in alias_keys:
            _ALIASES[alias_key] = key
        return fact

    if factory is None:
        return _do_register
    return _do_register(factory)


def _ensure_builtins() -> None:
    """Load the built-in estimator module (registers on first import)."""
    from . import estimators  # noqa: F401 - imported for its side effects


def resolve_estimator(name: str) -> str:
    """The canonical registry key for ``name`` (raises if unknown)."""
    _ensure_builtins()
    key = _canonical(name)
    key = _ALIASES.get(key, key)
    if key not in _FACTORIES:
        known = ", ".join(sorted(_FACTORIES))
        raise UnknownEstimatorError(
            f"unknown estimator {name!r}; registered estimators: {known}"
        )
    return key


def get_estimator(name: str, **options) -> JoinEstimator:
    """Instantiate the estimator registered under ``name``.

    ``options`` are forwarded to the factory, e.g.
    ``get_estimator("ldpjs", k=18, m=1024)``.

    The ``backend`` option is handled by the registry itself rather than
    the factories: it pins the estimator to a compute backend
    (``"numpy"``, ``"numba"``, or a live :class:`repro.backend.Backend`)
    by setting the instance's ``backend`` attribute —
    :class:`~repro.api.estimators.BaseEstimator` scopes every
    ``estimate*`` call to it.  ``backend=None`` (the default) follows the
    process-wide selection.
    """
    backend = options.pop("backend", None)
    if backend is not None:
        # Validate eagerly (a typo should fail at construction, not deep
        # inside the first estimate call of a sweep) but keep the original
        # spec on the instance — a name string stays picklable for the
        # worker-pool paths where a live backend object would not be.
        from ..backend import resolve_backend

        resolve_backend(backend)
    estimator = _FACTORIES[resolve_estimator(name)](**options)
    if backend is not None:
        estimator.backend = backend
    return estimator


def available_estimators() -> Tuple[str, ...]:
    """Sorted canonical names of every registered estimator."""
    _ensure_builtins()
    return tuple(sorted(_FACTORIES))
