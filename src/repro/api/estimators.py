"""Every join-size estimator of the evaluation, registered by name.

This module is the single home of per-method estimation logic.  The
experiment harness (:mod:`repro.experiments.methods`), the CLI, the
benchmarks and the examples all obtain these estimators through the
registry (:func:`repro.api.get_estimator`); the historical
``experiments.methods`` classes are aliases of the classes here.

Fig. 5's legend is the core line-up: FAGMS (non-private Fast-AGMS), k-RR,
Apple-HCMS, FLH, LDPJoinSketch, LDPJoinSketch+.  OLH (the exact variant
FLH approximates) and the Section VI COMPASS protocol complete the
registry.

Frequency-oracle baselines (k-RR, OLH, FLH, Apple-HCMS) estimate the join
size the way the paper describes: estimate the whole frequency vector of
each attribute, then sum the products over the domain — accumulating one
estimation error per candidate value.
"""

from __future__ import annotations

import abc
import math
import time
from typing import Iterable, Optional

import numpy as np

from ..core.params import SketchParams
from ..core.plus import LDPJoinSketchPlus
from ..data.base import JoinInstance
from ..hashing import HashPairs
from ..mechanisms import (
    FLHOracle,
    FrequencyOracle,
    HCMSOracle,
    KRROracle,
    OLHOracle,
    estimate_join_via_frequencies,
)
from ..privacy.budget import BudgetLedger, PrivacySpec
from ..rng import RandomState, derive_seed, ensure_rng
from ..sketches import FastAGMSSketch
from ..validation import require_positive_int
from .registry import register
from .result import EstimateResult
from .session import JoinSession

__all__ = [
    "BaseEstimator",
    "FAGMSEstimator",
    "KRREstimator",
    "FLHEstimator",
    "HCMSEstimator",
    "OLHEstimator",
    "LDPJoinSketchEstimator",
    "LDPJoinSketchPlusEstimator",
    "CompassEstimator",
    "run_join_sketch",
    "run_join_sketch_plus",
]


# ----------------------------------------------------------------------
# Canonical one-call drivers (the logic behind the deprecated ``run_*``
# shims in :mod:`repro.core.protocol`).
# ----------------------------------------------------------------------
def run_join_sketch(
    values_a: Iterable[int],
    values_b: Iterable[int],
    params: SketchParams,
    seed: RandomState = None,
) -> EstimateResult:
    """Run the single-phase LDPJoinSketch protocol end to end.

    Simulates every client of both attributes (Algorithm 1), builds the
    two sketches (Algorithm 2) through a :class:`JoinSession` and
    evaluates Eq. (5).
    """
    session = JoinSession(params, seed=seed)
    session.collect("A", values_a)
    session.collect("B", values_b)
    result = session.estimate("A", "B")
    result.ledger.assert_within(PrivacySpec(params.epsilon))
    return result


def run_join_sketch_plus(
    values_a: Iterable[int],
    values_b: Iterable[int],
    domain_size: int,
    params: SketchParams,
    *,
    sample_rate: float = 0.1,
    threshold: float = 0.01,
    phase1_params: Optional[SketchParams] = None,
    paper_faithful_correction: bool = False,
    seed: RandomState = None,
) -> EstimateResult:
    """Run the two-phase LDPJoinSketch+ protocol end to end."""
    domain_size = require_positive_int("domain_size", domain_size)
    rng = ensure_rng(seed)
    protocol = LDPJoinSketchPlus(
        params,
        sample_rate=sample_rate,
        threshold=threshold,
        phase1_params=phase1_params,
        paper_faithful_correction=paper_faithful_correction,
    )

    arr_a = np.asarray(values_a, dtype=np.int64)
    arr_b = np.asarray(values_b, dtype=np.int64)

    start = time.perf_counter()
    result = protocol.estimate(arr_a, arr_b, domain_size, rng)
    offline = time.perf_counter() - start

    # Each user belongs to exactly one of the six disjoint groups (sampled,
    # group 1, group 2 - per attribute) and is perturbed once.
    ledger = BudgetLedger()
    for group in ("A-sample", "A1", "A2", "B-sample", "B1", "B2"):
        ledger.charge(group, params.epsilon, "LDPJoinSketch+/FAP")
    ledger.assert_within(PrivacySpec(params.epsilon))

    # sketch_bytes already set by the protocol (single source of the
    # phase-1/phase-2 memory formula).
    return result.with_costs(offline_seconds=offline, ledger=ledger)


# ----------------------------------------------------------------------
# Registry estimators
# ----------------------------------------------------------------------
class BaseEstimator(abc.ABC):
    """A join-size estimation method (private or baseline).

    Concrete subclasses satisfy the :class:`repro.api.JoinEstimator`
    protocol; the registry hands out instances by name.
    """

    #: Display name used in result tables (matches the figure legends).
    name: str = "abstract"
    #: Whether the method provides an LDP guarantee.
    private: bool = True

    @abc.abstractmethod
    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Estimate the join size of ``instance`` under budget ``epsilon``."""

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Uplink bits one client transmits (cheap, no simulation).

        Default: the raw value, ``ceil(log2 domain)`` bits (non-private
        transmission); LDP methods override with their wire format.
        """
        return max(1, math.ceil(math.log2(domain_size)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


def _two_stream_ledger(epsilon: float, mechanism: str) -> BudgetLedger:
    """The ledger of any one-report-per-user two-table collection."""
    ledger = BudgetLedger()
    ledger.charge("A", epsilon, mechanism)
    ledger.charge("B", epsilon, mechanism)
    return ledger


class FAGMSEstimator(BaseEstimator):
    """Non-private Fast-AGMS — the accuracy ceiling of the sketch family."""

    name = "FAGMS"
    private = False

    def __init__(self, k: int = 18, m: int = 1024) -> None:
        self.k = k
        self.m = m

    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Build two plain Fast-AGMS sketches; ``epsilon`` is ignored."""
        rng = ensure_rng(seed)
        start = time.perf_counter()
        pairs = HashPairs(self.k, self.m, rng)
        sketch_a = FastAGMSSketch(pairs)
        sketch_a.update_batch(instance.values_a)
        sketch_b = FastAGMSSketch(pairs)
        sketch_b.update_batch(instance.values_b)
        offline = time.perf_counter() - start
        start = time.perf_counter()
        estimate = sketch_a.inner_product(sketch_b)
        online = time.perf_counter() - start
        raw_bits = max(1, math.ceil(math.log2(instance.domain_size)))
        return EstimateResult(
            estimate=estimate,
            offline_seconds=offline,
            online_seconds=online,
            uplink_bits=(instance.size_a + instance.size_b) * raw_bits,
            sketch_bytes=sketch_a.memory_bytes() + sketch_b.memory_bytes(),
        )


class _FrequencyOracleEstimator(BaseEstimator):
    """Shared driver for the frequency-vector join baselines.

    ``calibrate`` clips negative frequency estimates to zero before the
    product, matching the paper's "calibrated frequency vectors".  On
    large domains the clipped noise no longer cancels across candidates,
    which is precisely the cumulative-error behaviour the paper reports
    for these baselines; ``calibrate=False`` keeps the raw unbiased
    estimates (see the calibration ablation bench).
    """

    def __init__(self, *, calibrate: bool = True) -> None:
        self.calibrate = calibrate

    def _make_oracle(
        self, domain_size: int, epsilon: float, seed: RandomState
    ) -> FrequencyOracle:
        raise NotImplementedError

    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Collect both attributes' reports, join via frequency vectors."""
        rng = ensure_rng(seed)
        start = time.perf_counter()
        oracle_a = self._make_oracle(instance.domain_size, epsilon, derive_seed(rng))
        oracle_b = self._make_oracle(instance.domain_size, epsilon, derive_seed(rng))
        oracle_a.collect(instance.values_a)
        oracle_b.collect(instance.values_b)
        offline = time.perf_counter() - start
        start = time.perf_counter()
        estimate = estimate_join_via_frequencies(
            oracle_a, oracle_b, clip_negative=self.calibrate
        )
        online = time.perf_counter() - start
        return EstimateResult(
            estimate=estimate,
            offline_seconds=offline,
            online_seconds=online,
            uplink_bits=(instance.size_a * oracle_a.report_bits)
            + (instance.size_b * oracle_b.report_bits),
            sketch_bytes=oracle_a.memory_bytes() + oracle_b.memory_bytes(),
            ledger=_two_stream_ledger(epsilon, self.name),
        )


class KRREstimator(_FrequencyOracleEstimator):
    """k-RR with calibrated frequency vectors."""

    name = "k-RR"

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> KRROracle:
        return KRROracle(domain_size, epsilon, seed)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """One domain value per client."""
        return KRROracle(domain_size, epsilon, 0).report_bits


class FLHEstimator(_FrequencyOracleEstimator):
    """Fast Local Hashing with a shared hash pool.

    The pool size (``K'``) defaults to 256 — inside the range Cormode et
    al. recommend (1e2-1e4) and 2x cheaper to scan at estimation time than
    the oracle-level default; accuracy at laptop-scale n is unaffected.
    """

    name = "FLH"

    def __init__(self, pool_size: int = 256, *, calibrate: bool = True) -> None:
        super().__init__(calibrate=calibrate)
        self.pool_size = pool_size

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> FLHOracle:
        return FLHOracle(domain_size, epsilon, seed, pool_size=self.pool_size)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Pool index plus a GRR report over [g]."""
        return FLHOracle(domain_size, epsilon, 0, pool_size=self.pool_size).report_bits


class HCMSEstimator(_FrequencyOracleEstimator):
    """Apple-HCMS summed over the domain."""

    name = "Apple-HCMS"

    def __init__(self, k: int = 18, m: int = 1024, *, calibrate: bool = True) -> None:
        super().__init__(calibrate=calibrate)
        self.k = k
        self.m = m

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> HCMSOracle:
        return HCMSOracle(domain_size, epsilon, seed, k=self.k, m=self.m)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Sign bit plus row and column indices."""
        return SketchParams(self.k, self.m, epsilon).report_bits


class OLHEstimator(_FrequencyOracleEstimator):
    """Exact Optimal Local Hashing (one fresh hash per client).

    Not part of the paper's Fig. 5 line-up (FLH is its fast variant), but
    included for completeness; server-side estimation is Theta(n * |D|),
    so keep it to moderate domains.
    """

    name = "OLH"

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> OLHOracle:
        return OLHOracle(domain_size, epsilon, seed)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """64-bit hash seed plus a GRR report over [g]."""
        return OLHOracle(domain_size, epsilon, 0).report_bits


class LDPJoinSketchEstimator(BaseEstimator):
    """The paper's single-phase protocol (Algorithms 1-2, Eq. 5)."""

    name = "LDPJoinSketch"

    def __init__(self, k: int = 18, m: int = 1024) -> None:
        self.k = k
        self.m = m

    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Run the full client/server simulation through a JoinSession."""
        return run_join_sketch(
            instance.values_a,
            instance.values_b,
            SketchParams(self.k, self.m, epsilon),
            seed=seed,
        )

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Sign bit plus row and column indices."""
        return SketchParams(self.k, self.m, epsilon).report_bits


class LDPJoinSketchPlusEstimator(BaseEstimator):
    """The paper's two-phase protocol (Algorithms 3-5)."""

    name = "LDPJoinSketch+"

    def __init__(
        self,
        k: int = 18,
        m: int = 1024,
        sample_rate: float = 0.1,
        threshold: float = 0.01,
        *,
        phase1_m: Optional[int] = None,
        paper_faithful_correction: bool = False,
    ) -> None:
        self.k = k
        self.m = m
        self.sample_rate = sample_rate
        self.threshold = threshold
        self.phase1_m = phase1_m
        self.paper_faithful_correction = paper_faithful_correction

    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Run both phases of the protocol."""
        params = SketchParams(self.k, self.m, epsilon)
        phase1 = (
            SketchParams(self.k, self.phase1_m, epsilon) if self.phase1_m is not None else None
        )
        return run_join_sketch_plus(
            instance.values_a,
            instance.values_b,
            instance.domain_size,
            params,
            sample_rate=self.sample_rate,
            threshold=self.threshold,
            phase1_params=phase1,
            paper_faithful_correction=self.paper_faithful_correction,
            seed=seed,
        )

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Sign bit plus row and column indices (both phases)."""
        return SketchParams(self.k, self.m, epsilon).report_bits


class CompassEstimator(BaseEstimator):
    """The Section VI LDP-COMPASS protocol applied to a two-way join.

    A two-way join is the degenerate one-attribute chain: both tables are
    end tables over the same join attribute and Eq. (27) collapses to
    Eq. (5).  For real chains use :meth:`JoinSession.estimate_chain` or
    :func:`repro.experiments.chains.ldp_compass_estimate`; this adapter
    makes the multiway protocol addressable through the same registry as
    every other method.
    """

    name = "LDP-COMPASS"

    def __init__(self, k: int = 18, m: int = 1024) -> None:
        self.k = k
        self.m = m

    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Run the chain protocol over the degenerate one-attribute chain."""
        params = SketchParams(self.k, self.m, epsilon)
        session = JoinSession(params, seed=seed)
        session.collect("A", instance.values_a)
        session.collect("B", instance.values_b)
        # estimate_chain over [A, B] contracts first[j] @ last[j] per
        # replica — exactly the row-wise inner products of Eq. (5).
        return session.estimate_chain(["A", "B"])

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """End-table clients transmit the LDPJoinSketch wire format."""
        return SketchParams(self.k, self.m, epsilon).report_bits


# ----------------------------------------------------------------------
# Registrations — canonical key first, figure-legend names as aliases.
# ----------------------------------------------------------------------
register("fagms", FAGMSEstimator, aliases=("fast-agms",))
register("krr", KRREstimator, aliases=("k-rr",))
register("olh", OLHEstimator)
register("flh", FLHEstimator, aliases=("fast-local-hashing",))
register("hcms", HCMSEstimator, aliases=("apple-hcms",))
register(
    "ldp-join-sketch",
    LDPJoinSketchEstimator,
    aliases=("ldpjs", "ldpjoinsketch"),
)
register(
    "ldp-join-sketch-plus",
    LDPJoinSketchPlusEstimator,
    aliases=("ldpjs+", "ldpjs-plus", "ldpjoinsketch+", "fap"),
)
register("compass", CompassEstimator, aliases=("ldp-compass", "multiway"))
