"""Every join-size estimator of the evaluation, registered by name.

This module is the single home of per-method estimation logic.  The
experiment harness (:mod:`repro.experiments.methods`), the CLI, the
benchmarks and the examples all obtain these estimators through the
registry (:func:`repro.api.get_estimator`); the historical
``experiments.methods`` classes are aliases of the classes here.

Fig. 5's legend is the core line-up: FAGMS (non-private Fast-AGMS), k-RR,
Apple-HCMS, FLH, LDPJoinSketch, LDPJoinSketch+.  OLH (the exact variant
FLH approximates) and the Section VI COMPASS protocol complete the
registry.

Frequency-oracle baselines (k-RR, OLH, FLH, Apple-HCMS) estimate the join
size the way the paper describes: estimate the whole frequency vector of
each attribute, then sum the products over the domain — accumulating one
estimation error per candidate value.
"""

from __future__ import annotations

import abc
import functools
import math
import time
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..backend import use_backend
from ..core.client import (
    DEFAULT_CHUNK_SIZE,
    encode_reports_grouped_into,
    encode_reports_trials_into,
)
from ..core.multiway import LDPCompassProtocol
from ..core.params import SketchParams
from ..core.plus import LDPJoinSketchPlus
from ..core.server import LDPJoinSketch
from ..data.base import JoinInstance
from ..hashing import HashPairs
from ..mechanisms import (
    FLHOracle,
    FrequencyOracle,
    HCMSOracle,
    KRROracle,
    OLHOracle,
    estimate_join_via_frequencies,
)
from ..privacy.budget import BudgetLedger, PrivacySpec
from ..rng import RandomState, derive_seed, ensure_rng, spawn
from ..sketches import FastAGMSSketch
from ..transform.hadamard import fwht_inplace
from ..validation import as_value_array, require_positive_int
from .registry import register
from .result import EstimateResult
from .session import JoinSession

__all__ = [
    "BaseEstimator",
    "FAGMSEstimator",
    "KRREstimator",
    "FLHEstimator",
    "HCMSEstimator",
    "OLHEstimator",
    "LDPJoinSketchEstimator",
    "LDPJoinSketchPlusEstimator",
    "CompassEstimator",
    "run_join_sketch",
    "run_join_sketch_trials",
    "run_join_sketch_trial_group",
    "run_join_sketch_plus",
]


# ----------------------------------------------------------------------
# Canonical one-call drivers (the logic behind the deprecated ``run_*``
# shims in :mod:`repro.core.protocol`).
# ----------------------------------------------------------------------
def run_join_sketch(
    values_a: Iterable[int],
    values_b: Iterable[int],
    params: SketchParams,
    seed: RandomState = None,
) -> EstimateResult:
    """Run the single-phase LDPJoinSketch protocol end to end.

    Simulates every client of both attributes (Algorithm 1), builds the
    two sketches (Algorithm 2) through a :class:`JoinSession` and
    evaluates Eq. (5).
    """
    session = JoinSession(params, seed=seed)
    session.collect("A", values_a)
    session.collect("B", values_b)
    result = session.estimate("A", "B")
    result.ledger.assert_within(PrivacySpec(params.epsilon))
    return result


def _encode_trial_sketches(
    values_a: np.ndarray,
    values_b: np.ndarray,
    params: SketchParams,
    seeds: Sequence[RandomState],
    chunk_size: int,
):
    """Shared trial-axis encode for the LDPJoinSketch-family estimators.

    Replicates, per trial, the exact RNG flow of ``JoinSession(params,
    seed=seed)`` + ``collect("A", ...)`` + ``collect("B", ...)``: the
    session generator spawns the hash pairs, then drives both streams'
    client simulation — so trial ``t``'s two sketches are bit-for-bit the
    ones the serial session path would build under ``seeds[t]``
    (:mod:`tests.test_sweep` pins this).  All ``T`` trials ride the fused
    trial-axis kernel: one pass per value array, with the per-trial
    coefficient matrices stacked once for both streams.

    Returns ``(pairs_list, sketches_a, sketches_b, n_a, n_b, seconds)``.
    """
    rngs = [ensure_rng(s) for s in seeds]
    trials = len(rngs)
    start = time.perf_counter()
    pairs_list = [HashPairs(params.k, params.m, spawn(g)) for g in rngs]
    raw_a = np.zeros((trials, params.k, params.m), dtype=np.int64)
    n_a = encode_reports_trials_into(
        values_a, params, pairs_list, raw_a, rngs, chunk_size=chunk_size
    )
    raw_b = np.zeros_like(raw_a)
    n_b = encode_reports_trials_into(
        values_b, params, pairs_list, raw_b, rngs, chunk_size=chunk_size
    )
    sketches_a: List[LDPJoinSketch] = []
    sketches_b: List[LDPJoinSketch] = []
    for t in range(trials):
        counts_a = raw_a[t].astype(np.float64) * params.scale
        fwht_inplace(counts_a)
        sketches_a.append(LDPJoinSketch(params, pairs_list[t], counts_a, n_a))
        counts_b = raw_b[t].astype(np.float64) * params.scale
        fwht_inplace(counts_b)
        sketches_b.append(LDPJoinSketch(params, pairs_list[t], counts_b, n_b))
    seconds = time.perf_counter() - start
    return pairs_list, sketches_a, sketches_b, n_a, n_b, seconds


def run_join_sketch_trials(
    values_a: Iterable[int],
    values_b: Iterable[int],
    params: SketchParams,
    seeds: Sequence[RandomState],
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    query: str = "join_size",
) -> List[EstimateResult]:
    """Run ``len(seeds)`` independent LDPJoinSketch trials in one pass.

    Result ``t`` carries exactly the estimate and cost accounting of
    ``run_join_sketch(values_a, values_b, params, seed=seeds[t])`` (or of
    the degenerate-chain Compass query with ``query="chain"``) — the
    trial axis is pure wall-clock: hashing and accumulation for all
    trials share one pass over each value array via
    :func:`repro.core.client.encode_reports_trials_into`.  Offline
    seconds are the batch time split evenly across trials.
    """
    if query not in ("join_size", "chain"):
        raise ValueError(f"unknown query {query!r}; use 'join_size' or 'chain'")
    seeds = list(seeds)
    if not seeds:
        return []
    arr_a = as_value_array(values_a, "values_a")
    arr_b = as_value_array(values_b, "values_b")
    pairs_list, sketches_a, sketches_b, n_a, n_b, offline = _encode_trial_sketches(
        arr_a, arr_b, params, seeds, chunk_size
    )
    per_trial_offline = offline / len(seeds)
    results = []
    for t in range(len(seeds)):
        start = time.perf_counter()
        if query == "chain":
            protocol = LDPCompassProtocol.from_pairs([pairs_list[t]], params.epsilon)
            estimate = protocol.estimate_chain(sketches_a[t], [], sketches_b[t])
        else:
            estimate = sketches_a[t].join_size(sketches_b[t])
        online = time.perf_counter() - start
        ledger = _two_stream_ledger(params.epsilon, "LDPJoinSketch")
        ledger.assert_within(PrivacySpec(params.epsilon))
        results.append(
            EstimateResult(
                estimate=estimate,
                offline_seconds=per_trial_offline,
                online_seconds=online,
                uplink_bits=(n_a + n_b) * params.report_bits,
                sketch_bytes=sketches_a[t].memory_bytes() + sketches_b[t].memory_bytes(),
                ledger=ledger,
                extras={"num_reports": n_a + n_b, "streams": ("A", "B")},
            )
        )
    return results


def run_join_sketch_trial_group(
    values_a: Iterable[int],
    values_b: Iterable[int],
    k: int,
    m: int,
    epsilons: Sequence[float],
    trial_seeds: Sequence[RandomState],
    *,
    group_seed: RandomState = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> List[List[EstimateResult]]:
    """Shared-pass evaluation of a whole (epsilon × trial) grid cell block.

    The sweep engine's opt-in fast mode: one hash-pair draw and one
    sample/hash pass (seeded by ``group_seed``) are shared by every
    ``(epsilon, trial)`` cell; each trial re-perturbs with its own flip
    uniforms and every epsilon thresholds those same uniforms (common
    random numbers) — see
    :func:`repro.core.client.encode_reports_grouped_into` for the exact
    semantics and the statistical trade (marginals unchanged, cross-cell
    correlation introduced).

    Returns one result list per epsilon, each with one
    :class:`EstimateResult` per trial seed.
    """
    epsilons = [float(e) for e in epsilons]
    trial_seeds = list(trial_seeds)
    if not epsilons or not trial_seeds:
        return [[] for _ in epsilons]
    arr_a = as_value_array(values_a, "values_a")
    arr_b = as_value_array(values_b, "values_b")
    params_per_eps = [SketchParams(k, m, e) for e in epsilons]
    trials, num_eps = len(trial_seeds), len(epsilons)
    start = time.perf_counter()
    rng = ensure_rng(group_seed)
    pairs = HashPairs(k, m, spawn(rng))
    trial_rngs = [ensure_rng(s) for s in trial_seeds]
    raw_a = np.zeros((trials, num_eps, k, m), dtype=np.int64)
    n_a = encode_reports_grouped_into(
        arr_a, pairs, epsilons, raw_a, rng, trial_rngs, chunk_size=chunk_size
    )
    raw_b = np.zeros_like(raw_a)
    n_b = encode_reports_grouped_into(
        arr_b, pairs, epsilons, raw_b, rng, trial_rngs, chunk_size=chunk_size
    )
    offline = time.perf_counter() - start
    start = time.perf_counter()
    # No FWHT at all: the transform is orthogonal up to ``m``
    # (``H H^T = m I``), so the Eq. (5) row inner products of the
    # *constructed* sketches equal ``m * scale^2`` times the inner
    # products of the raw pre-transform accumulators.  Those are int64,
    # so one exact integer einsum over the whole (T, E) block replaces
    # four block FWHTs and two float materialisations; the positive
    # factor commutes with the row median.
    per_row = np.einsum("tejx,tejx->tej", raw_a, raw_b).astype(np.float64)
    scales = np.asarray([m * p.scale**2 for p in params_per_eps], dtype=np.float64)
    estimates = np.median(per_row, axis=2) * scales[None, :]  # (T, E)
    online = time.perf_counter() - start
    cells = trials * num_eps
    sketch_bytes = 2 * k * m * 8
    results: List[List[EstimateResult]] = []
    for e, params in enumerate(params_per_eps):
        per_eps = []
        for t in range(trials):
            ledger = _two_stream_ledger(params.epsilon, "LDPJoinSketch")
            per_eps.append(
                EstimateResult(
                    estimate=float(estimates[t, e]),
                    offline_seconds=offline / cells,
                    online_seconds=online / cells,
                    uplink_bits=(n_a + n_b) * params.report_bits,
                    sketch_bytes=sketch_bytes,
                    ledger=ledger,
                    extras={"num_reports": n_a + n_b, "streams": ("A", "B")},
                )
            )
        results.append(per_eps)
    return results


def run_join_sketch_plus(
    values_a: Iterable[int],
    values_b: Iterable[int],
    domain_size: int,
    params: SketchParams,
    *,
    sample_rate: float = 0.1,
    threshold: float = 0.01,
    phase1_params: Optional[SketchParams] = None,
    paper_faithful_correction: bool = False,
    seed: RandomState = None,
) -> EstimateResult:
    """Run the two-phase LDPJoinSketch+ protocol end to end."""
    domain_size = require_positive_int("domain_size", domain_size)
    rng = ensure_rng(seed)
    protocol = LDPJoinSketchPlus(
        params,
        sample_rate=sample_rate,
        threshold=threshold,
        phase1_params=phase1_params,
        paper_faithful_correction=paper_faithful_correction,
    )

    arr_a = np.asarray(values_a, dtype=np.int64)
    arr_b = np.asarray(values_b, dtype=np.int64)

    start = time.perf_counter()
    result = protocol.estimate(arr_a, arr_b, domain_size, rng)
    offline = time.perf_counter() - start

    # Each user belongs to exactly one of the six disjoint groups (sampled,
    # group 1, group 2 - per attribute) and is perturbed once.
    ledger = BudgetLedger()
    for group in ("A-sample", "A1", "A2", "B-sample", "B1", "B2"):
        ledger.charge(group, params.epsilon, "LDPJoinSketch+/FAP")
    ledger.assert_within(PrivacySpec(params.epsilon))

    # sketch_bytes already set by the protocol (single source of the
    # phase-1/phase-2 memory formula).
    return result.with_costs(offline_seconds=offline, ledger=ledger)


# ----------------------------------------------------------------------
# Registry estimators
# ----------------------------------------------------------------------
def _backend_scoped(method):
    """Run ``method`` under the estimator's pinned compute backend.

    The same scoping :meth:`BaseEstimator.estimate` applies around its
    ``_estimate`` hook, packaged as a decorator for the trial-axis entry
    points so a new one cannot silently forget the pin.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with use_backend(self.backend):
            return method(self, *args, **kwargs)

    return wrapper


class BaseEstimator(abc.ABC):
    """A join-size estimation method (private or baseline).

    Concrete subclasses satisfy the :class:`repro.api.JoinEstimator`
    protocol; the registry hands out instances by name.  Subclasses
    implement :meth:`_estimate`; the public :meth:`estimate` wrapper
    scopes the run to the estimator's pinned compute backend (set via
    ``get_estimator(name, backend=...)`` or by assigning
    :attr:`backend`), so one process can e.g. benchmark the numba and
    numpy backends against each other with two registry lookups.
    """

    #: Display name used in result tables (matches the figure legends).
    name: str = "abstract"
    #: Whether the method provides an LDP guarantee.
    private: bool = True
    #: Compute-backend pin (name / instance); ``None`` follows the
    #: process-wide selection.  Honoured by every ``estimate*`` entry
    #: point via :func:`repro.backend.use_backend`.
    backend = None

    def __new__(cls, *args, **kwargs):
        # The @abstractmethod that used to sit on estimate() made an
        # incomplete class un-instantiable; keep exactly that timing now
        # that estimate() is a concrete backend-scoping wrapper — fail at
        # construction (a typoed hook must not surface as
        # NotImplementedError mid-sweep inside a worker pool), while
        # hook-less *intermediate* subclasses remain definable as before.
        for klass in cls.__mro__:
            if klass is BaseEstimator:
                raise TypeError(
                    f"{cls.__name__} must implement _estimate() or "
                    f"override estimate()"
                    if cls is not BaseEstimator
                    else "BaseEstimator is abstract; instantiate a registered "
                    "estimator (see repro.api.available_estimators)"
                )
            if "_estimate" in klass.__dict__ or "estimate" in klass.__dict__:
                break
        return super().__new__(cls)

    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Estimate the join size of ``instance`` under budget ``epsilon``."""
        with use_backend(self.backend):
            return self._estimate(instance, epsilon, seed)

    def _estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Method-specific implementation behind :meth:`estimate`.

        Built-in estimators implement this hook; subclasses that predate
        the backend layer may instead override :meth:`estimate` directly
        (losing only the automatic backend scoping).
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement _estimate() or "
            f"override estimate()"
        )

    def estimate_sharded(
        self,
        instance: JoinInstance,
        epsilon: float,
        *,
        num_shards: int,
        seed: RandomState = None,
        strategy: str = "hash",
        merge: str = "tree",
    ) -> EstimateResult:
        """Sharded-collection estimate: ``num_shards`` aggregators + merge tree.

        Routes through :func:`repro.distributed.estimate_sharded` under
        this estimator's pinned compute backend.  ``num_shards=1``
        replays :meth:`estimate` bit for bit; any ``K`` and either merge
        topology (``"tree"``/``"sequential"``) produce byte-identical
        results — see :mod:`repro.distributed`.
        """
        from ..distributed import estimate_sharded

        with use_backend(self.backend):
            return estimate_sharded(
                self,
                instance,
                epsilon,
                num_shards=num_shards,
                seed=seed,
                strategy=strategy,
                merge=merge,
            )

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Uplink bits one client transmits (cheap, no simulation).

        Default: the raw value, ``ceil(log2 domain)`` bits (non-private
        transmission); LDP methods override with their wire format.
        """
        return max(1, math.ceil(math.log2(domain_size)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


def _two_stream_ledger(epsilon: float, mechanism: str) -> BudgetLedger:
    """The ledger of any one-report-per-user two-table collection."""
    ledger = BudgetLedger()
    ledger.charge("A", epsilon, mechanism)
    ledger.charge("B", epsilon, mechanism)
    return ledger


class FAGMSEstimator(BaseEstimator):
    """Non-private Fast-AGMS — the accuracy ceiling of the sketch family."""

    name = "FAGMS"
    private = False

    def __init__(self, k: int = 18, m: int = 1024) -> None:
        self.k = k
        self.m = m

    def _estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Build two plain Fast-AGMS sketches; ``epsilon`` is ignored."""
        rng = ensure_rng(seed)
        start = time.perf_counter()
        pairs = HashPairs(self.k, self.m, rng)
        sketch_a = FastAGMSSketch(pairs)
        sketch_a.update_batch(instance.values_a)
        sketch_b = FastAGMSSketch(pairs)
        sketch_b.update_batch(instance.values_b)
        offline = time.perf_counter() - start
        start = time.perf_counter()
        estimate = sketch_a.inner_product(sketch_b)
        online = time.perf_counter() - start
        raw_bits = max(1, math.ceil(math.log2(instance.domain_size)))
        return EstimateResult(
            estimate=estimate,
            offline_seconds=offline,
            online_seconds=online,
            uplink_bits=(instance.size_a + instance.size_b) * raw_bits,
            sketch_bytes=sketch_a.memory_bytes() + sketch_b.memory_bytes(),
        )


class _FrequencyOracleEstimator(BaseEstimator):
    """Shared driver for the frequency-vector join baselines.

    ``calibrate`` clips negative frequency estimates to zero before the
    product, matching the paper's "calibrated frequency vectors".  On
    large domains the clipped noise no longer cancels across candidates,
    which is precisely the cumulative-error behaviour the paper reports
    for these baselines; ``calibrate=False`` keeps the raw unbiased
    estimates (see the calibration ablation bench).
    """

    def __init__(self, *, calibrate: bool = True) -> None:
        self.calibrate = calibrate

    def _make_oracle(
        self, domain_size: int, epsilon: float, seed: RandomState
    ) -> FrequencyOracle:
        raise NotImplementedError

    def _estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Collect both attributes' reports, join via frequency vectors."""
        rng = ensure_rng(seed)
        start = time.perf_counter()
        oracle_a = self._make_oracle(instance.domain_size, epsilon, derive_seed(rng))
        oracle_b = self._make_oracle(instance.domain_size, epsilon, derive_seed(rng))
        oracle_a.collect(instance.values_a)
        oracle_b.collect(instance.values_b)
        offline = time.perf_counter() - start
        start = time.perf_counter()
        estimate = estimate_join_via_frequencies(
            oracle_a, oracle_b, clip_negative=self.calibrate
        )
        online = time.perf_counter() - start
        return EstimateResult(
            estimate=estimate,
            offline_seconds=offline,
            online_seconds=online,
            uplink_bits=(instance.size_a * oracle_a.report_bits)
            + (instance.size_b * oracle_b.report_bits),
            sketch_bytes=oracle_a.memory_bytes() + oracle_b.memory_bytes(),
            ledger=_two_stream_ledger(epsilon, self.name),
        )


class KRREstimator(_FrequencyOracleEstimator):
    """k-RR with calibrated frequency vectors."""

    name = "k-RR"

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> KRROracle:
        return KRROracle(domain_size, epsilon, seed)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """One domain value per client."""
        return KRROracle(domain_size, epsilon, 0).report_bits


class FLHEstimator(_FrequencyOracleEstimator):
    """Fast Local Hashing with a shared hash pool.

    The pool size (``K'``) defaults to 256 — inside the range Cormode et
    al. recommend (1e2-1e4) and 2x cheaper to scan at estimation time than
    the oracle-level default; accuracy at laptop-scale n is unaffected.
    """

    name = "FLH"

    def __init__(self, pool_size: int = 256, *, calibrate: bool = True) -> None:
        super().__init__(calibrate=calibrate)
        self.pool_size = pool_size

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> FLHOracle:
        return FLHOracle(domain_size, epsilon, seed, pool_size=self.pool_size)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Pool index plus a GRR report over [g]."""
        return FLHOracle(domain_size, epsilon, 0, pool_size=self.pool_size).report_bits


class HCMSEstimator(_FrequencyOracleEstimator):
    """Apple-HCMS summed over the domain."""

    name = "Apple-HCMS"

    def __init__(self, k: int = 18, m: int = 1024, *, calibrate: bool = True) -> None:
        super().__init__(calibrate=calibrate)
        self.k = k
        self.m = m

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> HCMSOracle:
        return HCMSOracle(domain_size, epsilon, seed, k=self.k, m=self.m)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Sign bit plus row and column indices."""
        return SketchParams(self.k, self.m, epsilon).report_bits


class OLHEstimator(_FrequencyOracleEstimator):
    """Exact Optimal Local Hashing (one fresh hash per client).

    Not part of the paper's Fig. 5 line-up (FLH is its fast variant), but
    included for completeness; server-side estimation is Theta(n * |D|),
    so keep it to moderate domains.
    """

    name = "OLH"

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> OLHOracle:
        return OLHOracle(domain_size, epsilon, seed)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """64-bit hash seed plus a GRR report over [g]."""
        return OLHOracle(domain_size, epsilon, 0).report_bits


class LDPJoinSketchEstimator(BaseEstimator):
    """The paper's single-phase protocol (Algorithms 1-2, Eq. 5)."""

    name = "LDPJoinSketch"

    def __init__(self, k: int = 18, m: int = 1024) -> None:
        self.k = k
        self.m = m

    def _estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Run the full client/server simulation through a JoinSession."""
        return run_join_sketch(
            instance.values_a,
            instance.values_b,
            SketchParams(self.k, self.m, epsilon),
            seed=seed,
        )

    @_backend_scoped
    def estimate_trials(
        self,
        instance: JoinInstance,
        epsilon: float,
        seeds: Sequence[RandomState],
    ) -> List[EstimateResult]:
        """Trial-axis fast path: ``T`` estimates, bit-for-bit the serial ones.

        Result ``t`` equals ``estimate(instance, epsilon, seeds[t])`` in
        every deterministic field (estimate, uplink bits, sketch bytes);
        only timings differ because hashing/accumulation of all trials
        share one pass over each value array.
        """
        return run_join_sketch_trials(
            instance.values_a,
            instance.values_b,
            SketchParams(self.k, self.m, epsilon),
            seeds,
        )

    @_backend_scoped
    def estimate_trial_group(
        self,
        instance: JoinInstance,
        epsilons: Sequence[float],
        trial_seeds: Sequence[RandomState],
        *,
        group_seed: RandomState = None,
    ) -> List[List[EstimateResult]]:
        """Shared-pass (epsilon × trial) block — the sweep's grouped mode."""
        return run_join_sketch_trial_group(
            instance.values_a,
            instance.values_b,
            self.k,
            self.m,
            epsilons,
            trial_seeds,
            group_seed=group_seed,
        )

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Sign bit plus row and column indices."""
        return SketchParams(self.k, self.m, epsilon).report_bits


class LDPJoinSketchPlusEstimator(BaseEstimator):
    """The paper's two-phase protocol (Algorithms 3-5)."""

    name = "LDPJoinSketch+"

    def __init__(
        self,
        k: int = 18,
        m: int = 1024,
        sample_rate: float = 0.1,
        threshold: float = 0.01,
        *,
        phase1_m: Optional[int] = None,
        paper_faithful_correction: bool = False,
    ) -> None:
        self.k = k
        self.m = m
        self.sample_rate = sample_rate
        self.threshold = threshold
        self.phase1_m = phase1_m
        self.paper_faithful_correction = paper_faithful_correction

    def _estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Run both phases of the protocol."""
        params = SketchParams(self.k, self.m, epsilon)
        phase1 = (
            SketchParams(self.k, self.phase1_m, epsilon) if self.phase1_m is not None else None
        )
        return run_join_sketch_plus(
            instance.values_a,
            instance.values_b,
            instance.domain_size,
            params,
            sample_rate=self.sample_rate,
            threshold=self.threshold,
            phase1_params=phase1,
            paper_faithful_correction=self.paper_faithful_correction,
            seed=seed,
        )

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Sign bit plus row and column indices (both phases)."""
        return SketchParams(self.k, self.m, epsilon).report_bits


class CompassEstimator(BaseEstimator):
    """The Section VI LDP-COMPASS protocol applied to a two-way join.

    A two-way join is the degenerate one-attribute chain: both tables are
    end tables over the same join attribute and Eq. (27) collapses to
    Eq. (5).  For real chains use :meth:`JoinSession.estimate_chain` or
    :func:`repro.experiments.chains.ldp_compass_estimate`; this adapter
    makes the multiway protocol addressable through the same registry as
    every other method.
    """

    name = "LDP-COMPASS"

    def __init__(self, k: int = 18, m: int = 1024) -> None:
        self.k = k
        self.m = m

    def _estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> EstimateResult:
        """Run the chain protocol over the degenerate one-attribute chain."""
        params = SketchParams(self.k, self.m, epsilon)
        session = JoinSession(params, seed=seed)
        session.collect("A", instance.values_a)
        session.collect("B", instance.values_b)
        # estimate_chain over [A, B] contracts first[j] @ last[j] per
        # replica — exactly the row-wise inner products of Eq. (5).
        return session.estimate_chain(["A", "B"])

    @_backend_scoped
    def estimate_trials(
        self,
        instance: JoinInstance,
        epsilon: float,
        seeds: Sequence[RandomState],
    ) -> List[EstimateResult]:
        """Trial-axis fast path over the degenerate chain query.

        Per-trial results match :meth:`estimate` under the same seeds in
        every deterministic field; the chain contraction runs through the
        same :meth:`LDPCompassProtocol.estimate_chain` the session uses.
        """
        return run_join_sketch_trials(
            instance.values_a,
            instance.values_b,
            SketchParams(self.k, self.m, epsilon),
            seeds,
            query="chain",
        )

    @_backend_scoped
    def estimate_trial_group(
        self,
        instance: JoinInstance,
        epsilons: Sequence[float],
        trial_seeds: Sequence[RandomState],
        *,
        group_seed: RandomState = None,
    ) -> List[List[EstimateResult]]:
        """Shared-pass (epsilon × trial) block — the sweep's grouped mode.

        On a two-way join the chain estimate is the Eq. (5) median of
        per-replica inner products, so the grouped block is computed by
        the same batched contraction the plain sketch uses.
        """
        return run_join_sketch_trial_group(
            instance.values_a,
            instance.values_b,
            self.k,
            self.m,
            epsilons,
            trial_seeds,
            group_seed=group_seed,
        )

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """End-table clients transmit the LDPJoinSketch wire format."""
        return SketchParams(self.k, self.m, epsilon).report_bits


# ----------------------------------------------------------------------
# Registrations — canonical key first, figure-legend names as aliases.
# ----------------------------------------------------------------------
register("fagms", FAGMSEstimator, aliases=("fast-agms",))
register("krr", KRREstimator, aliases=("k-rr",))
register("olh", OLHEstimator)
register("flh", FLHEstimator, aliases=("fast-local-hashing",))
register("hcms", HCMSEstimator, aliases=("apple-hcms",))
register(
    "ldp-join-sketch",
    LDPJoinSketchEstimator,
    aliases=("ldpjs", "ldpjoinsketch"),
)
register(
    "ldp-join-sketch-plus",
    LDPJoinSketchPlusEstimator,
    aliases=("ldpjs+", "ldpjs-plus", "ldpjoinsketch+", "fap"),
)
register("compass", CompassEstimator, aliases=("ldp-compass", "multiway"))
