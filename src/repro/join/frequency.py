"""Frequency vectors of join attributes.

A join size is the inner product of two frequency vectors
(``|A join B| = sum_d f_A(d) * f_B(d)``), so an exact, dense frequency
vector is the ground truth every estimator in this library is measured
against.  :class:`FrequencyVector` is a small value class over a dense
``int64`` NumPy array with the handful of operations the experiments need:
construction from a value stream, inner products, frequency moments
(``F1``/``F2`` of Definition 3 in the paper), heavy-hitter extraction, and
splitting into high-/low-frequency parts (used to decompose the join size
the way LDPJoinSketch+ does).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..errors import DomainError, ParameterError
from ..validation import require_domain_values, require_positive_int

__all__ = ["FrequencyVector"]


class FrequencyVector:
    """Dense frequency vector of a value stream over ``[0, domain_size)``."""

    __slots__ = ("counts",)

    def __init__(self, counts: np.ndarray) -> None:
        counts = np.asarray(counts)
        if counts.ndim != 1:
            raise ParameterError(f"counts must be 1-D, got shape {counts.shape}")
        if counts.size == 0:
            raise ParameterError("counts must be non-empty")
        if not np.issubdtype(counts.dtype, np.integer):
            raise ParameterError(f"counts must be integers, got dtype {counts.dtype}")
        if counts.min() < 0:
            raise ParameterError("counts must be non-negative")
        self.counts = np.ascontiguousarray(counts, dtype=np.int64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Iterable[int], domain_size: int) -> "FrequencyVector":
        """Count occurrences of each value of ``[0, domain_size)``."""
        domain_size = require_positive_int("domain_size", domain_size)
        arr = require_domain_values(values, domain_size)
        counts = np.bincount(arr, minlength=domain_size)
        return cls(counts.astype(np.int64))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def domain_size(self) -> int:
        """Number of possible values (length of the dense vector)."""
        return int(self.counts.size)

    @property
    def total(self) -> int:
        """``F1``: total number of occurrences (stream length)."""
        return int(self.counts.sum())

    @property
    def second_moment(self) -> int:
        """``F2``: the second frequency moment (self-join size)."""
        return int(np.dot(self.counts, self.counts))

    @property
    def distinct(self) -> int:
        """Number of values with non-zero frequency."""
        return int(np.count_nonzero(self.counts))

    def frequency(self, value: int) -> int:
        """Exact frequency of a single value."""
        if not 0 <= value < self.domain_size:
            raise DomainError(f"value {value} outside domain [0, {self.domain_size})")
        return int(self.counts[value])

    # ------------------------------------------------------------------
    # Join algebra
    # ------------------------------------------------------------------
    def inner(self, other: "FrequencyVector") -> int:
        """Exact join size against ``other`` (inner product)."""
        if not isinstance(other, FrequencyVector):
            raise ParameterError(f"expected FrequencyVector, got {type(other).__name__}")
        if self.domain_size != other.domain_size:
            raise DomainError(
                f"domain mismatch: {self.domain_size} vs {other.domain_size}"
            )
        return int(np.dot(self.counts, other.counts))

    def restrict(self, values: np.ndarray) -> "FrequencyVector":
        """A copy keeping only ``values`` (others zeroed)."""
        mask = np.zeros(self.domain_size, dtype=bool)
        idx = require_domain_values(values, self.domain_size, "values")
        mask[idx] = True
        return FrequencyVector(np.where(mask, self.counts, 0))

    def exclude(self, values: np.ndarray) -> "FrequencyVector":
        """A copy zeroing out ``values`` (complement of :meth:`restrict`)."""
        out = self.counts.copy()
        idx = require_domain_values(values, self.domain_size, "values")
        out[idx] = 0
        return FrequencyVector(out)

    def split_by_threshold(self, threshold: float) -> Tuple[np.ndarray, np.ndarray]:
        """Values with frequency above / at-or-below an absolute threshold.

        Returns ``(heavy, light)`` index arrays; ``heavy`` contains every
        value ``d`` with ``f(d) > threshold`` (the paper's frequent items
        for ``threshold = theta * F1``), ``light`` contains the remaining
        values with non-zero frequency.
        """
        heavy = np.flatnonzero(self.counts > threshold)
        light = np.flatnonzero((self.counts > 0) & (self.counts <= threshold))
        return heavy.astype(np.int64), light.astype(np.int64)

    def top_k(self, count: int) -> np.ndarray:
        """The ``count`` most frequent values (ties broken by value id)."""
        count = require_positive_int("count", count)
        count = min(count, self.domain_size)
        # argsort on (-frequency, value) for deterministic ordering.
        order = np.lexsort((np.arange(self.domain_size), -self.counts))
        return order[:count].astype(np.int64)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyVector):
            return NotImplemented
        return bool(np.array_equal(self.counts, other.counts))

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("FrequencyVector is mutable-backed and unhashable")

    def __len__(self) -> int:
        return self.domain_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FrequencyVector(domain_size={self.domain_size}, total={self.total}, "
            f"distinct={self.distinct})"
        )
