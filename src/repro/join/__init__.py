"""Exact join-size substrate: frequency vectors and ground-truth joins."""

from .frequency import FrequencyVector
from .exact import (
    exact_cyclic_join_size,
    exact_join_size,
    exact_multiway_chain_size,
    exact_self_join_size,
)

__all__ = [
    "FrequencyVector",
    "exact_join_size",
    "exact_multiway_chain_size",
    "exact_cyclic_join_size",
    "exact_self_join_size",
]
