"""Exact (ground-truth) join sizes for two-way, chain, and cyclic joins.

These functions define the quantities every estimator approximates:

* ``exact_join_size(A, B)`` — the two-way equi-join size
  ``sum_d f_A(d) * f_B(d)`` of the paper's query
  ``SELECT COUNT(*) FROM T1 JOIN T2 ON T1.A = T2.B``;
* ``exact_multiway_chain_size`` — the chain join of Section VI, e.g.
  ``T1(A) join T2(A, B) join T3(B)``, computed by matrix-chain
  contraction over the tables' joint frequency tensors;
* ``exact_cyclic_join_size`` — the "uncomplicated cyclic joins" of the
  Section VI discussion, e.g. ``T1(A,B) join T2(B,C) join T3(C,A)``:
  the trace of the joint-count matrix cycle product.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import ParameterError
from ..validation import require_domain_values, require_positive_int
from .frequency import FrequencyVector

__all__ = [
    "exact_join_size",
    "exact_self_join_size",
    "exact_multiway_chain_size",
    "exact_cyclic_join_size",
]


def _as_frequency_vector(values: Iterable[int], domain_size: int) -> FrequencyVector:
    if isinstance(values, FrequencyVector):
        return values
    return FrequencyVector.from_values(values, domain_size)


def exact_join_size(
    values_a: Iterable[int],
    values_b: Iterable[int],
    domain_size: int,
) -> int:
    """Exact two-way join size of two value streams.

    Both arguments may be raw value arrays or pre-built
    :class:`FrequencyVector` objects over the same domain.

    >>> exact_join_size([0, 0, 1], [0, 2, 2], 3)
    2
    """
    domain_size = require_positive_int("domain_size", domain_size)
    fa = _as_frequency_vector(values_a, domain_size)
    fb = _as_frequency_vector(values_b, domain_size)
    return fa.inner(fb)


def exact_self_join_size(values: Iterable[int], domain_size: int) -> int:
    """Exact self-join size (the second frequency moment ``F2``)."""
    return _as_frequency_vector(values, domain_size).second_moment


def _pair_count_matrix(
    pairs: Tuple[np.ndarray, np.ndarray],
    domain_a: int,
    domain_b: int,
) -> np.ndarray:
    """Dense joint frequency matrix of a two-attribute table."""
    left, right = pairs
    left = require_domain_values(left, domain_a, "left attribute")
    right = require_domain_values(right, domain_b, "right attribute")
    if left.shape != right.shape:
        raise ParameterError("two-attribute table columns must have equal length")
    flat = left * domain_b + right
    counts = np.bincount(flat, minlength=domain_a * domain_b)
    return counts.reshape(domain_a, domain_b).astype(np.int64)


def exact_multiway_chain_size(
    end_values: Tuple[Iterable[int], Iterable[int]],
    middle_tables: Sequence[Tuple[np.ndarray, np.ndarray]],
    domain_sizes: Sequence[int],
) -> int:
    """Exact size of a chain join ``T1(X0) |> T2(X0,X1) |> ... |> Tn(X_{n-2})``.

    Parameters
    ----------
    end_values:
        ``(first, last)`` single-attribute value streams of the two end
        tables (attributes ``X0`` and ``X_{n-2}``).
    middle_tables:
        For each middle table, a ``(left_column, right_column)`` pair of
        equal-length arrays carrying the two join attributes.
    domain_sizes:
        Domain size of each join attribute ``X0 .. X_{n-2}``; must have
        exactly ``len(middle_tables) + 1`` entries.

    The result is computed as the vector-matrix chain
    ``f1^T * C2 * C3 * ... * f_n`` where ``Ci`` are joint count matrices.

    >>> exact_multiway_chain_size(([0, 1], [0]), [(np.array([0, 1]), np.array([0, 0]))], [2, 1])
    2
    """
    if len(domain_sizes) != len(middle_tables) + 1:
        raise ParameterError(
            f"expected {len(middle_tables) + 1} domain sizes, got {len(domain_sizes)}"
        )
    domains: List[int] = [require_positive_int("domain size", d) for d in domain_sizes]
    first = _as_frequency_vector(end_values[0], domains[0]).counts.astype(np.float64)
    last = _as_frequency_vector(end_values[1], domains[-1]).counts.astype(np.float64)

    acc = first
    for idx, table in enumerate(middle_tables):
        matrix = _pair_count_matrix(table, domains[idx], domains[idx + 1]).astype(np.float64)
        acc = acc @ matrix
    return int(round(float(acc @ last)))


def exact_cyclic_join_size(
    tables: Sequence[Tuple[np.ndarray, np.ndarray]],
    domain_sizes: Sequence[int],
) -> int:
    """Exact size of the cycle join ``T1(X0,X1) |> T2(X1,X2) |> ... |> TL(X_{L-1},X0)``.

    Table ``i`` joins attribute ``X_i`` (left column) with ``X_{i+1 mod L}``
    (right column).  The count equals the trace of the cyclic product of
    the joint frequency matrices.

    >>> t = (np.array([0, 1]), np.array([0, 1]))
    >>> exact_cyclic_join_size([t, t, t], [2, 2, 2])
    2
    """
    if len(tables) < 2:
        raise ParameterError("a cycle needs at least two tables")
    if len(domain_sizes) != len(tables):
        raise ParameterError(
            f"expected {len(tables)} domain sizes, got {len(domain_sizes)}"
        )
    domains: List[int] = [require_positive_int("domain size", d) for d in domain_sizes]
    num = len(tables)
    acc = _pair_count_matrix(tables[0], domains[0], domains[1 % num]).astype(np.float64)
    for idx in range(1, num):
        matrix = _pair_count_matrix(
            tables[idx], domains[idx], domains[(idx + 1) % num]
        ).astype(np.float64)
        acc = acc @ matrix
    return int(round(float(np.trace(acc))))
