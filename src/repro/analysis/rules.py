"""The RPR rule catalogue — the repo's invariants, machine-checked.

Each rule encodes one correctness contract the test suites can only
probe, never enforce:

=======  ==============================================================
RPR101   All randomness flows through :mod:`repro.rng` — no global or
         unseeded RNG construction anywhere else.
RPR102   Merge safety: pre-FWHT accumulators stay pure int64 and all
         scatter-adds route through ``accumulate.bincount_accumulate``.
RPR103   Backend ABI: hot-path kernels are reached via
         ``get_backend()``, never by importing a backend implementation
         module (or numba) directly.
RPR104   Privacy accounting: ``exp(epsilon)`` is computed only inside
         ``mechanisms/`` / ``privacy/`` where the budget ledger sees it.
RPR105   Determinism smells in hot/experiment paths: unordered set
         iteration, ``dict.popitem``, wall-clock-derived seeds.
RPR106   Async service paths stay non-blocking: no ``time.sleep``, sync
         file I/O, or blocking HTTP clients inside ``service/`` async
         functions, and no wall-clock-seeded logic anywhere in
         ``service/``.
RPR107   Ledger charge rows are written only by ``privacy/budget.py``:
         no direct ``.charges.append`` / ``.extend`` / ``+=`` mutation
         elsewhere — absorbing foreign charges must go through
         ``BudgetLedger.absorb`` (collision-renaming) or ``restore``
         (deserialisation).
=======  ==============================================================

The rules are deliberately heuristic (static analysis of a dynamic
language always is); false positives are waived line-by-line with
``# repro: ignore[RPRnnn]`` so every waiver is visible in the diff that
introduces it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from .base import (
    Diagnostic,
    FileContext,
    Rule,
    dotted_name,
    register_rule,
    target_names,
)

__all__ = [
    "UnseededRandomnessRule",
    "MergeUnsafeAccumulatorRule",
    "BackendBypassRule",
    "PrivacyBudgetBypassRule",
    "NondeterminismSmellRule",
    "ServiceBlockingCallRule",
    "LedgerChargesMutationRule",
]

# Accumulator naming convention on merge-critical paths (core/,
# distributed/, transform/): ``acc``, ``accum``, ``accumulator``,
# ``raw``, and underscore-joined variants (``_raw``, ``raw_a``).
_ACC_NAME_RE = re.compile(r"(?:^|_)(?:acc(?:um(?:ulator)?)?|raw)(?:_|$|\d)")

# Epsilon-ish identifiers (``eps``, ``epsilon``, ``self.epsilon``, ...)
# — guarded so ``steps`` / ``timesteps`` do not match.
_EPSILON_RE = re.compile(r"(?<![A-Za-z0-9])(?:eps|epsilon)s?(?![a-z])", re.IGNORECASE)

# Seed/RNG-ish binding names for the wall-clock-seed smell.
_SEED_NAME_RE = re.compile(r"(?:^|_)(?:seed|rng)s?(?:_|$)")

#: Legacy numpy global-state RNG entry points (module-level draws share
#: one hidden global stream — poison for reproducibility).
_NP_LEGACY_RANDOM = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "bytes",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "binomial",
    "poisson",
    "exponential",
    "laplace",
    "geometric",
    "beta",
    "gamma",
    "multinomial",
    "get_state",
    "set_state",
    "RandomState",
}

#: Backend ABI kernel names (methods of :class:`repro.backend.Backend`).
#: Calling one as a *bare name* means it was imported from an
#: implementation module instead of dispatched via ``get_backend()``.
#: ``bincount_accumulate`` is absent: :func:`repro.accumulate.
#: bincount_accumulate` is the sanctioned wrapper of the same name.
_KERNEL_NAMES = {
    "polyval_mersenne_rows",
    "polyval_mersenne_all",
    "fused_encode_accumulate",
    "fused_encode_accumulate_trials",
    "fused_encode_shared_pass",
    "fwht_batch_inplace",
    "oracle_support_scan",
}

_FLOAT_DTYPE_NAMES = {"float", "float16", "float32", "float64", "float128", "double"}


def _is_float_dtype_expr(node: ast.AST) -> bool:
    """Whether ``node`` denotes a float dtype (``float``, ``np.float64``,
    ``"float32"``, ``np.dtype("float64")``)."""
    if isinstance(node, ast.Name):
        return node.id in _FLOAT_DTYPE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _FLOAT_DTYPE_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith("float") or node.value in {"f4", "f8", "d"}
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] == "dtype" and node.args:
            return _is_float_dtype_expr(node.args[0])
    return False


def _is_int32_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = dotted_name(node)
        return name is not None and name.split(".")[-1] in {"int32", "uint32"}
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in {"int32", "uint32", "i4", "u4"}
    return False


def _float_cast_in(node: ast.AST) -> Optional[ast.Call]:
    """First ``.astype(<float dtype>)`` call inside ``node``, if any."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "astype"
        ):
            dtype_args = list(sub.args) + [
                kw.value for kw in sub.keywords if kw.arg == "dtype"
            ]
            if any(_is_float_dtype_expr(a) for a in dtype_args):
                return sub
    return None


def _contains_true_division(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div)
        for sub in ast.walk(node)
    )


@register_rule
class UnseededRandomnessRule(Rule):
    code = "RPR101"
    name = "unseeded-or-global-randomness"
    rationale = (
        "Every stochastic component must draw from a generator provided by "
        "repro.rng (ensure_rng/spawn); global or unseeded RNG state breaks "
        "bit-identical reproduction and the sharded-merge property suite."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_module("rng.py"):
            return  # the one sanctioned home of default_rng construction
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            "stdlib 'random' uses hidden global state; draw "
                            "from a numpy Generator via repro.rng.ensure_rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "").split(".")[0] == "random":
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "stdlib 'random' uses hidden global state; draw "
                        "from a numpy Generator via repro.rng.ensure_rng",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Diagnostic]:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if len(parts) >= 3 and parts[-3] in {"np", "numpy"} and parts[-2] == "random":
            if parts[-1] in _NP_LEGACY_RANDOM:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"legacy global-state API numpy.random.{parts[-1]}; use a "
                    "seeded Generator from repro.rng.ensure_rng/spawn",
                )
                return
        if parts[-1] == "default_rng" and not node.args and not node.keywords:
            yield ctx.diagnostic(
                node,
                self.code,
                "default_rng() without a seed is nondeterministic; route "
                "through repro.rng.ensure_rng (which owns the None case)",
            )


@register_rule
class MergeUnsafeAccumulatorRule(Rule):
    code = "RPR102"
    name = "merge-unsafe-accumulator-op"
    rationale = (
        "Sharded merges are byte-identical only because pre-FWHT "
        "accumulators stay pure int64 and every scatter-add goes through "
        "accumulate.bincount_accumulate with int64 flat indices; a stray "
        "float cast, np.add.at, or int32 index silently breaks merge "
        "invariance (and overflows past 2**31 entries)."
    )

    #: Directories whose accumulators are merge-critical.
    _SCOPED = ("core", "distributed", "transform")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_repro_package:
            return
        sanctioned = ctx.is_module("accumulate.py") or ctx.in_package("backend")
        scoped = ctx.in_package(*self._SCOPED)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                if not sanctioned:
                    yield from self._check_add_at(ctx, node)
                yield from self._check_bincount_indices(ctx, node)
            elif scoped and isinstance(node, ast.Assign):
                yield from self._check_assign(ctx, node)
            elif scoped and isinstance(node, ast.AugAssign):
                yield from self._check_augassign(ctx, node)

    def _check_add_at(self, ctx: FileContext, node: ast.Call) -> Iterator[Diagnostic]:
        name = dotted_name(node.func)
        if name in {"np.add.at", "numpy.add.at"}:
            yield ctx.diagnostic(
                node,
                self.code,
                "np.add.at is a banned scatter-add (slow, and bypasses the "
                "backend ABI); use repro.accumulate.bincount_accumulate",
            )

    def _check_bincount_indices(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Diagnostic]:
        name = dotted_name(node.func)
        if name is None or name.split(".")[-1] not in {
            "bincount",
            "bincount_accumulate",
        }:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "astype"
                    and any(
                        _is_int32_expr(a)
                        for a in list(sub.args)
                        + [kw.value for kw in sub.keywords if kw.arg == "dtype"]
                    )
                ):
                    yield ctx.diagnostic(
                        sub,
                        self.code,
                        "int32 flat indices feeding bincount overflow past "
                        "2**31 cells; build flat offsets in int64",
                    )

    def _check_assign(self, ctx: FileContext, node: ast.Assign) -> Iterator[Diagnostic]:
        names = [
            n for t in node.targets for n in target_names(t) if _ACC_NAME_RE.search(n)
        ]
        if not names:
            return
        cast = _float_cast_in(node.value)
        if cast is not None:
            yield ctx.diagnostic(
                cast,
                self.code,
                f"float cast bound to accumulator-named {names[0]!r}; pre-FWHT "
                "accumulators must stay int64 until finalisation (rename the "
                "result if this is a finalised copy)",
            )
        elif _contains_true_division(node.value):
            yield ctx.diagnostic(
                node,
                self.code,
                f"true division bound to accumulator-named {names[0]!r} yields "
                "float; keep merge-path accumulators int64 (or rename)",
            )

    def _check_augassign(
        self, ctx: FileContext, node: ast.AugAssign
    ) -> Iterator[Diagnostic]:
        names = [n for n in target_names(node.target) if _ACC_NAME_RE.search(n)]
        if not names:
            return
        if isinstance(node.op, ast.Div):
            yield ctx.diagnostic(
                node,
                self.code,
                f"in-place true division on accumulator {names[0]!r} turns it "
                "float; scale a finalised copy instead",
            )
        elif isinstance(node.op, (ast.Mult, ast.Add, ast.Sub)) and any(
            isinstance(sub, ast.Constant) and isinstance(sub.value, float)
            for sub in ast.walk(node.value)
        ):
            yield ctx.diagnostic(
                node,
                self.code,
                f"float-constant arithmetic on accumulator {names[0]!r}; "
                "merge-path accumulators must stay int64",
            )


@register_rule
class BackendBypassRule(Rule):
    code = "RPR103"
    name = "backend-abi-bypass"
    rationale = (
        "Hot-path kernels must be reached through get_backend() dispatch so "
        "the numpy/numba (and future GPU) implementations stay swappable and "
        "parity-tested; importing an implementation module or numba directly "
        "pins one backend and dodges the parity suite."
    )

    _IMPL_MODULES = {"numpy_backend", "numba_backend"}

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_repro_package or ctx.in_package("backend"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    leaf = alias.name.split(".")[-1]
                    if root == "numba":
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            "direct numba import outside repro/backend/; "
                            "compiled kernels live behind the backend ABI",
                        )
                    elif leaf in self._IMPL_MODULES:
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            f"backend implementation module {leaf!r} imported "
                            "directly; dispatch via repro.backend.get_backend()",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                leaf = module.split(".")[-1]
                if node.level == 0 and module.split(".")[0] == "numba":
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "direct numba import outside repro/backend/; "
                        "compiled kernels live behind the backend ABI",
                    )
                elif leaf in self._IMPL_MODULES:
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"import from backend implementation module {leaf!r}; "
                        "dispatch via repro.backend.get_backend()",
                    )
                else:
                    for alias in node.names:
                        if alias.name in self._IMPL_MODULES:
                            yield ctx.diagnostic(
                                node,
                                self.code,
                                f"backend implementation module {alias.name!r} "
                                "imported directly; dispatch via "
                                "repro.backend.get_backend()",
                            )
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id in _KERNEL_NAMES:
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"ABI kernel {node.func.id!r} called as a bare name; "
                        "call it as a method of get_backend()",
                    )


@register_rule
class PrivacyBudgetBypassRule(Rule):
    code = "RPR104"
    name = "privacy-budget-bypass"
    rationale = (
        "Perturbation probabilities (anything of the form exp(epsilon)) must "
        "be computed inside mechanisms/ or privacy/ where the BudgetLedger "
        "and the LDP audits can account for them; an exp(eps) elsewhere is "
        "unaccounted privacy spend."
    )

    _EXEMPT = ("mechanisms", "privacy")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_repro_package or ctx.in_package(*self._EXEMPT):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] not in {"exp", "expm1", "exp2"}:
                continue
            if name not in {"exp", "expm1", "exp2"} and name.split(".")[-2] not in {
                "math",
                "np",
                "numpy",
            }:
                continue
            for arg in node.args:
                if _EPSILON_RE.search(ctx.segment(arg)):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "exp() of an epsilon-named expression outside "
                        "mechanisms/ and privacy/; compute perturbation "
                        "probabilities where the budget ledger sees them",
                    )
                    break


@register_rule
class NondeterminismSmellRule(Rule):
    code = "RPR105"
    name = "nondeterminism-smell"
    rationale = (
        "Hot and experiment paths feed the bit-identity suites: iteration "
        "order over sets is hash-seed dependent, dict.popitem is "
        "order-sensitive, and wall-clock seeds make runs unreproducible — "
        "sort the iterable or thread a seeded Generator instead."
    )

    _SCOPED = ("core", "distributed", "transform", "experiments", "sketches", "hashing")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_repro_package or not ctx.in_package(*self._SCOPED):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                yield from self._check_iter(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iter(ctx, gen.iter)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Assign):
                bound = [
                    n
                    for t in node.targets
                    for n in target_names(t)
                    if _SEED_NAME_RE.search(n)
                ]
                if bound and self._wall_clock_in(node.value):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"wall clock bound to {bound[0]!r}; seeds must come "
                        "from explicit configuration or repro.rng.derive_seed",
                    )

    def _check_iter(self, ctx: FileContext, iter_node: ast.AST) -> Iterator[Diagnostic]:
        if self._is_set_expr(iter_node):
            yield ctx.diagnostic(
                iter_node,
                self.code,
                "iteration over a set has hash-seed-dependent order; wrap "
                "in sorted() to pin the traversal",
            )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Diagnostic]:
        if isinstance(node.func, ast.Attribute) and node.func.attr == "popitem":
            yield ctx.diagnostic(
                node,
                self.code,
                "dict.popitem() removes an order-dependent entry; pop an "
                "explicit (sorted) key instead",
            )
            return
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in {"ensure_rng", "default_rng", "spawn"}:
            for arg in node.args:
                if self._wall_clock_in(arg):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "wall-clock-derived seed; seeds must be explicit "
                        "configuration, not time.time()",
                    )
                    break
        for kw in node.keywords:
            if kw.arg and _SEED_NAME_RE.search(kw.arg) and self._wall_clock_in(kw.value):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"wall clock passed as {kw.arg!r}; seeds must be explicit "
                    "configuration, not time.time()",
                )

    @staticmethod
    def _wall_clock_in(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name in {"time.time", "time.time_ns", "time.monotonic"}:
                    return True
        return False

    @classmethod
    def _is_set_expr(cls, node: ast.AST, _depth: int = 0) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name is not None and name.split(".")[-1] in {"set", "frozenset"}
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            if _depth > 4:
                return False
            return cls._is_set_expr(node.left, _depth + 1) or cls._is_set_expr(
                node.right, _depth + 1
            )
        return False


@register_rule
class ServiceBlockingCallRule(Rule):
    code = "RPR106"
    name = "blocking-call-in-async-service-path"
    rationale = (
        "The online service's event loop owns every connection: one "
        "blocking call (time.sleep, sync file I/O, a synchronous HTTP "
        "client) inside an async function stalls all of them, defeating "
        "the bounded-latency contract; real blocking work belongs in sync "
        "helpers dispatched via run_in_executor.  Wall-clock-seeded logic "
        "anywhere in service/ breaks the byte-identical-recovery invariant."
    )

    #: Dotted calls that block the loop wherever they appear.
    _BLOCKING_CALLS = {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "os.replace",
        "os.rename",
    }

    #: Attribute calls that are sync file I/O no matter the receiver
    #: (Path methods and raw handles share these names).
    _BLOCKING_ATTRS = {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "fsync",
    }

    #: Import roots of synchronous HTTP clients — banned from service/
    #: entirely (even sync helpers run on the single service executor
    #: thread, where a stuck remote call wedges every fold behind it).
    _BLOCKING_CLIENT_ROOTS = {"requests"}

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_repro_package or not ctx.in_package("service"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in self._BLOCKING_CLIENT_ROOTS:
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            f"synchronous HTTP client {alias.name!r} imported in "
                            "service/; use asyncio streams (or move the call "
                            "out of the service tier)",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level == 0 and module.split(".")[0] in self._BLOCKING_CLIENT_ROOTS:
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"synchronous HTTP client {module!r} imported in "
                        "service/; use asyncio streams (or move the call out "
                        "of the service tier)",
                    )
            elif isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(ctx, node)
            elif isinstance(node, ast.Assign):
                bound = [
                    n
                    for t in node.targets
                    for n in target_names(t)
                    if _SEED_NAME_RE.search(n)
                ]
                if bound and NondeterminismSmellRule._wall_clock_in(node.value):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"wall clock bound to {bound[0]!r} in service/; the "
                        "byte-identical-recovery invariant needs seeds derived "
                        "from configuration + WAL sequence, never the clock",
                    )

    def _check_async_body(
        self, ctx: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        for node in self._async_scope(func):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in self._BLOCKING_CALLS:
                hint = (
                    "use asyncio.sleep"
                    if name == "time.sleep"
                    else "move it into a sync helper run via run_in_executor"
                )
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"blocking call {name}() inside async {func.name!r} stalls "
                    f"the event loop; {hint}",
                )
            elif name is not None and (
                name == "open" or name.split(".")[0] in self._BLOCKING_CLIENT_ROOTS
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"blocking call {name}() inside async {func.name!r} stalls "
                    "the event loop; move it into a sync helper run via "
                    "run_in_executor",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._BLOCKING_ATTRS
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"sync file I/O .{node.func.attr}() inside async "
                    f"{func.name!r} stalls the event loop; move it into a sync "
                    "helper run via run_in_executor",
                )

    @staticmethod
    def _async_scope(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """The statements that run *on the event loop* in ``func``.

        Nested sync defs and lambdas are skipped — they are the
        executor-target helpers the rule is steering work into — and
        nested async defs get their own visit from the outer walk.
        """
        stack: list = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))


@register_rule
class LedgerChargesMutationRule(Rule):
    code = "RPR107"
    name = "direct-ledger-charges-mutation"
    rationale = (
        "Charge rows carry the parallel-composition invariant: group names "
        "must stay collision-free when cohorts from different sessions land "
        "in one ledger, and only BudgetLedger.absorb (collision-renaming) / "
        "restore (verbatim deserialisation) in privacy/budget.py preserve "
        "that.  A direct .charges.append elsewhere can silently collapse "
        "two disjoint cohorts into one group and double-count epsilon."
    )

    #: In-place list mutators that write rows past the ledger API.
    _MUTATORS = {"append", "extend", "insert"}

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_repro_package:
            return
        if ctx.package_parts == ("privacy", "budget.py"):
            return  # the one sanctioned home of charge-row writes
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._MUTATORS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "charges"
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"direct .charges.{func.attr}() outside privacy/budget.py "
                        "bypasses collision renaming; use BudgetLedger.absorb "
                        "(merges) or BudgetLedger.restore (deserialisation)",
                    )
            elif isinstance(node, ast.AugAssign):
                if (
                    isinstance(node.target, ast.Attribute)
                    and node.target.attr == "charges"
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "in-place += on a .charges list outside privacy/budget.py "
                        "bypasses collision renaming; use BudgetLedger.absorb",
                    )
