"""Rule framework for the :mod:`repro.analysis` invariant linter.

The linter is a thin orchestration layer over stdlib :mod:`ast`: every
rule is a :class:`Rule` subclass registered under a stable ``RPRnnn``
error code, receives one parsed :class:`FileContext` per file, and yields
:class:`Diagnostic` records.  Nothing here imports numpy — the linter
must stay runnable in a bare-stdlib environment (CI's lint job, editor
integrations) even though the package it checks does not.

Why an in-tree linter at all: the repo's correctness rests on invariants
generic tools cannot express — bit-identical sharded merges require
pure-int64 pre-FWHT accumulators and strictly seeded RNG streams, the
backend ABI requires hot paths to dispatch through
:func:`repro.backend.get_backend`, and the LDP guarantees require every
epsilon-consuming computation to happen where the budget ledger can see
it.  Each rule turns one of those tribal-knowledge rules into a
machine-checked one (see :mod:`repro.analysis.rules` for the catalogue).

Suppressions
------------
A diagnostic is suppressed by a trailing comment on the flagged line::

    x = np.add.at(out, idx, 1)  # repro: ignore[RPR102]

``# repro: ignore`` with no bracket suppresses every code on that line;
a bracketed comma-separated list suppresses only the named codes.
Suppressions are deliberately line-scoped — file- or block-scoped escape
hatches grow silent blind spots.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "RULES",
    "register_rule",
    "parse_suppressions",
    "SYNTAX_ERROR_CODE",
]

#: Pseudo-code used for files the parser rejects (not a registered rule:
#: a file that does not parse cannot be checked, which is itself a finding).
SYNTAX_ERROR_CODE = "RPR000"

_CODE_RE = re.compile(r"^RPR\d{3}$")

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?"
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a file/line/column."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    @property
    def baseline_key(self) -> str:
        """Stable key used by the baseline file (line numbers excluded,
        so unrelated edits above a baselined finding do not invalidate it)."""
        return f"{self.path}::{self.code}"


def parse_suppressions(source: str) -> Dict[int, Optional[frozenset]]:
    """Map 1-based line numbers to suppressed codes.

    ``None`` means every code is suppressed on that line (bare
    ``# repro: ignore``); otherwise the value is the frozenset of codes
    named in the bracket.  Lines without a suppression comment are absent.
    """
    table: Dict[int, Optional[frozenset]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            table[lineno] = None
        else:
            codes = frozenset(
                part.strip().upper() for part in raw.split(",") if part.strip()
            )
            # An empty bracket ("ignore[]") suppresses nothing — treat it
            # as a malformed comment rather than a blanket waiver.
            table[lineno] = codes if codes else frozenset()
    return table


class FileContext:
    """One parsed file plus the path facts rules scope themselves by."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.display_path = _display_path(path)
        parts = Path(self.display_path).parts
        if "repro" in parts:
            # Everything after the *last* ``repro`` directory component:
            # the logical location inside the package, independent of
            # where the checkout or the fixture tree lives.
            idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
            self.package_parts: Tuple[str, ...] = parts[idx + 1 :]
            self.in_repro_package = True
        else:
            self.package_parts = parts
            self.in_repro_package = False
        self.suppressions = parse_suppressions(source)

    # -- path predicates ------------------------------------------------
    def in_package(self, *names: str) -> bool:
        """Whether the file sits under any of the named repro subpackages."""
        if not self.in_repro_package or not self.package_parts:
            return False
        return self.package_parts[0] in names

    def is_module(self, filename: str) -> bool:
        """Whether this is the top-level repro module ``filename``."""
        return self.in_repro_package and self.package_parts == (filename,)

    # -- helpers for rules ----------------------------------------------
    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` (empty string when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""

    def diagnostic(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        return Diagnostic(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )

    def is_suppressed(self, diag: Diagnostic) -> bool:
        codes = self.suppressions.get(diag.line, frozenset())
        if codes is None:  # bare "# repro: ignore"
            return True
        return diag.code in codes


def _display_path(path: Path) -> str:
    """Posix path relative to the working directory when possible."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


class Rule:
    """Base class: one invariant, one stable error code.

    Subclasses set ``code`` / ``name`` / ``rationale`` and implement
    :meth:`check`.  ``rationale`` is user-facing — it is what
    ``--list-rules`` and the README catalogue print, so it should say
    *why* the invariant exists, not restate the pattern.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def run(self, ctx: FileContext) -> Iterable[Diagnostic]:
        return self.check(ctx)


#: Registry of rule instances keyed by error code, filled by
#: :func:`register_rule` as :mod:`repro.analysis.rules` is imported.
RULES: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: validate the code and add an instance to RULES."""
    if not _CODE_RE.match(cls.code):
        raise ValueError(f"rule {cls.__name__} has invalid code {cls.code!r}")
    if cls.code == SYNTAX_ERROR_CODE:
        raise ValueError(f"{SYNTAX_ERROR_CODE} is reserved for parse failures")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls()
    return cls


# -- shared AST utilities ----------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def target_names(target: ast.AST) -> Iterator[str]:
    """Bound identifier names of an assignment target (tuples unpacked,
    attributes reported by their terminal attribute name)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Attribute):
        yield target.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from target_names(element)
    elif isinstance(target, ast.Starred):
        yield from target_names(target.value)
