"""Baseline files: tolerated pre-existing diagnostics.

A baseline lets the linter land in a codebase with known debt without
turning every CI run red: diagnostics matching a baseline entry are
reported as *baselined* and do not affect the exit code, while any *new*
diagnostic still fails.  Entries are ``path::code`` keys with an integer
allowance — line numbers are deliberately excluded so editing unrelated
lines above a baselined finding does not invalidate it, and the count
ratchets: if a file goes from 3 tolerated findings to 1, regenerating
the baseline (``--update-baseline``) locks in the improvement.

This repo ships an **empty** baseline (``tools/lint_baseline.json``):
every invariant violation the initial sweep found was fixed rather than
grandfathered.  The mechanism exists for downstream forks and for
emergency landings, not for routine use.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from .base import Diagnostic

__all__ = ["load_baseline", "save_baseline", "apply_baseline"]

_VERSION = 1


def load_baseline(path: Path) -> Counter:
    """Read a baseline file into a ``path::code -> allowance`` counter."""
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(
            f"{path}: not a repro-lint baseline (expected version {_VERSION})"
        )
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"{path}: 'entries' must be an object")
    counter: Counter = Counter()
    for key, allowance in entries.items():
        if not isinstance(allowance, int) or allowance < 1:
            raise ValueError(f"{path}: allowance for {key!r} must be a positive int")
        counter[key] = allowance
    return counter


def save_baseline(path: Path, diagnostics: Iterable[Diagnostic]) -> None:
    """Write the baseline that exactly covers ``diagnostics``."""
    counts = Counter(diag.baseline_key for diag in diagnostics)
    payload = {
        "version": _VERSION,
        "entries": {key: counts[key] for key in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(
    diagnostics: Iterable[Diagnostic], baseline: Counter
) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Split diagnostics into (fresh, baselined).

    Each baseline entry absorbs up to its allowance of matching
    diagnostics, first-come (diagnostics arrive sorted by position, so
    the absorbed ones are the earliest in the file).
    """
    remaining = Counter(baseline)
    fresh: List[Diagnostic] = []
    absorbed: List[Diagnostic] = []
    for diag in diagnostics:
        if remaining[diag.baseline_key] > 0:
            remaining[diag.baseline_key] -= 1
            absorbed.append(diag)
        else:
            fresh.append(diag)
    return fresh, absorbed
