"""repro.analysis — AST-based invariant linter for the repro codebase.

A self-contained static-analysis pass (stdlib :mod:`ast` only, no
third-party dependencies) that machine-checks the correctness contracts
the rest of the package relies on but generic linters cannot express:

* **RPR101** — all randomness flows through :mod:`repro.rng`; no global
  or unseeded RNG construction anywhere else.
* **RPR102** — merge-critical accumulators stay pure int64 with
  scatter-adds routed through ``accumulate.bincount_accumulate`` over
  int64 flat indices (``np.add.at`` is banned outside its sanctioned
  implementations).
* **RPR103** — hot kernels are dispatched via
  :func:`repro.backend.get_backend`, never by importing a backend
  implementation module (or numba) directly.
* **RPR104** — ``exp(epsilon)`` is computed only inside ``mechanisms/``
  and ``privacy/`` where the budget ledger accounts for it.
* **RPR105** — hot/experiment paths avoid set-iteration order,
  ``dict.popitem`` and wall-clock seeds.

Run it with ``python -m repro.analysis`` (or the ``repro-lint`` console
script, or ``repro-experiments lint``); see :mod:`repro.analysis.runner`
for flags and :mod:`repro.analysis.rules` for the catalogue.  False
positives are waived per line with ``# repro: ignore[RPRnnn]``.
"""

from .base import (
    RULES,
    SYNTAX_ERROR_CODE,
    Diagnostic,
    FileContext,
    Rule,
    register_rule,
)
from . import rules  # noqa: F401 - registers the built-in rules
from .baseline import apply_baseline, load_baseline, save_baseline
from .runner import LintResult, iter_python_files, lint_file, lint_paths, main

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "RULES",
    "SYNTAX_ERROR_CODE",
    "register_rule",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
    "LintResult",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "main",
]
