"""File discovery, rule execution, and the ``repro-lint`` entry point.

The runner walks the given paths (default: the conventional repo layout
— ``src``, ``tests``, ``benchmarks``, ``examples`` — whichever exist
under the working directory), parses every ``*.py`` file once, runs the
full rule registry over each parse tree, applies line suppressions and
the optional baseline, and renders text or JSON.

Exit codes: 0 — clean (after suppressions and baseline); 1 — at least
one fresh diagnostic, or a file that does not parse; 2 — usage error.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, TextIO

from .base import RULES, SYNTAX_ERROR_CODE, Diagnostic, FileContext
from . import rules as _rules  # noqa: F401 - imported to populate RULES

__all__ = ["LintResult", "iter_python_files", "lint_file", "lint_paths", "main"]

#: Directory names never descended into.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".hypothesis",
    ".pytest_cache",
    ".benchmarks",
    ".mypy_cache",
    ".ruff_cache",
    "build",
    "dist",
    ".eggs",
    "node_modules",
}

#: Default lint targets, filtered to the ones that exist.
_DEFAULT_TARGETS = ("src", "tests", "benchmarks", "examples")


@dataclass
class LintResult:
    """Outcome of one lint run (before baseline application)."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    def extend(self, other: "LintResult") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``*.py`` file under ``paths``, sorted, hidden and
    cache directories skipped."""
    seen = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py" and path not in seen:
                seen.add(path)
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(p in _SKIP_DIRS or p.startswith(".") for p in parts[:-1]):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_file(path: Path) -> LintResult:
    """Run every registered rule over one file."""
    result = LintResult(files_checked=1)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        result.diagnostics.append(
            Diagnostic(
                path=_display(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=SYNTAX_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return result
    ctx = FileContext(path, source, tree)
    collected: List[Diagnostic] = []
    for code in sorted(RULES):
        collected.extend(RULES[code].run(ctx))
    collected.sort(key=lambda d: (d.line, d.col, d.code))
    for diag in collected:
        (result.suppressed if ctx.is_suppressed(diag) else result.diagnostics).append(
            diag
        )
    return result


def _display(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths: Sequence[Path]) -> LintResult:
    """Lint every python file under ``paths``."""
    result = LintResult()
    for path in iter_python_files(paths):
        result.extend(lint_file(path))
    result.diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return result


def _default_paths() -> List[Path]:
    existing = [Path(name) for name in _DEFAULT_TARGETS if Path(name).is_dir()]
    return existing or [Path(".")]


def _render_text(
    fresh: List[Diagnostic],
    baselined: List[Diagnostic],
    result: LintResult,
    stream: TextIO,
) -> None:
    for diag in fresh:
        print(diag.format_text(), file=stream)
    summary = (
        f"{result.files_checked} file(s) checked: "
        f"{len(fresh)} diagnostic(s), {len(result.suppressed)} suppressed, "
        f"{len(baselined)} baselined"
    )
    print(summary, file=stream)


def _render_json(
    fresh: List[Diagnostic],
    baselined: List[Diagnostic],
    result: LintResult,
    stream: TextIO,
) -> None:
    payload = {
        "files_checked": result.files_checked,
        "diagnostics": [d.to_dict() for d in fresh],
        "suppressed": len(result.suppressed),
        "baselined": [d.to_dict() for d in baselined],
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the repro codebase: seeded-RNG "
            "discipline (RPR101), merge-safe accumulators (RPR102), "
            "backend-ABI dispatch (RPR103), privacy-budget accounting "
            "(RPR104) and hot-path determinism (RPR105)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src tests benchmarks "
        "examples, whichever exist)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="tolerate diagnostics recorded in this baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline to exactly cover the current diagnostics "
        "and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.analysis`` / ``repro-lint``."""
    from .baseline import apply_baseline, load_baseline, save_baseline

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code}  {rule.name}")
            print(f"        {rule.rationale}")
        return 0

    if args.update_baseline and args.baseline is None:
        parser.error("--update-baseline requires --baseline")

    paths = list(args.paths) or _default_paths()
    try:
        result = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        save_baseline(args.baseline, result.diagnostics)
        print(
            f"wrote {args.baseline} covering {len(result.diagnostics)} "
            f"diagnostic(s)"
        )
        return 0

    if args.baseline is not None and args.baseline.exists():
        baseline = load_baseline(args.baseline)
        fresh, baselined = apply_baseline(result.diagnostics, baseline)
    else:
        fresh, baselined = result.diagnostics, []

    render = _render_json if args.format == "json" else _render_text
    render(fresh, baselined, result, sys.stdout)
    return 1 if fresh else 0
