"""Exponentially time-decayed estimation over per-epoch accumulators.

A decayed join-size query weights each epoch's contribution by
``lambda^age`` (``age`` 0 for the newest epoch) with a *rational* decay
factor ``lambda = numerator / denominator``.  Floats never touch the
accumulators: with ``A`` the maximum age, the integer weight

    ``w(age) = numerator^age * denominator^(A - age)``

equals ``denominator^A * lambda^age`` exactly, so the weighted sum of
int64 epoch accumulators is itself an exact int64 array and the whole
combination stays deterministic across platforms and merge orders.  The
estimator pipeline (debias scale, FWHT, Eq. (5) median of row inner
products) is linear in each stream's accumulator, so running it on the
weighted sums yields ``denominator^(2A)`` times the decayed estimate —
one exact integer division at the very end undoes the scaling.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..backend import use_backend
from ..core.params import SketchParams
from ..core.server import LDPJoinSketch
from ..distributed.partial import PartialAggregate
from ..errors import ParameterError, ProtocolError
from ..hashing import HashPairs
from ..transform.hadamard import fwht_inplace

__all__ = ["decay_weights", "combine_decayed", "decayed_join_estimate"]

#: Per-term headroom bound: every ``weight * |cell|`` product (and their
#: running sum) must stay below this to rule out int64 wraparound.
_INT64_HEADROOM = 2**62


def decay_weights(count: int, numerator: int, denominator: int) -> List[int]:
    """Integer decay weights of ``count`` epochs, oldest first.

    Entry ``i`` (age ``count - 1 - i``) is
    ``numerator^(count-1-i) * denominator^i`` — exactly
    ``denominator^(count-1) * (numerator/denominator)^age`` as Python
    ints of unbounded precision.
    """
    if int(count) < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    numerator, denominator = _validate_decay(numerator, denominator)
    max_age = int(count) - 1
    return [
        numerator ** (max_age - i) * denominator**i for i in range(int(count))
    ]


def _validate_decay(numerator: int, denominator: int) -> Tuple[int, int]:
    numerator, denominator = int(numerator), int(denominator)
    if numerator < 1 or denominator < 1:
        raise ParameterError(
            f"decay must be a positive rational, got {numerator}/{denominator}"
        )
    if numerator > denominator:
        raise ParameterError(
            f"decay factor must not exceed 1, got {numerator}/{denominator}"
        )
    return numerator, denominator


def combine_decayed(
    arrays: Sequence[Optional[np.ndarray]], weights: Sequence[int]
) -> np.ndarray:
    """Exact ``sum_i weights[i] * arrays[i]`` on int64 accumulators.

    ``None`` entries (epochs in which the stream saw no reports)
    contribute zero.  Raises :class:`~repro.errors.ParameterError`
    instead of silently wrapping when a product could leave int64 —
    deepen the denominator or shorten the window rather than trust a
    wrapped estimate.
    """
    if len(arrays) != len(weights):
        raise ParameterError(
            f"{len(arrays)} arrays but {len(weights)} weights"
        )
    shaped = [a for a in arrays if a is not None]
    if not shaped:
        raise ParameterError("cannot combine an all-empty array list")
    shape = shaped[0].shape
    terms = sum(1 for a in arrays if a is not None)
    combined = np.zeros(shape, dtype=np.int64)
    for array, weight in zip(arrays, weights):
        if array is None:
            continue
        if array.shape != shape:
            raise ParameterError(
                f"accumulator shaped {array.shape} does not match {shape}"
            )
        weight = int(weight)
        peak = int(np.abs(array).max(initial=0)) * weight
        if peak > _INT64_HEADROOM // max(terms, 1):
            raise ParameterError(
                f"decayed combination would overflow int64 (peak term "
                f"{peak} across {terms} epochs); use a shorter window or "
                f"a smaller decay denominator"
            )
        combined += array * np.int64(weight)
    return combined


def decayed_join_estimate(
    partials: Sequence[Tuple[int, PartialAggregate]],
    *,
    params: SketchParams,
    pairs: Sequence[HashPairs],
    stream_a: str,
    stream_b: str,
    decay: Tuple[int, int],
    backend=None,
) -> float:
    """Eq. (5) join-size estimate with per-epoch exponential decay.

    ``partials`` are ``(epoch, partial)`` pairs oldest first — the shape
    :meth:`~repro.temporal.TemporalSession.window_entries` returns.  The
    newest epoch has age 0; epoch ``e``'s reports are weighted
    ``(decay[0]/decay[1]) ** age`` exactly (see module docstring).
    """
    if not partials:
        raise ParameterError("decayed estimate needs at least one epoch")
    if stream_a == stream_b:
        raise ProtocolError(
            "decayed_join_estimate needs two distinct streams; a stream "
            "joined with itself keeps its noise energy undebiased"
        )
    numerator, denominator = _validate_decay(*decay)
    weights = decay_weights(len(partials), numerator, denominator)
    sketches = []
    for name in (stream_a, stream_b):
        attribute: Optional[int] = None
        arrays: List[Optional[np.ndarray]] = []
        num_reports = 0
        for _, partial in partials:
            entry = partial.meta.get("streams", {}).get(name)
            if entry is None:
                arrays.append(None)
                continue
            if entry["kind"] != "end":
                raise ProtocolError(
                    f"stream {name!r} is a middle table; decayed estimates "
                    f"join two end tables"
                )
            if attribute is None:
                attribute = int(entry["attribute"])
            elif attribute != int(entry["attribute"]):
                raise ProtocolError(
                    f"stream {name!r} is bound to different join attributes "
                    f"across epochs"
                )
            arrays.append(partial.arrays[f"stream:{name}:raw"])
            num_reports += int(partial.counters[f"stream:{name}:num_reports"])
        if attribute is None:
            raise ProtocolError(
                f"stream {name!r} has no reports in any epoch of the window"
            )
        stream_params = SketchParams(params.k, pairs[attribute].m, params.epsilon)
        counts = combine_decayed(arrays, weights).astype(np.float64)
        counts *= stream_params.scale
        with use_backend(backend):
            fwht_inplace(counts)
        sketches.append(
            LDPJoinSketch(stream_params, pairs[attribute], counts, num_reports)
        )
    raw_estimate = sketches[0].join_size(sketches[1])
    return float(raw_estimate) / float(denominator ** (2 * (len(partials) - 1)))
