"""Temporal estimation: epoch rings, window queries, decayed combination."""

from .decay import combine_decayed, decay_weights, decayed_join_estimate
from .ring import EpochRing
from .session import TemporalSession

__all__ = [
    "EpochRing",
    "TemporalSession",
    "combine_decayed",
    "decay_weights",
    "decayed_join_estimate",
]
