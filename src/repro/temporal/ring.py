"""Bounded ring of closed per-epoch partial aggregates.

The temporal subsystem buckets ingestion into *epochs* and keeps each
closed epoch as one mergeable
:class:`~repro.distributed.PartialAggregate` — the same wire object
shard collection uses, so answering "the last ``W`` epochs" is nothing
more than a :func:`~repro.distributed.merge_tree` over ``W`` partials.
The ring bounds retention: only the newest ``capacity`` closed epochs
stay queryable, older ones are evicted in push order.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..distributed.partial import PartialAggregate
from ..errors import ParameterError

__all__ = ["EpochRing"]


class EpochRing:
    """Newest ``capacity`` closed epochs, each one mergeable partial.

    Epochs are pushed strictly in order (they are closed in order), so
    the ring is always a contiguous-by-push, sorted sequence of
    ``(epoch, partial)`` entries.  Lookups and window slices are O(W)
    over the retained entries — capacities are small (a handful to a few
    hundred epochs), not unbounded history.
    """

    def __init__(self, capacity: int) -> None:
        if int(capacity) < 1:
            raise ParameterError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: List[Tuple[int, PartialAggregate]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[int, PartialAggregate]]:
        return iter(self._entries)

    def push(self, epoch: int, partial: PartialAggregate) -> None:
        """Retain one closed epoch; evict the oldest past capacity."""
        epoch = int(epoch)
        if self._entries and epoch <= self._entries[-1][0]:
            raise ParameterError(
                f"epochs close in order: got epoch {epoch} after "
                f"{self._entries[-1][0]}"
            )
        self._entries.append((epoch, partial))
        while len(self._entries) > self.capacity:
            self._entries.pop(0)

    def epochs(self) -> List[int]:
        """Retained epoch indices, oldest first."""
        return [epoch for epoch, _ in self._entries]

    def newest_epoch(self) -> Optional[int]:
        return self._entries[-1][0] if self._entries else None

    def oldest_epoch(self) -> Optional[int]:
        return self._entries[0][0] if self._entries else None

    def get(self, epoch: int) -> Optional[PartialAggregate]:
        """The retained partial of ``epoch``, or ``None`` if evicted/unseen."""
        for retained, partial in self._entries:
            if retained == int(epoch):
                return partial
        return None

    def last(self, count: int) -> List[Tuple[int, PartialAggregate]]:
        """The newest ``count`` retained entries, oldest first."""
        if int(count) < 1:
            raise ParameterError(f"count must be >= 1, got {count}")
        return list(self._entries[-int(count):])

    def slice(self, start: int, stop: int) -> List[Tuple[int, PartialAggregate]]:
        """Retained entries with ``start <= epoch < stop``, oldest first.

        Raises if part of the requested range was already evicted — a
        silently short answer would read as "covered everything".
        """
        start, stop = int(start), int(stop)
        if stop <= start:
            raise ParameterError(f"empty epoch range [{start}, {stop})")
        picked = [entry for entry in self._entries if start <= entry[0] < stop]
        oldest = self.oldest_epoch()
        if oldest is not None and start < oldest and len(picked) < stop - start:
            raise ParameterError(
                f"epoch range [{start}, {stop}) reaches behind the ring's "
                f"retention (oldest retained epoch is {oldest})"
            )
        return picked
