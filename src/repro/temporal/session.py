"""Epoch-bucketed collection with sliding / tumbling window queries.

:class:`TemporalSession` runs one :class:`~repro.api.JoinSession` per
*epoch* (the open bucket) on hash pairs shared by every epoch, closes
each bucket into a mergeable
:class:`~repro.distributed.PartialAggregate` ring, and answers window
queries by tree-merging the requested epochs into a fresh session — the
same byte-identical reduction shard collection uses, so a window
estimate equals, bit for bit, the estimate of a session that ingested
only the window's batches.

Three query shapes:

* **sliding** (:meth:`window_session`) — the newest ``W`` epochs at any
  moment, open bucket included by default;
* **tumbling** (:meth:`tumbling_session`) — the last *complete* aligned
  block of ``width`` epochs (``[b*width, (b+1)*width)``);
* **decayed** (:meth:`decayed_estimate`) — exponentially down-weighted
  combination with an exact rational decay factor
  (:mod:`repro.temporal.decay`).

Every epoch close also charges the
:class:`~repro.privacy.ContinualLedger`: epoch cohorts are keyed
``(subject, epoch, group)`` where the subject is the stream's namespace
prefix (``tenant/stream`` → ``tenant``), giving per-tenant
continual-observation accounting across re-released epochs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..api.session import JoinSession
from ..core.params import SketchParams
from ..distributed.merge import merge_tree
from ..distributed.partial import PartialAggregate
from ..errors import ParameterError, ProtocolError
from ..hashing import HashPairs
from ..privacy.budget import ContinualLedger
from ..rng import RandomState, derive_seed, ensure_rng
from .decay import decayed_join_estimate
from .ring import EpochRing

__all__ = ["TemporalSession"]


class TemporalSession:
    """One collection timeline: shared pairs, epoch ring, window queries.

    Parameters
    ----------
    params:
        Sketch parameters of every epoch's streams.
    window_epochs:
        Ring capacity — the largest sliding window answerable, and the
        retention horizon of closed epochs.
    seed:
        Master seed of the coordinator session (draws the shared hash
        pairs when ``pairs`` is not given).
    pairs:
        Pre-built hash pairs to share (e.g. with a sibling service).
    backend:
        Compute-backend pin forwarded to every epoch session.
    continual:
        The continual-observation ledger to charge at epoch close; a
        fresh one by default.
    """

    def __init__(
        self,
        params: SketchParams,
        *,
        window_epochs: int = 8,
        seed: RandomState = None,
        pairs: Optional[Sequence[HashPairs]] = None,
        backend=None,
        continual: Optional[ContinualLedger] = None,
    ) -> None:
        self.params = params
        self._coordinator = JoinSession(
            params, seed=seed, pairs=pairs, backend=backend
        )
        self._ring = EpochRing(window_epochs)
        # Epoch shards draw their client-simulation seeds from this
        # stream so a fixed master seed pins the whole timeline, not
        # just the hash pairs.
        self._shard_rng = ensure_rng(seed)
        self._open = self._spawn_epoch_shard()
        self._epoch = 0
        self.continual = ContinualLedger() if continual is None else continual

    def _spawn_epoch_shard(self) -> JoinSession:
        return self._coordinator.spawn_shard(
            seed=derive_seed(self._shard_rng)
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> Tuple[HashPairs, ...]:
        """The published hash pairs shared by every epoch."""
        return self._coordinator.pairs

    @property
    def epoch(self) -> int:
        """Index of the open (currently ingesting) epoch."""
        return self._epoch

    @property
    def window_epochs(self) -> int:
        """Ring capacity: the largest answerable sliding window."""
        return self._ring.capacity

    @property
    def ring(self) -> EpochRing:
        """The ring of closed epochs (read-only by convention)."""
        return self._ring

    def open_reports(self) -> int:
        """Reports ingested into the open epoch so far."""
        return sum(
            self._open.num_reports(name) for name in self._open.streams()
        )

    # ------------------------------------------------------------------
    # Ingestion / epoch roll
    # ------------------------------------------------------------------
    def collect(self, stream: str, values, **kwargs) -> "TemporalSession":
        """Fold one end-table cohort into the open epoch's ``stream``."""
        self._open.collect(stream, values, **kwargs)
        return self

    def collect_pair(self, stream: str, *args, **kwargs) -> "TemporalSession":
        """Fold one middle-table cohort into the open epoch's ``stream``."""
        self._open.collect_pair(stream, *args, **kwargs)
        return self

    def roll(self) -> PartialAggregate:
        """Close the open epoch into the ring; open the next.

        The closed epoch's partial (timing excluded — epochs are part of
        published identity) is retained in the ring, its cohort charges
        land on the continual ledger under ``(subject, epoch, group)``,
        and a fresh sibling session on the same pairs starts the next
        epoch.  Empty epochs close too: the ring mirrors elapsed time,
        not traffic.
        """
        partial = self._open.to_partial(include_timing=False)
        self._ring.push(self._epoch, partial)
        for group, epsilon, mechanism in self._open.ledger.charges:
            self.continual.charge(
                self._subject_of(group), self._epoch, group, epsilon, mechanism
            )
        self._epoch += 1
        self._open = self._spawn_epoch_shard()
        return partial

    def roll_to(self, epoch: int) -> int:
        """Close epochs until ``epoch`` is the open one; returns rolls made.

        Idempotent: rolling to the current (or an earlier) epoch does
        nothing, which is what lets replay drive the roll from WAL
        sequence numbers without tracking extra state.
        """
        rolls = 0
        while self._epoch < int(epoch):
            self.roll()
            rolls += 1
        return rolls

    @staticmethod
    def _subject_of(group: str) -> str:
        """Accounting principal of one cohort group.

        Cohort groups are ``stream`` / ``stream#N``; service streams are
        namespaced ``tenant/stream``.  The subject is the namespace
        prefix when present, the bare stream otherwise.
        """
        stream = group.split("#", 1)[0]
        return stream.split("/", 1)[0]

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------
    def window_entries(
        self, window: Optional[int] = None, *, include_open: bool = True
    ) -> List[Tuple[int, PartialAggregate]]:
        """The ``(epoch, partial)`` pairs a window query merges, oldest first.

        ``window`` counts epochs, the open bucket included when
        ``include_open`` (the default — fresh data answers queries).
        ``None`` means everything retained.  Windows wider than the ring
        capacity are refused rather than silently under-covered.
        """
        capacity = self._ring.capacity + (1 if include_open else 0)
        if window is not None:
            window = int(window)
            if window < 1:
                raise ParameterError(f"window must be >= 1, got {window}")
            if window > capacity:
                raise ParameterError(
                    f"window {window} exceeds the {capacity}-epoch retention "
                    f"horizon (window_epochs={self._ring.capacity}"
                    f"{', open epoch included' if include_open else ''})"
                )
        entries = list(self._ring)
        if include_open:
            entries.append(
                (self._epoch, self._open.to_partial(include_timing=False))
            )
        if window is not None:
            entries = entries[-window:]
        if not entries:
            raise ProtocolError("no epochs to query yet")
        return entries

    def window_session(
        self, window: Optional[int] = None, *, include_open: bool = True
    ) -> JoinSession:
        """A fresh session holding exactly the window's accumulators.

        Tree-merges the window's partials — integer adds on
        pre-transform accumulators — so the result is byte-identical to
        a session that ingested only the window's batches, and every
        :class:`~repro.api.JoinSession` query runs on it unchanged.
        """
        entries = self.window_entries(window, include_open=include_open)
        session = JoinSession(self.params, pairs=self._coordinator.pairs)
        session.merge(merge_tree([partial for _, partial in entries]))
        return session

    def tumbling_session(self, width: int) -> JoinSession:
        """The last complete aligned block of ``width`` epochs.

        Blocks tile the timeline as ``[b*width, (b+1)*width)``; the
        query answers for the newest *fully closed* block, which is the
        tumbling-window contract (no partial blocks, no overlap).
        """
        width = int(width)
        if width < 1:
            raise ParameterError(f"width must be >= 1, got {width}")
        if width > self._ring.capacity:
            raise ParameterError(
                f"width {width} exceeds the {self._ring.capacity}-epoch "
                f"retention horizon"
            )
        block_end = (self._epoch // width) * width
        if block_end == 0:
            raise ProtocolError(
                f"no complete {width}-epoch tumbling block closed yet "
                f"(open epoch is {self._epoch})"
            )
        entries = self._ring.slice(block_end - width, block_end)
        session = JoinSession(self.params, pairs=self._coordinator.pairs)
        session.merge(merge_tree([partial for _, partial in entries]))
        return session

    def decayed_estimate(
        self,
        stream_a: str,
        stream_b: str,
        *,
        decay: Tuple[int, int] = (1, 2),
        window: Optional[int] = None,
        include_open: bool = True,
    ) -> float:
        """Exponentially decayed Eq. (5) estimate over the window.

        ``decay`` is the exact rational factor ``numerator/denominator``
        applied per epoch of age — see :mod:`repro.temporal.decay` for
        why the combination stays integer-exact.
        """
        entries = self.window_entries(window, include_open=include_open)
        return decayed_join_estimate(
            entries,
            params=self.params,
            pairs=self._coordinator.pairs,
            stream_a=stream_a,
            stream_b=stream_b,
            decay=decay,
            backend=self._coordinator.backend,
        )

    def note_release(
        self, subject: str, entries: Sequence[Tuple[int, PartialAggregate]]
    ) -> None:
        """Record that a window release for ``subject`` covered ``entries``."""
        self.continual.note_release(subject, [epoch for epoch, _ in entries])

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-compatible operational summary for status endpoints."""
        return {
            "epoch": self._epoch,
            "window_epochs": self._ring.capacity,
            "closed_epochs": len(self._ring),
            "retained_epochs": self._ring.epochs(),
            "open_reports": self.open_reports(),
            "continual": self.continual.summary(),
        }
