"""Flattened-index ``np.bincount`` scatter-add kernels.

Every aggregation hot path in this library folds per-report updates into a
small dense counter array.  The obvious NumPy spelling,
``np.add.at(out, (rows, cols), w)``, is a *buffered* scatter-add that
dispatches element by element and is roughly an order of magnitude slower
than histogramming the flattened indices with ``np.bincount`` and adding
the dense result once.  These helpers centralise the bincount idiom so the
core protocol, the LDP mechanisms, the classical sketches and the session
layer all share one fast implementation.

Three variants cover the accumulator dtypes in use:

* :func:`scatter_add` — float accumulators with arbitrary float weights
  (``np.bincount`` computes the per-bin sums in input order, matching the
  sequential order ``np.add.at`` would use);
* :func:`scatter_add_signed_units` — integer accumulators receiving
  ``{-1, +1}`` payloads; the per-bin ±1 sums are integers of magnitude at
  most ``len(ys) < 2**53``, all exactly representable in float64, so the
  weighted bincount is exact bit-for-bit despite the float intermediate;
* :func:`scatter_count` — integer accumulators receiving unit increments.

All of them accept an index tuple (one array per accumulator axis, as
``np.add.at`` does).  ``np.bincount(minlength=out.size)`` materialises a
dense accumulator-sized transient, so batches much smaller than the
accumulator (a hundred reports into a 19M-cell middle tensor) fall back
to ``np.add.at`` — at that ratio the scatter is cheaper than the dense
histogram and the transient stays O(batch).  On the fat-batch hot path
the transient is one accumulator-sized float64 array; callers chunk
their inputs to cap the index-side memory.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["scatter_add", "scatter_add_signed_units", "scatter_count"]

#: Use ``np.add.at`` instead of bincount when the batch is this many times
#: smaller than the accumulator — the dense histogram's O(out.size) pass
#: (and transient) dwarfs the scatter there.
_SPARSE_RATIO = 16


def _flat_indices(out: np.ndarray, indices: Sequence[np.ndarray]) -> Tuple[np.ndarray, int]:
    """Ravel a tuple of per-axis index arrays into flat int64 offsets."""
    if len(indices) != out.ndim:
        raise ValueError(
            f"need one index array per accumulator axis ({out.ndim}), got {len(indices)}"
        )
    if out.ndim == 1:
        flat = np.asarray(indices[0], dtype=np.int64)
    else:
        flat = np.asarray(indices[0], dtype=np.int64)
        for axis in range(1, out.ndim):
            flat = flat * out.shape[axis] + np.asarray(indices[axis], dtype=np.int64)
    return flat, out.size


def scatter_add(out: np.ndarray, indices: Sequence[np.ndarray], weights: np.ndarray) -> np.ndarray:
    """``out[indices] += weights`` with repeated indices, via bincount.

    Drop-in replacement for ``np.add.at(out, tuple(indices), weights)`` on
    float accumulators.  Returns ``out``.
    """
    flat, size = _flat_indices(out, indices)
    if not flat.size:
        return out
    if flat.size * _SPARSE_RATIO < size:
        _sparse_add_at(out, flat, indices, np.asarray(weights, dtype=np.float64))
        return out
    binned = np.bincount(flat, weights=np.asarray(weights, dtype=np.float64), minlength=size)
    out += binned.reshape(out.shape)
    return out


def scatter_add_signed_units(
    out: np.ndarray, indices: Sequence[np.ndarray], ys: np.ndarray
) -> np.ndarray:
    """``out[indices] += ys`` for ``ys in {-1, +1}`` on integer accumulators.

    One weighted bincount computes every per-bin sum of ±1 payloads.  The
    float64 intermediate is *exact*: every partial sum is an integer of
    magnitude at most ``len(ys) < 2**53``, so no rounding can occur and
    the result is bit-for-bit identical to integer ``np.add.at``.
    Returns ``out``.
    """
    flat, size = _flat_indices(out, indices)
    if not flat.size:
        return out
    if flat.size * _SPARSE_RATIO < size:
        _sparse_add_at(out, flat, indices, np.asarray(ys, dtype=out.dtype))
        return out
    binned = np.bincount(flat, weights=np.asarray(ys, dtype=np.float64), minlength=size)
    out += binned.reshape(out.shape).astype(out.dtype, copy=False)
    return out


def scatter_count(out: np.ndarray, indices: Sequence[np.ndarray]) -> np.ndarray:
    """``out[indices] += 1`` with repeated indices, via bincount. Returns ``out``."""
    flat, size = _flat_indices(out, indices)
    if not flat.size:
        return out
    if flat.size * _SPARSE_RATIO < size:
        _sparse_add_at(out, flat, indices, 1)
        return out
    out += np.bincount(flat, minlength=size).reshape(out.shape).astype(out.dtype, copy=False)
    return out


def _sparse_add_at(out: np.ndarray, flat: np.ndarray, indices, values) -> None:
    """Scatter a small batch with ``np.add.at``, preferring flat indexing.

    ``reshape(-1)`` on a non-contiguous accumulator would copy (and lose
    the update), so those fall back to the original index tuple.
    """
    if out.flags.c_contiguous:
        np.add.at(out.reshape(-1), flat, values)
    else:
        np.add.at(out, tuple(np.asarray(i) for i in indices), values)
