"""Flattened-index scatter-add helpers, dispatching to the compute backend.

Every aggregation hot path in this library folds per-report updates into a
small dense counter array.  The obvious NumPy spelling,
``np.add.at(out, (rows, cols), w)``, is a *buffered* scatter-add that
dispatches element by element and is roughly an order of magnitude slower
than histogramming the flattened indices with ``np.bincount`` and adding
the dense result once.  These helpers centralise the flatten-and-validate
step so the core protocol, the LDP mechanisms, the classical sketches and
the session layer all share one fast implementation — the actual
accumulation runs on the active compute backend's
:meth:`~repro.backend.base.Backend.bincount_accumulate` kernel (bincount
with a sparse-batch ``np.add.at`` fallback on the NumPy backend, a
compiled scatter loop on the numba backend).

Three variants cover the accumulator dtypes in use:

* :func:`scatter_add` — float accumulators with arbitrary float weights
  (per-bin sums are formed in input order, matching the sequential order
  ``np.add.at`` would use);
* :func:`scatter_add_signed_units` — integer accumulators receiving
  ``{-1, +1}`` payloads; the reference kernel's float64 intermediate is
  exact bit-for-bit because every partial sum is an integer of magnitude
  at most ``len(ys) < 2**53``;
* :func:`scatter_count` — integer accumulators receiving unit increments.

All of them accept an index tuple (one array per accumulator axis, as
``np.add.at`` does).  Flat offsets are always computed in **int64** —
index arrays arrive in whatever dtype the caller drew them in (int32 on
some platforms / wire formats), and the raveling multiply
``rows * m * ...`` overflows int32 as soon as the accumulator crosses
``2**31`` cells, so every term is widened before the multiply (see the
regression test in ``tests/test_fused_path.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .backend import get_backend
from .backend.base import SPARSE_RATIO

__all__ = ["scatter_add", "scatter_add_signed_units", "scatter_count"]


def _flat_indices(out: np.ndarray, indices: Sequence[np.ndarray]) -> Tuple[np.ndarray, int]:
    """Ravel a tuple of per-axis index arrays into flat int64 offsets.

    The int64 widening is load-bearing, not cosmetic: with int32 index
    inputs and an accumulator of more than ``2**31`` cells (e.g. the
    ``(k, m_left, m_right)`` middle tensors at chain scale), the
    positional multiply would wrap and silently scatter into the wrong
    cells.  Each axis term is converted *before* the multiply so the
    arithmetic never runs in a narrower dtype.
    """
    if len(indices) != out.ndim:
        raise ValueError(
            f"need one index array per accumulator axis ({out.ndim}), got {len(indices)}"
        )
    flat = np.asarray(indices[0], dtype=np.int64)
    for axis in range(1, out.ndim):
        flat = flat * np.int64(out.shape[axis]) + np.asarray(
            indices[axis], dtype=np.int64
        )
    return flat, out.size


def _accumulate(
    out: np.ndarray, indices: Sequence[np.ndarray], weights: Optional[np.ndarray]
) -> np.ndarray:
    """Flatten, then hand the scatter to the backend kernel."""
    flat, _ = _flat_indices(out, indices)
    if not flat.size:
        return out
    if not out.flags.c_contiguous:
        # Exotic accumulator views cannot be raveled without copying (a
        # copy would lose the update).  Sparse batches take the
        # index-tuple scatter; fat batches stage the backend kernel in a
        # contiguous zero buffer and fold it in with one element-wise add
        # (valid for any layout), keeping the ~10x bincount advantage.
        if flat.size * SPARSE_RATIO < out.size:
            np.add.at(
                out,
                tuple(np.asarray(i) for i in indices),
                1 if weights is None else weights,
            )
        else:
            staged = np.zeros(out.shape, dtype=out.dtype)
            get_backend().bincount_accumulate(staged, flat, weights)
            out += staged
        return out
    get_backend().bincount_accumulate(out, flat, weights)
    return out


def scatter_add(out: np.ndarray, indices: Sequence[np.ndarray], weights: np.ndarray) -> np.ndarray:
    """``out[indices] += weights`` with repeated indices, via the backend.

    Drop-in replacement for ``np.add.at(out, tuple(indices), weights)`` on
    float accumulators.  Returns ``out``.
    """
    if np.issubdtype(out.dtype, np.integer):
        # np.add.at raises on float-into-int; the backend kernels would
        # silently truncate instead, so keep the loud failure here.
        raise TypeError(
            "scatter_add writes float weights; integer accumulators take "
            "scatter_add_signed_units or scatter_count"
        )
    return _accumulate(out, indices, np.asarray(weights, dtype=np.float64))


def scatter_add_signed_units(
    out: np.ndarray, indices: Sequence[np.ndarray], ys: np.ndarray
) -> np.ndarray:
    """``out[indices] += ys`` for ``ys in {-1, +1}`` on integer accumulators.

    Exact bit-for-bit with integer ``np.add.at`` on every backend (see
    module docstring).  Returns ``out``.
    """
    return _accumulate(out, indices, np.asarray(ys))


def scatter_count(out: np.ndarray, indices: Sequence[np.ndarray]) -> np.ndarray:
    """``out[indices] += 1`` with repeated indices. Returns ``out``."""
    return _accumulate(out, indices, None)
