"""Shared argument-validation helpers.

Every public entry point of the library validates its inputs through these
helpers so that error messages are uniform and informative.  All helpers
raise :class:`repro.errors.ParameterError` (a ``ValueError`` subclass) on
rejection and return the *normalised* value on success, so they can be used
inline::

    self.epsilon = require_positive_float("epsilon", epsilon)
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from .errors import DomainError, ParameterError

__all__ = [
    "require_positive_int",
    "require_positive_float",
    "require_probability",
    "require_power_of_two",
    "require_in_range",
    "require_choice",
    "as_value_array",
    "require_domain_values",
    "is_power_of_two",
]


def require_positive_int(name: str, value: object, minimum: int = 1) -> int:
    """Return ``value`` as ``int`` if it is an integer ``>= minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ParameterError(f"{name} must be >= {minimum}, got {value}")
    return value


def require_positive_float(name: str, value: object, *, allow_zero: bool = False) -> float:
    """Return ``value`` as ``float`` if it is finite and positive."""
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise ParameterError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise ParameterError(f"{name} must be finite, got {value!r}")
    if value < 0 or (value == 0 and not allow_zero):
        bound = ">= 0" if allow_zero else "> 0"
        raise ParameterError(f"{name} must be {bound}, got {value}")
    return value


def require_probability(name: str, value: object, *, allow_zero: bool = False, allow_one: bool = True) -> float:
    """Return ``value`` as ``float`` if it is a probability in (0, 1]."""
    value = require_positive_float(name, value, allow_zero=allow_zero)
    if value > 1 or (value == 1 and not allow_one):
        raise ParameterError(f"{name} must be a probability <= 1, got {value}")
    return value


def is_power_of_two(value: int) -> bool:
    """Return ``True`` if ``value`` is a positive power of two."""
    return value >= 1 and (value & (value - 1)) == 0


def require_power_of_two(name: str, value: object) -> int:
    """Return ``value`` as ``int`` if it is a positive power of two."""
    value = require_positive_int(name, value)
    if not is_power_of_two(value):
        raise ParameterError(f"{name} must be a power of two, got {value}")
    return value


def require_in_range(name: str, value: object, low: float, high: float) -> float:
    """Return ``value`` as ``float`` if ``low <= value <= high``."""
    value = require_positive_float(name, value, allow_zero=True)
    if not (low <= value <= high):
        raise ParameterError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def require_choice(name: str, value: object, choices: Sequence[object]) -> object:
    """Return ``value`` if it is one of ``choices``."""
    if value not in choices:
        raise ParameterError(f"{name} must be one of {list(choices)!r}, got {value!r}")
    return value


def as_value_array(values: Iterable[object], name: str = "values") -> np.ndarray:
    """Coerce ``values`` into a 1-D ``int64`` array.

    Join-attribute values throughout the library are non-negative integers
    (item identifiers).  Strings or other hashables must be mapped to ids by
    the caller; the data generators in :mod:`repro.data` already do so.
    """
    arr = np.asarray(values)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ParameterError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise ParameterError(f"{name} must contain integers, got dtype {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=np.int64)


def require_domain_values(values: Iterable[object], domain_size: Optional[int], name: str = "values") -> np.ndarray:
    """Coerce ``values`` to ``int64`` and check them against ``domain_size``.

    Items must satisfy ``0 <= value < domain_size``.  ``domain_size=None``
    skips the range check (used by non-private sketches, which accept any
    hashable integer id).
    """
    arr = as_value_array(values, name)
    if domain_size is not None and arr.size:
        lo = int(arr.min())
        hi = int(arr.max())
        if lo < 0 or hi >= domain_size:
            raise DomainError(
                f"{name} must lie in [0, {domain_size}), observed range [{lo}, {hi}]"
            )
    return arr
