"""Failover-aware client for the replicated aggregation service.

:class:`ResilientClient` is the piece that turns the server-side
machinery (WAL-durable dedup ledger, typed 409 rejections, standby
snapshots) into an end-to-end story: a caller hands it a batch once and
the client wears every transient failure — connection loss, draining
nodes, quorum shortfalls, a failover that moved the primary — without
ever double-counting.

Three mechanisms, all deterministic:

**Exactly-once writes.**  Every batch carries an idempotency key
(caller-supplied or minted as ``"<client_id>-<counter>"``), so the
retry loop can be aggressive: whether an ack was lost in transit or a
quorum round fell short, resubmitting the same key converges the
cluster and returns the original acknowledgement.

**Re-targeting.**  A typed 409 (``error_kind`` of ``fenced`` /
``not_primary``) or a connection failure means "this node is not the
primary anymore"; the client probes ``/v1/status`` across its endpoint
list for a node reporting ``role == "primary"`` and resumes there.
Promotion mid-stream is invisible to the caller.

**Per-endpoint circuit breakers.**  Breakers are counter-based — a
node that fails :attr:`CircuitBreaker.failure_threshold` consecutive
operations is skipped for the next :attr:`CircuitBreaker.cooldown`
considerations, then probed half-open.  Counting *considerations*
instead of wall-clock seconds keeps chaos schedules replayable: the
same operation sequence always opens and closes the same breakers.

**Hedged reads.**  Queries (status, estimates, snapshots) can be
answered by any node that publishes snapshots — standbys included.
:meth:`ResilientClient.estimate` sends to the preferred node first and,
after ``hedge_delay`` seconds without an answer, races the remaining
endpoints; the first success wins.  Reads stay fast while a node is
wedged without doubling load in the happy path.

The client is synchronous (``http.client``) by design: it is used from
benchmarks, chaos harnesses and operator tooling, none of which run an
event loop.
"""

from __future__ import annotations

import concurrent.futures
import json
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import (
    FencedEpochError,
    NotPrimaryError,
    ParameterError,
    ProtocolError,
    ReproError,
    RetryExhaustedError,
)
from ..reliability.retry import AttemptRecord

__all__ = ["ResilientClient", "CircuitBreaker", "ClientReport"]


class CircuitBreaker:
    """Deterministic consecutive-failure breaker for one endpoint.

    States: *closed* (normal), *open* (skip this endpoint), *half-open*
    (allow one probe).  ``failure_threshold`` consecutive failures open
    the breaker; it stays open for ``cooldown`` calls to :meth:`allow`,
    then half-opens — a success closes it, a failure re-opens it for
    another full cooldown.  No wall clock anywhere, so a replayed
    operation sequence drives the breaker through identical states.
    """

    def __init__(self, *, failure_threshold: int = 3, cooldown: int = 8) -> None:
        if failure_threshold < 1:
            raise ParameterError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 1:
            raise ParameterError(f"cooldown must be >= 1, got {cooldown}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = int(cooldown)
        self._failures = 0
        self._skips_left = 0
        self._half_open = False

    @property
    def state(self) -> str:
        if self._half_open:
            return "half-open"
        if self._skips_left > 0:
            return "open"
        return "closed"

    def allow(self) -> bool:
        """Whether the next operation may use this endpoint."""
        if self._skips_left > 0:
            self._skips_left -= 1
            if self._skips_left == 0:
                self._half_open = True
            return False
        return True

    def record_success(self) -> None:
        self._failures = 0
        self._half_open = False
        self._skips_left = 0

    def record_failure(self) -> None:
        self._failures += 1
        if self._half_open or self._failures >= self.failure_threshold:
            self._half_open = False
            self._failures = 0
            self._skips_left = self.cooldown


class _Endpoint:
    """One service address plus its breaker state."""

    def __init__(self, host: str, port: int, breaker: CircuitBreaker) -> None:
        self.host = str(host)
        self.port = int(port)
        self.breaker = breaker
        self.name = f"{self.host}:{self.port}"


class ClientReport(dict):
    """An ingest acknowledgement plus the client-side delivery story."""

    @property
    def deduplicated(self) -> bool:
        return bool(self.get("deduplicated", False))


def _parse_endpoint(value: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    if isinstance(value, str):
        host, sep, port = value.rpartition(":")
        if not sep or not host:
            raise ParameterError(
                f"endpoint must be 'host:port' or (host, port), got {value!r}"
            )
        try:
            return host, int(port)
        except ValueError as error:
            raise ParameterError(f"bad endpoint port in {value!r}") from error
    host, port = value
    return str(host), int(port)


class ResilientClient:
    """Retrying, re-targeting, hedging client over N service endpoints.

    ``endpoints`` lists every node of the replication group (primary
    first by convention, but the client discovers the actual primary by
    probing ``/v1/status``).  ``max_attempts`` bounds one logical
    write's delivery attempts across all endpoints; ``backoff`` seconds
    (default 0 — chaos tests want speed, production wants ~0.05) are
    slept between consecutive attempts.
    """

    def __init__(
        self,
        endpoints: Sequence[Union[str, Tuple[str, int]]],
        *,
        client_id: str = "client",
        max_attempts: int = 8,
        timeout: float = 10.0,
        hedge_delay: float = 0.05,
        backoff: float = 0.0,
        failure_threshold: int = 3,
        cooldown: int = 8,
    ) -> None:
        if not endpoints:
            raise ParameterError("need at least one endpoint")
        if max_attempts < 1:
            raise ParameterError(f"max_attempts must be >= 1, got {max_attempts}")
        if timeout <= 0 or hedge_delay < 0 or backoff < 0:
            raise ParameterError("timeout must be > 0; delays must be >= 0")
        self.client_id = str(client_id)
        self.max_attempts = int(max_attempts)
        self.timeout = float(timeout)
        self.hedge_delay = float(hedge_delay)
        self.backoff = float(backoff)
        self._endpoints: List[_Endpoint] = [
            _Endpoint(
                *_parse_endpoint(value),
                CircuitBreaker(
                    failure_threshold=failure_threshold, cooldown=cooldown
                ),
            )
            for value in endpoints
        ]
        self._target = 0  # index of the endpoint believed to be primary
        self._counter = 0  # idempotency-key mint

    # ------------------------------------------------------------------
    # Raw HTTP
    # ------------------------------------------------------------------
    def _request(
        self,
        endpoint: _Endpoint,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, dict]:
        import http.client

        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(dict(payload)).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            endpoint.host, endpoint.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as error:
            raise ConnectionError(f"{endpoint.name}: {error}") from error
        finally:
            connection.close()
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ProtocolError(
                f"{endpoint.name} returned undecodable body: {error}"
            ) from error
        if not isinstance(parsed, dict):
            parsed = {"body": parsed}
        return response.status, parsed

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------
    def _candidates(self) -> List[_Endpoint]:
        """Endpoints to try, preferred target first, breakers consulted.

        If every breaker is open the full list is returned anyway — an
        all-open fleet means the breaker counters are stale, and trying
        is strictly better than failing without a packet sent.
        """
        ordered = (
            self._endpoints[self._target :] + self._endpoints[: self._target]
        )
        allowed = [endpoint for endpoint in ordered if endpoint.breaker.allow()]
        return allowed or ordered

    def _retarget(self) -> None:
        """Probe ``/v1/status`` for the current primary; else rotate."""
        for index, endpoint in enumerate(self._endpoints):
            try:
                status, body = self._request(endpoint, "GET", "/v1/status")
            except (ConnectionError, ProtocolError):
                continue
            if status == 200 and body.get("role") == "primary":
                self._target = index
                return
        self._target = (self._target + 1) % len(self._endpoints)

    # ------------------------------------------------------------------
    # Writes: exactly-once ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        tenant: str,
        stream: str,
        values: Sequence[int],
        *,
        attribute: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> ClientReport:
        """Deliver one batch exactly once; returns the service ack.

        Retries across endpoints on connection loss, 429/503, and typed
        409 re-target signals, always resubmitting the *same*
        idempotency key — the server's WAL-durable ledger makes the
        retries safe.  Raises
        :class:`~repro.errors.RetryExhaustedError` with the full
        attempt ledger when ``max_attempts`` deliveries all failed.
        """
        if idempotency_key is None:
            self._counter += 1
            idempotency_key = f"{self.client_id}-{self._counter}"
        payload = {
            "tenant": tenant,
            "stream": stream,
            "values": list(values),
            "attribute": int(attribute),
            "idempotency_key": idempotency_key,
        }
        operation = f"client.ingest[{idempotency_key}]"
        attempts: List[AttemptRecord] = []
        for attempt in range(self.max_attempts):
            if attempt and self.backoff:
                time.sleep(self.backoff * attempt)
            candidates = self._candidates()
            endpoint = candidates[0]
            started = time.monotonic()
            try:
                status, body = self._request(endpoint, "POST", "/v1/report", payload)
            except (ConnectionError, ProtocolError) as error:
                endpoint.breaker.record_failure()
                attempts.append(
                    self._attempt(attempt, operation, error, started)
                )
                self._retarget()
                continue
            if status < 300:
                endpoint.breaker.record_success()
                report = ClientReport(body)
                report["endpoint"] = endpoint.name
                report["attempts"] = attempt + 1
                report["idempotency_key"] = idempotency_key
                return report
            error = self._rejection(endpoint, status, body)
            attempts.append(self._attempt(attempt, operation, error, started))
            if status == 409:
                # The node is alive and answered — its breaker is fine;
                # it just must not take writes.  Find who does.
                endpoint.breaker.record_success()
                self._retarget()
                continue
            if status in (408, 429, 503):
                endpoint.breaker.record_failure()
                if status == 503 and body.get("error_kind") == "quorum":
                    # The primary is fine; its standbys are behind.
                    endpoint.breaker.record_success()
                continue
            raise error  # 400s and unknowns: retrying cannot fix these
        raise RetryExhaustedError(operation, attempts)

    @staticmethod
    def _attempt(
        attempt: int, operation: str, error: Exception, started: float
    ) -> AttemptRecord:
        return AttemptRecord(
            attempt=attempt + 1,
            operation=operation,
            error_type=type(error).__name__,
            message=str(error),
            delay=0.0,
            elapsed=time.monotonic() - started,
        )

    @staticmethod
    def _rejection(endpoint: _Endpoint, status: int, body: Mapping[str, Any]):
        kind = body.get("error_kind")
        if kind == "fenced":
            return FencedEpochError(body.get("observed", 0), body.get("required", 0))
        if kind == "not_primary":
            return NotPrimaryError(body.get("role", "unknown"), body.get("reason", ""))
        if status == 400:
            return ParameterError(f"{endpoint.name}: {body.get('error', status)}")
        return ProtocolError(
            f"{endpoint.name} answered HTTP {status}: {body.get('error', '')}"
        )

    # ------------------------------------------------------------------
    # Reads: hedged across the replication group
    # ------------------------------------------------------------------
    def _hedged(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> dict:
        """First-success-wins read: preferred node, then the field.

        The preferred endpoint gets ``hedge_delay`` seconds of exclusive
        runway; only if it has not answered are the remaining endpoints
        raced.  Failures (connection loss, non-2xx) are discarded as
        long as someone succeeds; if everyone fails the last error
        propagates.
        """
        candidates = self._candidates()
        errors: List[Exception] = []

        def attempt(endpoint: _Endpoint) -> dict:
            status, body = self._request(endpoint, method, path, payload)
            if status >= 300:
                raise self._rejection(endpoint, status, body)
            endpoint.breaker.record_success()
            body["endpoint"] = endpoint.name
            return body

        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, len(candidates)), thread_name_prefix="repro-hedge"
        )
        try:
            pending = {pool.submit(attempt, candidates[0]): candidates[0]}
            hedged = False
            while pending:
                timeout = None if hedged or len(candidates) == 1 else self.hedge_delay
                done, _ = concurrent.futures.wait(
                    pending,
                    timeout=timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    endpoint = pending.pop(future)
                    try:
                        return future.result()
                    except (ConnectionError, ProtocolError, ReproError) as error:
                        endpoint.breaker.record_failure()
                        errors.append(error)
                if not done and not hedged:
                    # Preferred node is slow: open the race.
                    hedged = True
                    for endpoint in candidates[1:]:
                        pending[pool.submit(attempt, endpoint)] = endpoint
                elif not pending and not hedged and len(candidates) > 1:
                    # Preferred node failed fast: try the rest serially
                    # through the same race machinery.
                    hedged = True
                    for endpoint in candidates[1:]:
                        pending[pool.submit(attempt, endpoint)] = endpoint
                elif done:
                    hedged = True  # keep draining whatever is in flight
        finally:
            pool.shutdown(wait=False)
        raise errors[-1] if errors else ProtocolError(f"no endpoint answered {path}")

    def status(self) -> dict:
        """Hedged ``GET /v1/status`` (any node may answer)."""
        return self._hedged("GET", "/v1/status")

    def snapshot(self) -> dict:
        """Hedged ``GET /v1/snapshot``: the latest published identity."""
        return self._hedged("GET", "/v1/snapshot")

    def estimate(
        self,
        tenant: str,
        stream_a: str,
        stream_b: str,
        *,
        window: Optional[int] = None,
    ) -> dict:
        """Hedged join-size estimate between two of a tenant's streams.

        ``window=W`` restricts the estimate to the newest ``W`` temporal
        epochs (the service must run with ``epoch_interval > 0``).
        """
        target = f"/v1/estimate?tenant={tenant}&kind=join&streams={stream_a},{stream_b}"
        if window is not None:
            target += f"&window={int(window)}"
        return self._hedged("GET", target)

    def publish(self) -> dict:
        """Force a publish on the preferred (primary) node — not hedged."""
        candidates = self._candidates()
        status, body = self._request(candidates[0], "POST", "/v1/publish")
        if status >= 300:
            raise self._rejection(candidates[0], status, body)
        return body

    def promote(self, endpoint_index: int) -> dict:
        """Operator action: promote a specific endpoint to primary."""
        try:
            endpoint = self._endpoints[int(endpoint_index)]
        except IndexError as error:
            raise ParameterError(
                f"endpoint index {endpoint_index} out of range "
                f"(have {len(self._endpoints)})"
            ) from error
        status, body = self._request(endpoint, "POST", "/v1/promote")
        if status >= 300:
            raise self._rejection(endpoint, status, body)
        self._target = int(endpoint_index)
        return body

    def breaker_states(self) -> Dict[str, str]:
        """Breaker state per endpoint (for tests and operators)."""
        return {
            endpoint.name: endpoint.breaker.state for endpoint in self._endpoints
        }
