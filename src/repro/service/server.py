"""Asyncio HTTP front-end of the online aggregation service.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` —
no framework, no threads beyond one dedicated executor — that wraps the
synchronous :class:`~repro.service.core.AggregationService` with the
three properties an online collector owes its operators:

**Bounded everything.**  Ingest requests pass per-tenant admission
control and a bounded :class:`asyncio.Queue`; when either is full the
client gets ``429`` with a ``Retry-After`` derived from the queue depth
instead of an unbounded buffer.  Every request carries a deadline
(``request_timeout``); a fold that cannot complete in time answers
``503`` while the batch — already WAL-durable — survives for the next
snapshot.

**Single-threaded determinism.**  All service work (folds, publishes,
queries) funnels through a one-thread executor, so WAL sequence numbers
have a total order and snapshot bytes never depend on thread
interleaving.  The event loop itself never blocks: every filesystem or
numpy touch crosses ``run_in_executor`` (rule RPR106 enforces this
shape).

**Graceful lifecycle.**  SIGTERM/SIGINT trigger drain → flush →
publish → exit: the listener closes, queued batches fold, checkpoints
flush, and a final snapshot publishes before the process leaves.
``/healthz`` answers liveness (ingest worker alive); ``/readyz`` answers
readiness (snapshot published, freshness and queue headroom within
bounds).  A watchdog task republishes whenever enough new records
accumulate and flips health if the ingest worker ever dies.

Endpoints::

    POST /v1/report    {"tenant", "stream", "values", ["attribute"],
                        ["idempotency_key"]}
    GET  /v1/estimate  ?tenant=&kind=join|chain|frequencies&streams=a,b
                       [&values=1,2,3&method=mean][&window=W]
    POST /v1/publish   force a snapshot publish
    GET  /v1/snapshot  latest snapshot identity (digest, wal_records)
    GET  /v1/status    operational summary (role, fencing_epoch,
                       wal_sequence, last_checkpoint_sequence, ...)
    POST /v1/replicate one shipped WAL frame {"epoch", "sequence", "frame"}
    POST /v1/promote   promote this node to primary (bumps the epoch)
    GET  /healthz      liveness     GET /readyz  readiness

Replication rejections are *typed* 409s: the JSON body carries an
``error_kind`` of ``fenced`` / ``gap`` / ``diverged`` / ``not_primary``
plus the fields
the sender needs to react (current epoch, expected sequence, actual
role), so a zombie primary can fence itself and a client can re-target
without string-matching error messages.  A quorum shortfall is 503 —
the batch is durable, only under-replicated — with ``Retry-After``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import math
import signal
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import (
    FencedEpochError,
    InjectedFaultError,
    NotPrimaryError,
    ParameterError,
    ProtocolError,
    ReplicaDivergenceError,
    ReplicaGapError,
    ReplicationQuorumError,
    ReproError,
    RetryExhaustedError,
)
from .core import AggregationService

__all__ = ["ServerConfig", "ServiceServer", "run_server"]

#: Reason phrases for the handful of statuses the service answers with.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServerConfig:
    """Front-end knobs: addresses, bounds, deadlines, watchdog cadence."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = let the kernel pick (the bound port is reported)
    queue_limit: int = 128  #: global bound on queued (unfolded) batches
    tenant_queue_limit: int = 32  #: per-tenant bound on queued batches
    request_timeout: float = 30.0  #: per-request deadline, seconds
    publish_threshold: int = 64  #: pending records that trigger the watchdog
    watchdog_interval: float = 0.25  #: seconds between watchdog checks
    max_body_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.queue_limit < 1 or self.tenant_queue_limit < 1:
            raise ParameterError("queue limits must be >= 1")
        if self.request_timeout <= 0:
            raise ParameterError(
                f"request_timeout must be positive, got {self.request_timeout!r}"
            )
        if self.publish_threshold < 1:
            raise ParameterError(
                f"publish_threshold must be >= 1, got {self.publish_threshold}"
            )
        if self.watchdog_interval <= 0:
            raise ParameterError(
                f"watchdog_interval must be positive, got {self.watchdog_interval!r}"
            )


class ServiceServer:
    """One service instance behind one listening socket."""

    def __init__(
        self, service: AggregationService, config: Optional[ServerConfig] = None
    ) -> None:
        self.service = service
        self.config = config or ServerConfig()
        self._queue: Optional[asyncio.Queue] = None
        self._pending_by_tenant: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker: Optional[asyncio.Task] = None
        self._watchdog: Optional[asyncio.Task] = None
        # One thread for *all* service work: folds keep their WAL total
        # order and queries never race the fold they read behind.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service"
        )
        self._closing = False
        self._closed: Optional[asyncio.Event] = None
        self._worker_error: Optional[str] = None
        self._connections: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Recover, publish the boot snapshot, bind, spawn the tasks."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self.service.start)
        # Boot publish: /readyz and queries have a snapshot from minute
        # zero (after a crash it is the recovered — byte-identical — one).
        await loop.run_in_executor(self._executor, self.service.publish)
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._closed = asyncio.Event()
        self._worker = asyncio.ensure_future(self._ingest_worker())
        self._watchdog = asyncio.ensure_future(self._watchdog_loop())
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        if self._server is None or not self._server.sockets:
            raise ProtocolError("server not started")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to the graceful drain→flush→publish exit."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, lambda: asyncio.ensure_future(self.shutdown()))

    async def serve_until_closed(self) -> None:
        """Block until :meth:`shutdown` completes (signal or explicit)."""
        if self._closed is not None:
            await self._closed.wait()

    async def shutdown(self) -> None:
        """Drain → flush → publish → release, exactly once."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Kick idle keep-alive connections loose so their handler tasks
        # finish instead of being cancelled at loop teardown.
        for writer in list(self._connections):
            writer.close()
        if self._queue is not None:
            await self._queue.put(None)  # drain sentinel: fold the rest, stop
        if self._worker is not None:
            await self._worker
        if self._watchdog is not None:
            self._watchdog.cancel()
            try:
                await self._watchdog
            except asyncio.CancelledError:
                pass
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self.service.flush)
        await loop.run_in_executor(self._executor, self.service.publish)
        await loop.run_in_executor(self._executor, self.service.close)
        self._executor.shutdown(wait=True)
        if self._closed is not None:
            self._closed.set()

    # ------------------------------------------------------------------
    # Background tasks
    # ------------------------------------------------------------------
    async def _ingest_worker(self) -> None:
        """Fold queued batches one at a time (the WAL's total order)."""
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            payload, future = item
            tenant = payload["tenant"]
            try:
                ack = await loop.run_in_executor(
                    self._executor,
                    lambda: self.service.ingest(
                        payload["tenant"],
                        payload["stream"],
                        payload["values"],
                        attribute=payload.get("attribute", 0),
                        idempotency_key=payload.get("idempotency_key"),
                    ),
                )
            except BaseException as error:  # noqa: BLE001 - forwarded to the client
                if not future.done():
                    future.set_exception(error)
                else:
                    future = None
                if not isinstance(error, ReproError):
                    # A non-repro error here is a worker bug: record it,
                    # flip /healthz, and stop rather than limp on.
                    self._worker_error = f"{type(error).__name__}: {error}"
                    self._queue.task_done()
                    return
            else:
                if not future.done():
                    future.set_result(ack)
            finally:
                count = self._pending_by_tenant.get(tenant, 0) - 1
                if count > 0:
                    self._pending_by_tenant[tenant] = count
                else:
                    self._pending_by_tenant.pop(tenant, None)
                self._queue.task_done()

    async def _watchdog_loop(self) -> None:
        """Liveness + snapshot freshness: the publisher's dead-man switch."""
        loop = asyncio.get_running_loop()
        while not self._closing:
            await asyncio.sleep(self.config.watchdog_interval)
            if self._worker is not None and self._worker.done():
                if self._worker_error is None:
                    self._worker_error = "ingest worker exited unexpectedly"
                return
            pending = self.service.pending_records()
            if pending >= self.config.publish_threshold:
                try:
                    await loop.run_in_executor(self._executor, self.service.publish)
                except ReproError:
                    # Already retried inside the service; the next tick
                    # (or an explicit POST /v1/publish) tries again.
                    continue

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def _healthy(self) -> bool:
        return (
            self._worker_error is None
            and self._worker is not None
            and not self._worker.done()
        )

    def _readiness(self) -> Tuple[bool, dict]:
        snapshot = self.service.snapshot
        pending = self.service.pending_records()
        depth = 0 if self._queue is None else self._queue.qsize()
        detail = {
            "healthy": self._healthy(),
            "snapshot_published": snapshot is not None,
            "pending_records": pending,
            "queue_depth": depth,
            "queue_limit": self.config.queue_limit,
        }
        ready = (
            detail["healthy"]
            and snapshot is not None
            and not self._closing
            # Freshness: the watchdog publishes at publish_threshold, so
            # twice that means the publisher is wedged, not just behind.
            and pending < 2 * self.config.publish_threshold
            and depth < self.config.queue_limit
        )
        return ready, detail

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while not self._closing:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), self.config.request_timeout
                    )
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    return
                except asyncio.LimitOverrunError:
                    await self._respond(writer, 413, {"error": "headers too large"})
                    return
                try:
                    method, target, headers = self._parse_head(head)
                except ValueError as error:
                    await self._respond(writer, 400, {"error": str(error)})
                    return
                length = int(headers.get("content-length", "0") or "0")
                if length > self.config.max_body_bytes:
                    await self._respond(
                        writer,
                        413,
                        {
                            "error": (
                                f"body of {length} bytes exceeds the "
                                f"{self.config.max_body_bytes}-byte limit"
                            )
                        },
                    )
                    return
                body = b""
                if length:
                    try:
                        body = await asyncio.wait_for(
                            reader.readexactly(length), self.config.request_timeout
                        )
                    except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                        return
                status, payload, extra = await self._dispatch(method, target, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._respond(
                    writer, status, payload, extra_headers=extra, keep_alive=keep_alive
                )
                if not keep_alive:
                    return
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as error:  # pragma: no cover - latin-1 is total
            raise ValueError(f"undecodable request head: {error}") from error
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ValueError(f"malformed request line {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return parts[0].upper(), parts[1], headers

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Mapping[str, Any],
        *,
        extra_headers: Optional[Mapping[str, str]] = None,
        keep_alive: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, dict, Optional[Dict[str, str]]]:
        split = urlsplit(target)
        path = split.path
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET"}, None
                if self._healthy():
                    return 200, {"status": "ok"}, None
                return 503, {"status": "dead", "error": self._worker_error}, None
            if path == "/readyz":
                if method != "GET":
                    return 405, {"error": "use GET"}, None
                ready, detail = self._readiness()
                return (200 if ready else 503), {
                    "status": "ready" if ready else "not ready",
                    **detail,
                }, None
            if path == "/v1/report":
                if method != "POST":
                    return 405, {"error": "use POST"}, None
                return await self._handle_report(body)
            if path == "/v1/estimate":
                if method != "GET":
                    return 405, {"error": "use GET"}, None
                return await self._handle_estimate(query)
            if path == "/v1/publish":
                if method != "POST":
                    return 405, {"error": "use POST"}, None
                loop = asyncio.get_running_loop()
                info = await asyncio.wait_for(
                    loop.run_in_executor(self._executor, self.service.publish),
                    self.config.request_timeout,
                )
                return 200, info, None
            if path == "/v1/snapshot":
                if method != "GET":
                    return 405, {"error": "use GET"}, None
                snapshot = self.service.snapshot
                if snapshot is None:
                    return 409, {"error": "no snapshot published yet"}, None
                return 200, snapshot.info(), None
            if path == "/v1/status":
                if method != "GET":
                    return 405, {"error": "use GET"}, None
                loop = asyncio.get_running_loop()
                status = await loop.run_in_executor(
                    self._executor, self.service.status
                )
                ready, detail = self._readiness()
                status["ready"] = ready
                status["queue"] = detail
                return 200, status, None
            if path == "/v1/replicate":
                if method != "POST":
                    return 405, {"error": "use POST"}, None
                return await self._handle_replicate(body)
            if path == "/v1/promote":
                if method != "POST":
                    return 405, {"error": "use POST"}, None
                promote = getattr(self.service, "promote", None)
                if promote is None:
                    return 409, {
                        "error": "this node is not replicated; nothing to promote",
                        "error_kind": "not_replicated",
                    }, None
                loop = asyncio.get_running_loop()
                info = await asyncio.wait_for(
                    loop.run_in_executor(self._executor, promote),
                    self.config.request_timeout,
                )
                return 200, info, None
            return 404, {"error": f"unknown path {path!r}"}, None
        except asyncio.TimeoutError:
            return 408, {"error": "request deadline exceeded"}, None
        except FencedEpochError as error:
            return 409, {
                "error": str(error),
                "error_kind": "fenced",
                "observed": error.observed,
                "required": error.required,
            }, None
        except ReplicaGapError as error:
            return 409, {
                "error": str(error),
                "error_kind": "gap",
                "expected": error.expected,
                "got": error.got,
            }, None
        except ReplicaDivergenceError as error:
            return 409, {
                "error": str(error),
                "error_kind": "diverged",
                "sequence": error.sequence,
                "reason": error.reason,
            }, None
        except NotPrimaryError as error:
            return 409, {
                "error": str(error),
                "error_kind": "not_primary",
                "role": error.role,
                "reason": error.reason,
            }, None
        except ReplicationQuorumError as error:
            # Durable locally, under-replicated: a retry (same
            # idempotency key) re-drives shipping without re-folding.
            return 503, {
                "error": str(error),
                "error_kind": "quorum",
                "acked": error.acked,
                "needed": error.needed,
                "total": error.total,
            }, {"Retry-After": "1"}
        except ParameterError as error:
            return 400, {"error": str(error)}, None
        except ProtocolError as error:
            return 409, {"error": str(error)}, None
        except RetryExhaustedError as error:
            return 503, {"error": str(error)}, None
        except InjectedFaultError as error:
            # An unabsorbed injected fault outside a retry wrapper: the
            # chaos suite wants to see it surfaced, not masked as a 500.
            return 503, {"error": str(error)}, None
        except ReproError as error:
            return 500, {"error": f"{type(error).__name__}: {error}"}, None

    async def _handle_report(
        self, body: bytes
    ) -> Tuple[int, dict, Optional[Dict[str, str]]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"body must be JSON: {error}"}, None
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}, None
        for field in ("tenant", "stream", "values"):
            if field not in payload:
                return 400, {"error": f"missing field {field!r}"}, None
        tenant = str(payload["tenant"])
        if self._closing or self._queue is None:
            return 503, {"error": "service is draining"}, {"Retry-After": "1"}
        depth = self._queue.qsize()
        retry_after = {"Retry-After": str(max(1, math.ceil(depth / 16)))}
        if self._pending_by_tenant.get(tenant, 0) >= self.config.tenant_queue_limit:
            return 429, {
                "error": (
                    f"tenant {tenant!r} has "
                    f"{self._pending_by_tenant[tenant]} batches queued "
                    f"(limit {self.config.tenant_queue_limit})"
                ),
            }, retry_after
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((payload, future))
        except asyncio.QueueFull:
            return 429, {
                "error": f"ingest queue full ({depth} batches)",
            }, retry_after
        self._pending_by_tenant[tenant] = self._pending_by_tenant.get(tenant, 0) + 1
        try:
            ack = await asyncio.wait_for(future, self.config.request_timeout)
        except asyncio.TimeoutError:
            # The batch stays queued and will still fold (and is or will
            # be WAL-durable); only the acknowledgement timed out.
            return 503, {"error": "ingest deadline exceeded; batch queued"}, None
        return 200, ack, None

    async def _handle_replicate(
        self, body: bytes
    ) -> Tuple[int, dict, Optional[Dict[str, str]]]:
        apply = getattr(self.service, "apply_replication", None)
        if apply is None:
            return 409, {
                "error": "this node is not replicated; it accepts no frames",
                "error_kind": "not_replicated",
            }, None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {
                "error": f"body must be JSON: {error}",
                "error_kind": "bad_frame",
            }, None
        if not isinstance(payload, dict):
            return 400, {
                "error": "body must be a JSON object",
                "error_kind": "bad_frame",
            }, None
        loop = asyncio.get_running_loop()
        try:
            # Same single-thread executor as ingest: applied frames and
            # local folds share one total order, exactly like the WAL.
            result = await asyncio.wait_for(
                loop.run_in_executor(self._executor, lambda: apply(payload)),
                self.config.request_timeout,
            )
        except ParameterError as error:
            # A torn/corrupt frame fails its crc inside decode_frame —
            # typed so the primary re-ships instead of guessing.
            return 400, {"error": str(error), "error_kind": "bad_frame"}, None
        return 200, result, None

    async def _handle_estimate(
        self, query: Mapping[str, str]
    ) -> Tuple[int, dict, Optional[Dict[str, str]]]:
        tenant = query.get("tenant")
        if not tenant:
            return 400, {"error": "missing query parameter 'tenant'"}, None
        kind = query.get("kind", "join")
        streams = [s for s in (query.get("streams", "").split(",")) if s]
        loop = asyncio.get_running_loop()
        if kind == "join":
            if len(streams) != 2:
                return 400, {
                    "error": "kind=join needs streams=<a>,<b>",
                }, None
            window = None
            if "window" in query:
                try:
                    window = int(query["window"])
                except ValueError:
                    return 400, {
                        "error": f"window must be an integer epoch count, "
                        f"got {query['window']!r}",
                    }, None
            call = lambda: self.service.estimate(
                tenant, streams[0], streams[1], window=window
            )
        elif kind == "chain":
            if len(streams) < 2:
                return 400, {"error": "kind=chain needs streams=<a>,<b>,..."}, None
            call = lambda: self.service.estimate_chain(tenant, streams)
        elif kind == "frequencies":
            if len(streams) != 1:
                return 400, {"error": "kind=frequencies needs streams=<a>"}, None
            raw = [v for v in query.get("values", "").split(",") if v]
            if not raw:
                return 400, {"error": "kind=frequencies needs values=1,2,3"}, None
            try:
                values = [int(v) for v in raw]
            except ValueError:
                return 400, {"error": f"values must be integers, got {raw}"}, None
            method = query.get("method", "mean")
            call = lambda: self.service.frequencies(
                tenant, streams[0], values, method=method
            )
        else:
            return 400, {
                "error": f"unknown kind {kind!r} (join | chain | frequencies)",
            }, None
        result = await asyncio.wait_for(
            loop.run_in_executor(self._executor, call), self.config.request_timeout
        )
        return 200, result, None


async def run_server(
    service: AggregationService,
    config: Optional[ServerConfig] = None,
    *,
    handle_signals: bool = True,
    on_listening=None,
) -> None:
    """Start ``service`` behind a :class:`ServiceServer` and run to exit.

    ``on_listening`` (if given) receives the bound ``(host, port)`` once
    the socket is live — the CLI and ``python -m repro.service`` print it
    so supervisors and tests can connect without racing the bind.
    """
    server = ServiceServer(service, config)
    host, port = await server.start()
    if handle_signals:
        server.install_signal_handlers()
    if on_listening is not None:
        on_listening(host, port)
    await server.serve_until_closed()
