"""``python -m repro.service`` — run one online aggregation server.

Prints ``LISTENING <host> <port>`` (flushed) once the socket is bound,
so supervisors and tests can connect without racing the bind, and exits
gracefully (drain → flush → publish) on SIGTERM/SIGINT.  The
``repro-experiments serve`` subcommand forwards here.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import List, Optional

from .core import ServiceConfig
from .replication import ACK_MODES, ROLES, HttpReplica, ReplicatedService
from .server import ServerConfig, run_server
from .wal import FSYNC_POLICIES

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``serve`` argument parser (shared with the experiments CLI)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Run the crash-safe online LDP aggregation service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks a free port (printed at bind)"
    )
    parser.add_argument(
        "--data-dir",
        type=Path,
        required=True,
        help="directory for the WAL and shard checkpoints (created if absent)",
    )
    parser.add_argument("--shards", type=int, default=4, help="shard aggregator count")
    parser.add_argument("--k", type=int, default=16, help="sketch depth")
    parser.add_argument("--m", type=int, default=1024, help="sketch width")
    parser.add_argument("--epsilon", type=float, default=4.0, help="privacy budget")
    parser.add_argument("--seed", type=int, default=0, help="service master seed")
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=32,
        help="WAL records between checkpoint flushes",
    )
    parser.add_argument(
        "--wal-fsync",
        choices=FSYNC_POLICIES,
        default="always",
        help="WAL durability policy",
    )
    parser.add_argument(
        "--retries", type=int, default=3, help="retry budget of internal operations"
    )
    parser.add_argument(
        "--queue-limit", type=int, default=128, help="global ingest queue bound"
    )
    parser.add_argument(
        "--tenant-queue-limit",
        type=int,
        default=32,
        help="per-tenant bound on queued batches",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=30.0, help="per-request deadline, s"
    )
    parser.add_argument(
        "--publish-threshold",
        type=int,
        default=64,
        help="pending records that trigger a watchdog publish",
    )
    parser.add_argument(
        "--role",
        choices=ROLES,
        default="primary",
        help="replication role: primary accepts writes and ships WAL "
        "frames; standby applies frames until promoted (POST /v1/promote)",
    )
    parser.add_argument(
        "--replica",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="a standby to replicate to (repeatable; primary only)",
    )
    parser.add_argument(
        "--ack-mode",
        choices=ACK_MODES,
        default="quorum",
        help="quorum holds each ack for a standby majority; async ships "
        "best-effort",
    )
    parser.add_argument(
        "--epoch-interval",
        type=int,
        default=0,
        help="WAL records per temporal epoch (0 disables windowed estimates)",
    )
    parser.add_argument(
        "--window-epochs",
        type=int,
        default=8,
        help="closed epochs retained for GET /v1/estimate?window=W",
    )
    parser.add_argument(
        "--dedup-retention",
        type=int,
        default=4096,
        help="idempotency-ledger entries kept (exactly-once horizon)",
    )
    parser.add_argument(
        "--fault-plan",
        type=Path,
        default=None,
        help="arm a deterministic fault schedule (FaultPlan JSON) for the "
        "whole server lifetime — chaos testing only",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Build the service from CLI flags and serve until signalled."""
    args = build_parser().parse_args(argv)
    if args.fault_plan is not None:
        from ..reliability.faults import FaultPlan, arm

        arm(FaultPlan.load(args.fault_plan))
    replicas = []
    for address in args.replica or []:
        host, sep, port = str(address).rpartition(":")
        try:
            port_number = int(port)
        except ValueError:
            port_number = -1
        if not sep or not host or not 0 < port_number < 65536:
            raise SystemExit(f"--replica must be HOST:PORT, got {address!r}")
        replicas.append(HttpReplica(host, port_number))
    service = ReplicatedService(
        ServiceConfig(
            data_dir=args.data_dir,
            k=args.k,
            m=args.m,
            epsilon=args.epsilon,
            num_shards=args.shards,
            seed=args.seed,
            checkpoint_interval=args.checkpoint_interval,
            wal_fsync=args.wal_fsync,
            retries=args.retries,
            dedup_retention=args.dedup_retention,
            epoch_interval=args.epoch_interval,
            window_epochs=args.window_epochs,
        ),
        role=args.role,
        replicas=replicas,
        ack_mode=args.ack_mode,
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        tenant_queue_limit=args.tenant_queue_limit,
        request_timeout=args.request_timeout,
        publish_threshold=args.publish_threshold,
    )

    def announce(host: str, port: int) -> None:
        print(f"LISTENING {host} {port}", flush=True)

    asyncio.run(run_server(service, config, on_listening=announce))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
