"""Crash-safe online aggregation service over the distributed layer.

The package turns the batch pieces — mergeable
:class:`~repro.distributed.PartialAggregate`\\ s, atomic
:class:`~repro.distributed.ShardCheckpoint`\\ s, the PR 7 fault/retry
machinery — into a long-running HTTP collector:

* :mod:`repro.service.wal` — crc32-framed append-only WAL, the
  durability boundary every acknowledgement sits behind.
* :mod:`repro.service.core` — the synchronous, deterministic engine:
  WAL-sequenced folds into per-shard sessions, checkpoint cadence,
  canonical published snapshots, crash recovery.
* :mod:`repro.service.server` — the asyncio HTTP front-end: bounded
  queues, per-tenant admission, 429 + Retry-After backpressure, request
  deadlines, ``/healthz`` / ``/readyz``, graceful SIGTERM drain.

Run one with ``repro-experiments serve`` or ``python -m repro.service``.
"""

from .core import AggregationService, ServiceConfig, Snapshot, batch_seed
from .server import ServerConfig, ServiceServer, run_server
from .wal import FSYNC_POLICIES, WalTear, WriteAheadLog

__all__ = [
    "AggregationService",
    "ServiceConfig",
    "Snapshot",
    "batch_seed",
    "ServerConfig",
    "ServiceServer",
    "run_server",
    "WriteAheadLog",
    "WalTear",
    "FSYNC_POLICIES",
]
