"""Crash-safe online aggregation service over the distributed layer.

The package turns the batch pieces — mergeable
:class:`~repro.distributed.PartialAggregate`\\ s, atomic
:class:`~repro.distributed.ShardCheckpoint`\\ s, the PR 7 fault/retry
machinery — into a long-running, *replicated* HTTP collector:

* :mod:`repro.service.wal` — crc32-framed append-only WAL with a
  fencing-epoch header, the durability boundary every acknowledgement
  sits behind.
* :mod:`repro.service.core` — the synchronous, deterministic engine:
  WAL-sequenced folds into per-shard sessions, checkpoint cadence,
  WAL-durable idempotency ledger (exactly-once ingest), canonical
  published snapshots, crash recovery.
* :mod:`repro.service.replication` — primary/standby WAL-frame
  shipping with quorum/async acks, gap catch-up, and fenced failover
  (a promoted standby's epoch bump turns the old primary into a
  self-fencing zombie).
* :mod:`repro.service.client` — :class:`ResilientClient`: exactly-once
  writes under aggressive retries, automatic re-target on failover,
  per-endpoint circuit breakers, hedged reads against standbys.
* :mod:`repro.service.server` — the asyncio HTTP front-end: bounded
  queues, per-tenant admission, 429 + Retry-After backpressure, request
  deadlines, typed 409 replication rejections, ``/healthz`` /
  ``/readyz``, graceful SIGTERM drain.

Run one with ``repro-experiments serve`` or ``python -m repro.service``
(``--role standby`` + ``--replica host:port`` wire up a group).
"""

from .client import CircuitBreaker, ResilientClient
from .core import AggregationService, ServiceConfig, Snapshot, batch_seed
from .replication import (
    ACK_MODES,
    REPLICATION_FAULT_POINTS,
    HttpReplica,
    LocalReplica,
    ReplicaLink,
    ReplicatedService,
)
from .server import ServerConfig, ServiceServer, run_server
from .wal import FSYNC_POLICIES, WalTear, WriteAheadLog

__all__ = [
    "AggregationService",
    "ServiceConfig",
    "Snapshot",
    "batch_seed",
    "ReplicatedService",
    "ReplicaLink",
    "LocalReplica",
    "HttpReplica",
    "ACK_MODES",
    "REPLICATION_FAULT_POINTS",
    "ResilientClient",
    "CircuitBreaker",
    "ServerConfig",
    "ServiceServer",
    "run_server",
    "WriteAheadLog",
    "WalTear",
    "FSYNC_POLICIES",
]
