"""Deterministic engine of the online aggregation service.

:class:`AggregationService` is the crash-safe, *synchronous* core the
asyncio front-end (:mod:`repro.service.server`) wraps: it owns the WAL,
the per-shard :class:`~repro.api.JoinSession` aggregators, their
:class:`~repro.distributed.ShardCheckpoint`\\ s, and the published
snapshot queries are answered from.  Everything here is a pure function
of the report stream — no wall clock, no global RNG — which is what
makes the headline invariant testable: kill the process at any instant,
restart, and the next published snapshot is byte-identical to a run that
never crashed.

The determinism chain, link by link:

1.  A batch is acknowledged only after its record is in the WAL; the
    record's *sequence number* is its replay position.
2.  The batch's client-simulation randomness is
    ``batch_seed(service_seed, sequence)`` — a sha256 derivation, so a
    replayed fold draws exactly the bits the dying process drew.
3.  The batch's shard is ``sequence % num_shards``; streams are
    namespaced ``tenant/stream`` on hash pairs shared by every shard, so
    shard accumulators are exact integer partial sums.
4.  Checkpoints persist ``(partial, cursor)`` where the cursor is the
    count of WAL records folded; recovery merges the checkpoint and
    re-folds only records at or past the cursor.  A corrupt checkpoint
    downgrades to a cold start of that shard — the WAL replays the lot.
5.  :meth:`AggregationService.publish` merges shard partials (timing
    counters excluded) into one canonical-JSON payload; the snapshot
    *is* those bytes, the digest their sha256.  Sorted-key JSON makes
    the bytes independent of dict insertion histories.

Fault points threaded for the chaos suite: ``service.ingest`` (before
any fold mutation — retry-safe), ``service.wal.append`` (inside
:class:`~repro.service.wal.WriteAheadLog`), ``service.merge`` and
``service.snapshot`` (inside :meth:`publish`, which is pure and hence
retryable), ``service.query`` (before answering — also pure).
"""

from __future__ import annotations

import hashlib
import json
import logging
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..api.session import JoinSession
from ..core.params import SketchParams
from ..distributed.checkpoint import ShardCheckpoint
from ..distributed.merge import merge_tree
from ..errors import (
    CheckpointCorruptError,
    ParameterError,
    ProtocolError,
)
from ..reliability.faults import fault_point
from ..reliability.retry import RetryPolicy
from ..temporal.session import TemporalSession
from .wal import FSYNC_POLICIES, WalTear, WriteAheadLog

__all__ = [
    "AggregationService",
    "ServiceConfig",
    "Snapshot",
    "batch_seed",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
]

#: Marker + version of the published snapshot payload.
SNAPSHOT_FORMAT = "repro/service-snapshot"
SNAPSHOT_VERSION = 1

logger = logging.getLogger("repro.service")


def batch_seed(service_seed: int, sequence: int) -> int:
    """The client-simulation seed of WAL record ``sequence``.

    A pure sha256 derivation of ``(service_seed, sequence)`` — no state,
    no wall clock — so replaying a WAL record after a crash draws
    exactly the randomness the original fold drew.  This is the link
    that turns "replay the WAL" into "byte-identical accumulators".
    """
    material = f"repro-service:{int(service_seed)}:{int(sequence)}".encode("ascii")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "little")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the service derives its behaviour from.

    The config is part of the determinism contract: two services started
    with the same config over the same report stream publish the same
    bytes.  ``data_dir`` holds the WAL (``wal.log``) and one checkpoint
    per shard (``shard-N.ckpt``).
    """

    data_dir: Union[str, Path]
    k: int = 16
    m: int = 1024
    epsilon: float = 4.0
    num_shards: int = 4
    seed: int = 0
    checkpoint_interval: int = 32  #: WAL records between checkpoint flushes
    wal_fsync: str = "always"
    retries: int = 3  #: attempt budget of every retried internal operation
    max_batch_reports: int = 65536  #: admission cap on one batch's size
    dedup_retention: int = 4096  #: idempotency-ledger entries kept per service
    epoch_interval: int = 0  #: WAL records per epoch (0 disables temporal)
    window_epochs: int = 8  #: closed epochs retained for window queries

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ParameterError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.checkpoint_interval < 1:
            raise ParameterError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        if self.wal_fsync not in FSYNC_POLICIES:
            raise ParameterError(
                f"wal_fsync must be one of {FSYNC_POLICIES}, got {self.wal_fsync!r}"
            )
        if self.retries < 1:
            raise ParameterError(f"retries must be >= 1, got {self.retries}")
        if self.max_batch_reports < 1:
            raise ParameterError(
                f"max_batch_reports must be >= 1, got {self.max_batch_reports}"
            )
        if self.dedup_retention < 1:
            raise ParameterError(
                f"dedup_retention must be >= 1, got {self.dedup_retention}"
            )
        if self.epoch_interval < 0:
            raise ParameterError(
                f"epoch_interval must be >= 0 (0 disables temporal windows), "
                f"got {self.epoch_interval}"
            )
        if self.window_epochs < 1:
            raise ParameterError(
                f"window_epochs must be >= 1, got {self.window_epochs}"
            )

    @property
    def params(self) -> SketchParams:
        return SketchParams(self.k, self.m, self.epsilon)


@dataclass(frozen=True)
class Snapshot:
    """One published snapshot: canonical bytes plus their identity.

    ``payload_bytes`` is the canonical JSON (sorted keys, compact
    separators) of the merged, timing-free partial; ``digest`` its
    sha256.  Byte-identical recovery means byte-identical
    ``payload_bytes`` — the chaos suite compares exactly these.
    """

    digest: str
    wal_records: int  #: WAL records folded into this snapshot
    payload_bytes: bytes
    session: JoinSession = field(repr=False, compare=False)

    def info(self) -> dict:
        """JSON-compatible identity (no payload) for status endpoints."""
        return {
            "digest": self.digest,
            "wal_records": self.wal_records,
            "payload_size": len(self.payload_bytes),
            "streams": list(self.session.streams()),
        }


class AggregationService:
    """Crash-safe aggregation over WAL-durable LDP report batches.

    Lifecycle: construct, :meth:`start` (recovers WAL + checkpoints),
    then any interleaving of :meth:`ingest`, :meth:`publish` and the
    query methods; :meth:`close` flushes and releases files.  All
    methods are synchronous and single-threaded by design — the asyncio
    server serialises ingest through one worker coroutine, which is what
    assigns WAL sequence numbers a total order.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.data_dir = Path(config.data_dir)
        self.wal = WriteAheadLog(self.data_dir / "wal.log", fsync=config.wal_fsync)
        # One coordinator owns the published hash pairs; every shard is
        # spawned from it so integer accumulators sum exactly.
        self._coordinator = JoinSession(config.params, seed=config.seed)
        self._shards: List[JoinSession] = [
            self._coordinator.spawn_shard() for _ in range(config.num_shards)
        ]
        self._checkpoints = [
            ShardCheckpoint(self.data_dir / f"shard-{index}.ckpt", fsync=True)
            for index in range(config.num_shards)
        ]
        self._retry = RetryPolicy(config.retries, seed=config.seed)
        self._folded = 0  # WAL records folded into shard sessions
        self._last_checkpoint = 0  # cursor of the newest complete flush
        self._snapshot: Optional[Snapshot] = None
        self._started = False
        self.recovery: Optional[dict] = None
        self.tenants: Dict[str, Dict[str, int]] = {}
        # Exactly-once ingest: (tenant, idempotency_key) -> original ack.
        # Entries ride inside WAL records ("idem" field), so the ledger is
        # WAL-durable for free — start() rebuilds it during replay.
        self._dedup: "OrderedDict[Tuple[str, str], dict]" = OrderedDict()
        # Replayable record history, in sequence order; replication ships
        # (and re-ships, on standby gaps) frames straight from this list.
        self._records: List[dict] = []
        # Temporal ring (None when epoch_interval is 0).  Not checkpointed:
        # epochs are a pure function of WAL sequence numbers, so start()
        # rebuilds the identical ring by replaying every record through
        # the same roll-then-collect path ingest uses.
        self._temporal: Optional[TemporalSession] = None
        self._reset_temporal()

    def _reset_temporal(self) -> None:
        """(Re)build the empty temporal ring on the coordinator's pairs."""
        if self.config.epoch_interval > 0:
            self._temporal = TemporalSession(
                self.config.params,
                window_epochs=self.config.window_epochs,
                pairs=self._coordinator.pairs,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> dict:
        """Recover WAL + checkpoints; returns the recovery summary.

        Safe on a cold directory (starts empty) and after any crash:
        torn WAL tails are truncated, corrupt shard checkpoints downgrade
        to cold starts, and every intact WAL record at or past a shard's
        checkpoint cursor is re-folded with its original derived seed.
        """
        records, tear = self.wal.recover()
        if tear is not None:
            # Typed downgrade: a torn tail is an expected crash artefact,
            # not corruption of acknowledged data — but operators (and the
            # chaos harness) must be able to see *why* bytes were dropped.
            logger.warning(
                "wal tear recovered: reason=%r offset=%d dropped_bytes=%d",
                tear.reason,
                tear.offset,
                tear.dropped_bytes,
            )
        cold_starts: List[dict] = []
        cursors: List[int] = []
        for index, checkpoint in enumerate(self._checkpoints):
            cursor = 0
            try:
                state = checkpoint.load()
            except CheckpointCorruptError as error:
                cold_starts.append({"shard": index, "reason": error.reason})
                state = None
            if state is not None:
                partial, cursor = state
                # A checkpoint ahead of the WAL can only happen under
                # fsync policies weaker than the checkpoint's; the WAL is
                # the acknowledgement boundary, so it wins: drop the
                # checkpoint and re-fold from the log.
                if cursor > len(records):
                    cold_starts.append(
                        {
                            "shard": index,
                            "reason": (
                                f"checkpoint cursor {cursor} ahead of the "
                                f"{len(records)}-record WAL"
                            ),
                        }
                    )
                    cursor = 0
                else:
                    self._shards[index].merge(partial)
            cursors.append(cursor)
        replayed = 0
        for sequence, record in enumerate(records):
            self._count_tenant(record)
            self._records.append(dict(record))
            self._remember_ack(record, sequence)
            shard_index = sequence % self.config.num_shards
            if sequence < cursors[shard_index]:
                # Already inside this shard's checkpoint — but the
                # temporal ring is rebuilt from the WAL alone, so every
                # record still rolls and folds the epoch buckets.
                self._fold_temporal(record, sequence)
                continue
            self._fold(record, sequence)
            replayed += 1
        self._folded = len(records)
        self._last_checkpoint = min(cursors) if cursors else 0
        self._started = True
        self.recovery = {
            "wal_records": len(records),
            "replayed": replayed,
            "torn_tail": None if tear is None else tear.to_dict(),
            "cold_starts": cold_starts,
        }
        return self.recovery

    def flush(self) -> None:
        """Durability barrier: fsync the WAL, checkpoint every shard."""
        self._require_started()
        self.wal.sync()
        for shard, checkpoint in zip(self._shards, self._checkpoints):
            checkpoint.flush(shard.to_partial(), cursor=self._folded)
        self._last_checkpoint = self._folded

    def close(self) -> None:
        """Flush state and release the WAL handle (idempotent)."""
        if self._started:
            self.flush()
        self.wal.close()

    def _require_started(self) -> None:
        if not self._started:
            raise ProtocolError(
                "service not started; call start() to recover WAL + checkpoints"
            )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        tenant: str,
        stream: str,
        values: Sequence[int],
        *,
        attribute: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> dict:
        """Durably ingest one report batch; returns the acknowledgement.

        The batch is validated, appended to the WAL (the acknowledgement
        boundary — once :meth:`~repro.service.wal.WriteAheadLog.append`
        returns, a crash cannot lose it), then folded into its shard
        under the retry policy.  The fold's ``service.ingest`` fault
        point fires *before* any mutation, so an absorbed fault re-runs
        the fold cleanly.

        ``idempotency_key`` makes retries exactly-once: the key travels
        inside the WAL record, so the dedup ledger survives crashes with
        the data it protects, and a duplicate ``(tenant, key)`` returns
        a copy of the original acknowledgement (marked
        ``"deduplicated": True``) instead of re-folding the batch.
        Retention is bounded (:attr:`ServiceConfig.dedup_retention`
        newest keys); clients must not recycle keys beyond that horizon.
        """
        self._require_started()
        self._check_writable()
        if idempotency_key is not None:
            if not isinstance(idempotency_key, str) or not idempotency_key:
                raise ParameterError(
                    f"idempotency_key must be a non-empty string, got "
                    f"{idempotency_key!r}"
                )
            original = self._dedup.get((tenant, idempotency_key))
            if original is not None:
                # The batch already landed; a retry must still leave the
                # cluster converged, so re-drive replication before
                # re-acking (no-op when every standby already has it).
                self._replication_repair()
                ack = dict(original)
                ack["deduplicated"] = True
                return ack
        record = self._validate_batch(tenant, stream, values, attribute)
        if idempotency_key is not None:
            record["idem"] = idempotency_key
        sequence = self.wal.append(record)
        self._folded = sequence + 1
        self._count_tenant(record)
        self._records.append(record)
        ack = self._remember_ack(record, sequence)
        self._retry.call(
            lambda: self._fold(record, sequence),
            operation=f"service.ingest[{sequence}]",
        )
        self._after_append(record, sequence)
        if (sequence + 1) % self.config.checkpoint_interval == 0:
            self.flush()
        return dict(ack)

    def _validate_batch(
        self, tenant: str, stream: str, values: Sequence[int], attribute: int
    ) -> dict:
        if not tenant or not isinstance(tenant, str):
            raise ParameterError(f"tenant must be a non-empty string, got {tenant!r}")
        if "/" in tenant:
            raise ParameterError(
                f"tenant must not contain '/' (reserved for stream "
                f"namespacing), got {tenant!r}"
            )
        if not stream or not isinstance(stream, str):
            raise ParameterError(f"stream must be a non-empty string, got {stream!r}")
        self._coordinator.params_for(int(attribute))  # bounds check
        try:
            array = np.asarray(values, dtype=np.int64)
        except (TypeError, ValueError, OverflowError) as error:
            raise ParameterError(f"batch values must be integers: {error}") from error
        if array.ndim != 1 or array.size == 0:
            raise ParameterError(
                f"batch values must be a non-empty 1-D sequence, got shape "
                f"{array.shape}"
            )
        if array.size > self.config.max_batch_reports:
            raise ParameterError(
                f"batch holds {array.size} reports, over the "
                f"{self.config.max_batch_reports}-report admission cap; split it"
            )
        return {
            "tenant": tenant,
            "stream": stream,
            "attribute": int(attribute),
            "values": array.tolist(),
        }

    def _fold(self, record: Mapping[str, Any], sequence: int) -> None:
        """Fold one WAL record into its shard (pure given the record)."""
        shard_index = sequence % self.config.num_shards
        fault_point(
            "service.ingest",
            sequence=int(sequence),
            shard=shard_index,
            tenant=str(record["tenant"]),
        )
        self._fold_temporal(record, sequence)
        self._shards[shard_index].collect(
            f"{record['tenant']}/{record['stream']}",
            np.asarray(record["values"], dtype=np.int64),
            attribute=int(record["attribute"]),
            seed=batch_seed(self.config.seed, sequence),
        )

    def _fold_temporal(self, record: Mapping[str, Any], sequence: int) -> None:
        """Roll the epoch ring to ``sequence``'s epoch and fold the batch.

        The epoch is ``sequence // epoch_interval`` — a pure function of
        the WAL position — and the batch re-uses the fold's derived
        seed, so the epoch accumulators are the same integer sums the
        shard path produces for those records.  Replay and replication
        therefore rebuild a byte-identical ring.
        """
        if self._temporal is None:
            return
        self._temporal.roll_to(sequence // self.config.epoch_interval)
        self._temporal.collect(
            f"{record['tenant']}/{record['stream']}",
            np.asarray(record["values"], dtype=np.int64),
            attribute=int(record["attribute"]),
            seed=batch_seed(self.config.seed, sequence),
        )

    def _count_tenant(self, record: Mapping[str, Any]) -> None:
        stats = self.tenants.setdefault(
            str(record["tenant"]), {"batches": 0, "reports": 0}
        )
        stats["batches"] += 1
        stats["reports"] += len(record["values"])

    def _remember_ack(self, record: Mapping[str, Any], sequence: int) -> dict:
        """Compute record ``sequence``'s ack; ledger it if idempotent.

        The ack is a pure function of ``(record, sequence)``, which is
        why replaying the WAL rebuilds the exact ledger the dying
        process held — duplicates get the same bytes either side of a
        crash.  Retention is a FIFO bound on *entries*, so one hot
        tenant cannot evict nothing while a cold tenant's keys expire.
        """
        ack = {
            "sequence": int(sequence),
            "shard": int(sequence) % self.config.num_shards,
            "reports": len(record["values"]),
        }
        key = record.get("idem")
        if key is not None:
            self._dedup[(str(record["tenant"]), str(key))] = ack
            while len(self._dedup) > self.config.dedup_retention:
                self._dedup.pop(next(iter(self._dedup)))
        return ack

    # ------------------------------------------------------------------
    # Replication hooks (no-ops for a standalone service)
    # ------------------------------------------------------------------
    @property
    def role(self) -> str:
        """This node's role; a standalone service is its own primary."""
        return "primary"

    def _check_writable(self) -> None:
        """Reject ingest when this node must not accept writes.

        The standalone service always may; the replicated subclass
        raises the typed 409s (standby, fenced zombie) here, *before*
        the WAL append — a rejected write leaves no trace to undo.
        """

    def _after_append(self, record: Mapping[str, Any], sequence: int) -> None:
        """Ship record ``sequence`` to standbys (replication subclass)."""

    def _replication_repair(self) -> None:
        """Re-drive replication to quorum after a failed/duplicate send."""

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self) -> dict:
        """Merge shard state into a new published snapshot.

        Pure over the shard sessions — building the merged session
        allocates fresh state, so injected faults at ``service.merge`` /
        ``service.snapshot`` are absorbed by a clean re-run.  The
        snapshot payload is canonical JSON with timing counters excluded
        (wall-clock accounting is real but not part of the published
        identity), which is what makes crash recovery *byte*-identical
        rather than merely value-identical.
        """
        self._require_started()
        snapshot = self._retry.call(self._build_snapshot, operation="service.publish")
        self._snapshot = snapshot
        return snapshot.info()

    def _build_snapshot(self) -> Snapshot:
        fault_point("service.merge", shards=self.config.num_shards)
        merged = JoinSession(self.config.params, pairs=self._coordinator.pairs)
        for shard in self._shards:
            merged.merge(shard.to_partial(include_timing=False))
        fault_point("service.snapshot", wal_records=self._folded)
        payload = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "wal_records": self._folded,
            "partial": merged.to_partial(include_timing=False).to_dict(),
        }
        payload_bytes = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return Snapshot(
            digest=hashlib.sha256(payload_bytes).hexdigest(),
            wal_records=self._folded,
            payload_bytes=payload_bytes,
            session=merged,
        )

    @property
    def snapshot(self) -> Optional[Snapshot]:
        """The latest published snapshot, or ``None`` before the first."""
        return self._snapshot

    def pending_records(self) -> int:
        """WAL records folded since the last published snapshot."""
        published = 0 if self._snapshot is None else self._snapshot.wal_records
        return self._folded - published

    # ------------------------------------------------------------------
    # Queries (answered from the published snapshot)
    # ------------------------------------------------------------------
    def _published_session(self) -> JoinSession:
        if self._snapshot is None:
            raise ProtocolError(
                "no snapshot published yet; POST /v1/publish (or wait for the "
                "publisher) before querying"
            )
        return self._snapshot.session

    @staticmethod
    def _qualify(tenant: str, stream: str) -> str:
        return f"{tenant}/{stream}"

    def estimate(
        self,
        tenant: str,
        stream_a: str,
        stream_b: str,
        *,
        window: Optional[int] = None,
    ) -> dict:
        """Eq. (5) join-size estimate between two of a tenant's streams.

        With ``window=W`` the estimate covers only the newest ``W``
        epochs (open epoch included) and is answered from the live
        epoch ring — deterministic WAL state, no publish required —
        instead of the published snapshot.
        """
        if window is not None:
            return self._estimate_window(tenant, stream_a, stream_b, int(window))
        session = self._published_session()

        def run() -> dict:
            fault_point("service.query", kind="estimate", tenant=str(tenant))
            result = session.estimate(
                self._qualify(tenant, stream_a), self._qualify(tenant, stream_b)
            )
            return {
                "estimate": float(result.estimate),
                "num_reports": int(result.extras["num_reports"]),
                "streams": [stream_a, stream_b],
                "snapshot_digest": self._snapshot.digest,
            }

        return self._retry.call(run, operation="service.query.estimate")

    def _estimate_window(
        self, tenant: str, stream_a: str, stream_b: str, window: int
    ) -> dict:
        """Sliding-window estimate over the newest ``window`` epochs.

        The window session is a fresh tree-merge of the ring's partials
        (plus the open epoch) — pure over deterministic WAL state, so
        the query is retry-safe and two replicas that agree on the WAL
        return identical bytes.  Each answered release is noted on the
        continual-observation ledger per covered epoch.
        """
        self._require_started()
        if self._temporal is None:
            raise ProtocolError(
                "temporal windows are disabled; start the service with "
                "epoch_interval > 0 to enable windowed estimates"
            )
        temporal = self._temporal

        def run() -> Tuple[list, dict]:
            fault_point("service.query", kind="window", tenant=str(tenant))
            entries = temporal.window_entries(window)
            session = JoinSession(self.config.params, pairs=self._coordinator.pairs)
            session.merge(merge_tree([partial for _, partial in entries]))
            result = session.estimate(
                self._qualify(tenant, stream_a), self._qualify(tenant, stream_b)
            )
            return entries, {
                "estimate": float(result.estimate),
                "num_reports": int(result.extras["num_reports"]),
                "streams": [stream_a, stream_b],
                "window": int(window),
                "epochs": [epoch for epoch, _ in entries],
            }

        entries, answer = self._retry.call(run, operation="service.query.window")
        temporal.note_release(tenant, entries)
        return answer

    def estimate_chain(self, tenant: str, streams: Sequence[str]) -> dict:
        """Eq. (27) chain-join estimate over a tenant's streams."""
        session = self._published_session()

        def run() -> dict:
            fault_point("service.query", kind="chain", tenant=str(tenant))
            result = session.estimate_chain(
                [self._qualify(tenant, name) for name in streams]
            )
            return {
                "estimate": float(result.estimate),
                "num_reports": int(result.extras["num_reports"]),
                "streams": list(streams),
                "snapshot_digest": self._snapshot.digest,
            }

        return self._retry.call(run, operation="service.query.chain")

    def frequencies(
        self,
        tenant: str,
        stream: str,
        values: Sequence[int],
        *,
        method: str = "mean",
    ) -> dict:
        """Theorem 7 frequency estimates against one published stream."""
        session = self._published_session()

        def run() -> dict:
            fault_point("service.query", kind="frequencies", tenant=str(tenant))
            estimates = session.frequencies(
                self._qualify(tenant, stream),
                np.asarray(values, dtype=np.int64),
                method=method,
            )
            return {
                "frequencies": [float(v) for v in estimates],
                "values": [int(v) for v in values],
                "stream": stream,
                "snapshot_digest": self._snapshot.digest,
            }

        return self._retry.call(run, operation="service.query.frequencies")

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-compatible operational summary for status endpoints.

        ``role`` / ``fencing_epoch`` / ``wal_sequence`` /
        ``last_checkpoint_sequence`` are the replication observables:
        operators (and the chaos harness) read lag as the difference
        between two nodes' ``wal_sequence`` and verify failover by
        watching ``role`` flip and ``fencing_epoch`` bump — no log
        parsing required.
        """
        return {
            "started": self._started,
            "role": self.role,
            "fencing_epoch": self.wal.epoch,
            "wal_records": self._folded,
            "wal_sequence": self._folded,
            "wal_bytes": self.wal.size_bytes(),
            "last_checkpoint_sequence": self._last_checkpoint,
            "num_shards": self.config.num_shards,
            "pending_records": self.pending_records() if self._started else 0,
            "dedup_entries": len(self._dedup),
            "snapshot": None if self._snapshot is None else self._snapshot.info(),
            "tenants": {name: dict(stats) for name, stats in self.tenants.items()},
            "recovery": self.recovery,
            "temporal": (
                None
                if self._temporal is None
                else dict(
                    self._temporal.status(),
                    epoch_interval=self.config.epoch_interval,
                )
            ),
        }
