"""Append-only write-ahead log: the service's durability boundary.

Every report batch the service *acknowledges* is first appended here —
one crc32-framed record per batch — so a ``kill -9`` at any instant
loses at most work the client was never told succeeded.  On restart the
log replays in order; per-batch randomness is derived from the record's
*sequence number* (see :func:`repro.service.core.batch_seed`), so the
replayed fold is byte-identical to the fold the dying process performed.

File format (little-endian)::

    +------+---------+------------+
    | RWHD | ver:u32 | epoch: u64 |   fixed 16-byte header
    +------+---------+------------+
    +----+----------+----------+------------------+
    | RW | len: u32 | crc: u32 | payload (len B)  |   one frame per record
    +----+----------+----------+------------------+

The header carries the **fencing epoch** of the replication layer
(:mod:`repro.service.replication`): a monotonic counter bumped by every
standby promotion and rewritten in place (16 bytes at offset 0, fsynced)
by :meth:`WriteAheadLog.set_epoch`.  A node that recovers its WAL knows
which epoch it last served in, so a zombie primary cannot forget it was
fenced.  Headerless (v1) files are migrated to the headered format at
epoch 0 on the first :meth:`WriteAheadLog.recover`.

``payload`` is the canonical JSON of the record (sorted keys, fixed
separators); ``crc`` is the crc32 of the payload bytes.  A crash mid
``write`` leaves a *torn tail*: a final frame whose magic, length, crc
or byte count does not check out.  :meth:`WriteAheadLog.recover` reads
every intact frame, stops cleanly at the first damaged one, and (by
default) truncates the file back to the last intact frame boundary so
subsequent appends continue from a clean edge.  Torn bytes are counted
and reported — a tear can only hold a record that was never
acknowledged, so dropping it is correct, but it must never be silent.

Durability knob (``fsync=``):

``"always"``
    ``os.fsync`` after every append — an acknowledged batch survives
    power loss, not just process death.  The default.
``"batch"``
    Data is flushed to the OS on every append (survives ``kill -9``)
    but fsynced only at :meth:`WriteAheadLog.sync` barriers — the
    service calls one before each checkpoint flush.
``"never"``
    No fsync at all; survives process death only.  For tests and
    benchmarks chasing the no-durability ceiling.

Fault points: ``service.wal.append`` fires before the frame is written.
``torn-write`` / ``corrupt`` specs damage the frame bytes (truncate /
flip one payload byte) and then raise
:class:`~repro.errors.InjectedCrashError`: a torn or corrupt frame can
only exist because the writer died mid-write, so the injection models
the whole event — damage on disk, process gone — and the chaos suite
restarts from the damaged file exactly as production would.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, List, Mapping, Optional, Tuple, Union

from ..errors import InjectedCrashError, ParameterError
from ..reliability.faults import fault_point

__all__ = [
    "WriteAheadLog",
    "WalTear",
    "FSYNC_POLICIES",
    "encode_frame",
    "decode_frame",
]

#: Two magic bytes opening every frame.
_MAGIC = b"RW"

#: Frame header layout after the magic: payload length, payload crc32.
_HEADER = struct.Struct("<II")

#: File header: magic, format version, fencing epoch.
_FILE_MAGIC = b"RWHD"
_FILE_HEADER = struct.Struct("<4sIQ")
_WAL_VERSION = 2

#: Supported fsync policies, strictest first.
FSYNC_POLICIES = ("always", "batch", "never")

#: Refuse to read frames claiming more than this many payload bytes —
#: a corrupt length field must not trigger a gigabyte allocation.
_MAX_FRAME_BYTES = 256 * 1024 * 1024


def encode_frame(record: Mapping[str, Any]) -> bytes:
    """The crc32-framed bytes of one record, exactly as appended.

    Framing is a pure function of the record (canonical JSON), so a
    frame built on the primary and a frame appended by a standby that
    applied the shipped record are byte-identical — which is what lets
    the replication layer ship *frames* and still keep both WALs (and
    hence both snapshot digests) in lockstep.
    """
    payload = json.dumps(dict(record), sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return _MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def decode_frame(frame: bytes) -> dict:
    """Parse and integrity-check one shipped frame; returns its record.

    Raises :class:`~repro.errors.ParameterError` naming the damage for
    any frame that does not verify — truncated, bad magic, crc mismatch,
    trailing bytes — so a replication stream corrupted in flight is
    rejected *before* it can touch a standby's WAL.
    """
    if len(frame) < len(_MAGIC) + _HEADER.size:
        raise ParameterError(
            f"replication frame truncated at {len(frame)} bytes (header needs "
            f"{len(_MAGIC) + _HEADER.size})"
        )
    if frame[:2] != _MAGIC:
        raise ParameterError("replication frame has bad magic")
    length, crc = _HEADER.unpack_from(frame, 2)
    body = frame[2 + _HEADER.size :]
    if len(body) != length:
        raise ParameterError(
            f"replication frame length mismatch ({len(body)} bytes of payload, "
            f"header claims {length})"
        )
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise ParameterError("replication frame payload crc32 mismatch")
    try:
        record = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ParameterError(
            f"replication frame payload is not valid JSON ({error})"
        ) from error
    if not isinstance(record, dict):
        raise ParameterError(
            f"replication frame payload must be a JSON object, got "
            f"{type(record).__name__}"
        )
    return record


@dataclass(frozen=True)
class WalTear:
    """One damaged tail: where the log stopped replaying and why."""

    offset: int  #: byte offset of the first damaged frame
    dropped_bytes: int  #: bytes past the offset that were discarded
    reason: str  #: human-readable damage description

    def to_dict(self) -> dict:
        return {
            "offset": self.offset,
            "dropped_bytes": self.dropped_bytes,
            "reason": self.reason,
        }


class WriteAheadLog:
    """Crc32-framed append-only record log with torn-tail recovery.

    Construction does not touch the file; call :meth:`recover` (which
    creates it when absent) before the first :meth:`append` so the
    in-memory sequence counter agrees with the bytes on disk.
    """

    def __init__(self, path: Union[str, Path], *, fsync: str = "always") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ParameterError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self._file = None
        self._sequence = 0  # records currently in the file
        self._recovered = False
        self._epoch = 0  # fencing epoch from the file header

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _scan(
        self, data: bytes, *, base: int = 0
    ) -> Tuple[List[dict], int, Optional[WalTear]]:
        """Parse frame ``data`` into records; stop at the first damaged frame.

        ``base`` is the file offset where ``data`` starts (the header
        size for a v2 file), so tear offsets name absolute positions an
        operator can seek to.  The returned good offset is absolute too.
        """
        records: List[dict] = []
        offset = 0
        total = len(data)
        while offset < total:
            head = offset
            if total - offset < len(_MAGIC) + _HEADER.size:
                return records, base + head, WalTear(
                    base + head, total - head, "truncated frame header"
                )
            if data[offset : offset + 2] != _MAGIC:
                return records, base + head, WalTear(
                    base + head, total - head, "bad frame magic"
                )
            offset += 2
            length, crc = _HEADER.unpack_from(data, offset)
            offset += _HEADER.size
            if length > _MAX_FRAME_BYTES:
                return records, base + head, WalTear(
                    base + head, total - head, f"implausible frame length {length}"
                )
            if total - offset < length:
                return records, base + head, WalTear(
                    base + head,
                    total - head,
                    f"truncated payload ({total - offset} of {length} bytes)",
                )
            payload = data[offset : offset + length]
            offset += length
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                return records, base + head, WalTear(
                    base + head, total - head, "payload crc32 mismatch"
                )
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return records, base + head, WalTear(
                    base + head, total - head, f"payload not valid JSON ({error})"
                )
            records.append(record)
        return records, base + offset, None

    def recover(self, *, truncate: bool = True) -> Tuple[List[dict], Optional[WalTear]]:
        """Replay every intact record; optionally trim a damaged tail.

        Returns ``(records, tear)`` where ``tear`` is ``None`` for a
        clean log.  With ``truncate=True`` (default) the file is cut
        back to the last intact frame so :meth:`append` continues from a
        clean boundary; a tear holds at most never-acknowledged data, so
        trimming is safe.  Also (re)initialises the sequence counter —
        call this once before the first append.
        """
        self.close()
        if self.path.exists():
            data = self.path.read_bytes()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            data = b""
        epoch = 0
        legacy = False
        header_tear: Optional[WalTear] = None
        if data[:4] == _FILE_MAGIC and len(data) < _FILE_HEADER.size:
            # Torn file header: the crash hit the 16-byte create/migrate
            # write itself, so no frame can follow it and no epoch was
            # ever durable — reinitialise at epoch 0, but report the
            # tear like any other damaged tail.
            header_tear = WalTear(
                0,
                len(data),
                f"truncated file header ({len(data)} of "
                f"{_FILE_HEADER.size} bytes)",
            )
            frames, base = b"", len(data)
        elif data[:4] == _FILE_MAGIC:
            magic, version, epoch = _FILE_HEADER.unpack_from(data, 0)
            if version != _WAL_VERSION:
                raise ParameterError(
                    f"WAL {self.path} has unsupported format version {version}"
                )
            frames, base = data[_FILE_HEADER.size :], _FILE_HEADER.size
        else:
            # Either a brand-new/empty log or a headerless v1 file from
            # before fencing epochs existed; both migrate to v2 below.
            frames, base = data, 0
            legacy = len(data) > 0
        records, good_offset, tear = self._scan(frames, base=base)
        if header_tear is not None:
            tear = header_tear
        self._epoch = int(epoch)
        header = _FILE_HEADER.pack(_FILE_MAGIC, _WAL_VERSION, self._epoch)
        if legacy or (header_tear is not None and truncate):
            # One-time migration (or torn-header reinit): rewrite as
            # header + intact frames via the atomic temp + replace
            # dance (also trims any tear).
            tmp = self.path.with_name(self.path.name + ".tmp")
            keep = frames[: good_offset - base] if (tear is None or truncate) else frames
            with open(tmp, "wb") as fh:
                fh.write(header + keep)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._fsync_parent()
        elif not data:
            with open(self.path, "wb") as fh:
                fh.write(header)
                fh.flush()
                os.fsync(fh.fileno())
            self._fsync_parent()
        elif tear is not None and truncate:
            with open(self.path, "r+b") as fh:
                fh.truncate(good_offset)
                fh.flush()
                os.fsync(fh.fileno())
        self._sequence = len(records)
        self._recovered = True
        return records, tear

    def _fsync_parent(self) -> None:
        """Fsync the log's directory so a create/replace survives power loss."""
        fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replay(self) -> Iterator[Tuple[int, dict]]:
        """``(sequence, record)`` pairs of every intact frame on disk."""
        if self.path.exists():
            data = self.path.read_bytes()
            if data[:4] == _FILE_MAGIC:
                data = data[_FILE_HEADER.size :]
            records, _, _ = self._scan(data)
            yield from enumerate(records)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _handle(self):
        if self._file is None:
            if not self._recovered:
                raise ParameterError(
                    f"WAL {self.path} used before recover(); call recover() so "
                    f"the sequence counter matches the bytes on disk"
                )
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "ab")
        return self._file

    def append(self, record: Mapping[str, Any]) -> int:
        """Durably append one record; returns its sequence number.

        The returned sequence is the record's replay position (0-based)
        — the same number :func:`repro.service.core.batch_seed` derives
        the batch randomness from, which is what makes replay
        byte-identical.
        """
        frame = encode_frame(record)
        sequence = self._sequence
        spec = fault_point(
            "service.wal.append", sequence=sequence, bytes=len(frame)
        )
        fh = self._handle()
        if spec is not None and spec.kind in ("torn-write", "corrupt"):
            if spec.kind == "torn-write":
                damaged = frame[: max(1, len(frame) // 2)]
            else:
                flip = len(_MAGIC) + _HEADER.size  # first payload byte
                damaged = frame[:flip] + bytes([frame[flip] ^ 0xFF]) + frame[flip + 1 :]
            fh.write(damaged)
            fh.flush()
            os.fsync(fh.fileno())
            # A torn/corrupt frame only exists because the writer died
            # mid-write; model the whole event so the chaos suite
            # restarts from the damaged file exactly as production would.
            raise InjectedCrashError(
                "service.wal.append", {"sequence": sequence, "kind": spec.kind}
            )
        fh.write(frame)
        fh.flush()
        if self.fsync == "always":
            os.fsync(fh.fileno())
        self._sequence += 1
        return sequence

    def sync(self) -> None:
        """Durability barrier: fsync pending bytes (``batch`` policy)."""
        if self._file is not None and self.fsync != "never":
            os.fsync(self._file.fileno())

    def truncate_to(self, records: int) -> int:
        """Durably cut the log back to its first ``records`` records.

        Divergence repair for the replication layer
        (:meth:`repro.service.replication.ReplicatedService.apply_replication`):
        a demoted node whose un-replicated suffix conflicts with the
        promoted primary's history drops that suffix here, then applies
        the primary's frames from the cut.  Only ever shortens the log;
        the truncation is fsynced before returning so a crash cannot
        resurrect the dropped fork.
        """
        if not self._recovered:
            raise ParameterError(
                f"WAL {self.path} used before recover(); call recover() before "
                f"truncate_to() so frame boundaries are known"
            )
        records = int(records)
        if records < 0 or records > self._sequence:
            raise ParameterError(
                f"cannot truncate a {self._sequence}-record WAL to "
                f"{records} record(s)"
            )
        if records == self._sequence:
            return self._sequence
        self.close()  # flush the append handle before cutting beneath it
        data = self.path.read_bytes()
        offset = _FILE_HEADER.size if data[:4] == _FILE_MAGIC else 0
        for _ in range(records):
            length, _crc = _HEADER.unpack_from(data, offset + len(_MAGIC))
            offset += len(_MAGIC) + _HEADER.size + length
        with open(self.path, "r+b") as fh:
            fh.truncate(offset)
            fh.flush()
            os.fsync(fh.fileno())
        self._sequence = records
        return records

    # ------------------------------------------------------------------
    # Fencing epoch
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The fencing epoch persisted in the file header."""
        return self._epoch

    def set_epoch(self, epoch: int) -> int:
        """Persist a monotonic fencing-epoch bump in the file header.

        The header is rewritten in place (16 bytes at offset 0) and
        fsynced regardless of the ``fsync`` policy — an epoch bump is a
        promotion or a fencing adoption, and forgetting one across a
        power cut is exactly the split-brain the epoch exists to stop.
        Lowering the epoch is refused with a typed error.
        """
        if not self._recovered:
            raise ParameterError(
                f"WAL {self.path} used before recover(); call recover() before "
                f"set_epoch() so the header exists on disk"
            )
        epoch = int(epoch)
        if epoch < self._epoch:
            raise ParameterError(
                f"fencing epoch is monotonic: cannot lower {self._epoch} to {epoch}"
            )
        if epoch == self._epoch:
            return self._epoch
        with open(self.path, "r+b") as fh:
            fh.write(_FILE_HEADER.pack(_FILE_MAGIC, _WAL_VERSION, epoch))
            fh.flush()
            os.fsync(fh.fileno())
        self._epoch = epoch
        return self._epoch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Records appended (valid only after :meth:`recover`)."""
        return self._sequence

    def size_bytes(self) -> int:
        """Current on-disk size of the log."""
        return self.path.stat().st_size if self.path.exists() else 0

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self.fsync != "never":
                os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WriteAheadLog(path={str(self.path)!r}, fsync={self.fsync!r}, "
            f"records={self._sequence})"
        )
