"""Primary/standby replication with fenced failover.

:class:`ReplicatedService` extends the crash-safe
:class:`~repro.service.core.AggregationService` with a replication layer
whose whole design leans on one fact: the engine is a *pure function of
the WAL*.  The primary therefore ships nothing cleverer than its own WAL
frames — the exact crc32-framed bytes :func:`repro.service.wal.encode_frame`
produced — and a standby applies each record through the very same
``append → fold → checkpoint`` path ingest uses.  Two nodes that agree
on the record sequence are byte-identical: same WAL, same accumulators,
same published snapshot digest.  That is the headline chaos property,
and it is why failover needs no state transfer — the survivor already
*is* the primary, minus a name.

Protocol, frame by frame::

    primary                             standby
    ingest(batch)
      wal.append(record)    ──ack boundary
      fold into shard
      ship {epoch, seq, frame} ───────▶ apply_replication(payload)
                                          epoch checks (fencing)
                                          seq == wal length? append+fold
                                          seq <  length, bytes match?
                                                              duplicate ack
                                          seq <  length, bytes differ?
                                                              truncate fork,
                                                              append+fold
                                          seq >  length?      ReplicaGapError
      quorum reached? ack client ◀────── {applied: true, ...}

A standby that missed frames answers with the sequence it needs next
(:class:`~repro.errors.ReplicaGapError`); the primary rewinds that
link's cursor and re-ships — catch-up is the steady-state protocol run
in a loop, not a separate code path.

**Fencing.**  Failover is driven by the monotonic *fencing epoch*
persisted in the WAL header (:meth:`~repro.service.wal.WriteAheadLog.set_epoch`).
:meth:`ReplicatedService.promote` bumps the epoch and flips the node to
primary; from then on any shipment carrying the old epoch is rejected
with :class:`~repro.errors.FencedEpochError`, and a zombie primary that
sees that rejection **fences itself** — its own ``ingest`` starts
raising the typed 409 instead of accepting writes the cluster will
never acknowledge.  Split brain is prevented by arithmetic, not timing.

**Divergence repair.**  A zombie that appended (and folded) a record
locally before learning it was fenced holds a *forked* suffix: same
sequence numbers, different bytes.  Re-shipped frames from the new
primary byte-compare against the local record before any duplicate
ack; a mismatch truncates the fork (WAL first, fsynced, then an
in-memory re-fold of the kept prefix) and applies the primary's frame
in its place — the fencing check already proved the sender's history
authoritative.  Symmetrically, a standby claiming to be *ahead* of the
primary's WAL head raises :class:`~repro.errors.ReplicaDivergenceError`
on the primary instead of silently counting toward quorum.

**Exactly-once interplay.**  Quorum failures surface *after* the local
WAL append, so the batch is durable but under-replicated.  The client
retries with its idempotency key; the dedup ledger short-circuits the
re-fold and :meth:`ReplicatedService._replication_repair` re-drives
shipping to quorum before re-acking.  Retries converge the cluster
instead of double-counting.

Fault points for the chaos suite (:data:`REPLICATION_FAULT_POINTS`):
``service.replicate.send`` fires per link before each shipment
(``torn-write``/``corrupt`` specs damage the frame in transit — the
standby's crc check turns the damage into a clean rejection),
``service.replicate.apply`` fires on the standby before any mutation,
and ``service.promote`` fires before the epoch bump.
"""

from __future__ import annotations

import base64
import binascii
import json
import logging
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..errors import (
    FencedEpochError,
    InjectedCrashError,
    InjectedFaultError,
    NotPrimaryError,
    ParameterError,
    ProtocolError,
    ReplicaDivergenceError,
    ReplicaGapError,
    ReplicationError,
    ReplicationQuorumError,
)
from ..reliability.faults import fault_point
from .core import AggregationService, ServiceConfig
from .wal import decode_frame, encode_frame

__all__ = [
    "ReplicatedService",
    "ReplicaLink",
    "LocalReplica",
    "HttpReplica",
    "ROLES",
    "ACK_MODES",
    "REPLICATION_FAULT_POINTS",
]

#: Roles a replicated node can be constructed with.
ROLES = ("primary", "standby")

#: Acknowledgement modes for primary → standby shipping.
ACK_MODES = ("quorum", "async")

#: Fault points this module threads for the chaos suite.
REPLICATION_FAULT_POINTS = (
    "service.replicate.send",
    "service.replicate.apply",
    "service.promote",
)

logger = logging.getLogger("repro.service")


class ReplicaLink:
    """One standby as seen from the primary: a named frame transport.

    Subclasses implement :meth:`replicate` — deliver one shipment
    payload and return the standby's response dict, raising the typed
    replication errors (or ``ConnectionError``) on rejection.  The
    primary tracks per-link ship cursors itself, so links are stateless
    beyond their address.
    """

    name: str = "replica"

    def replicate(self, payload: Mapping[str, Any]) -> dict:
        raise NotImplementedError


class LocalReplica(ReplicaLink):
    """In-process link to a standby service (tests and chaos schedules).

    Calls :meth:`ReplicatedService.apply_replication` directly — same
    protocol, no sockets — which lets the hypothesis suite run whole
    primary/standby/failover schedules deterministically in one process.
    """

    def __init__(self, service: "ReplicatedService", *, name: str = "local") -> None:
        self.service = service
        self.name = str(name)

    def replicate(self, payload: Mapping[str, Any]) -> dict:
        return self.service.apply_replication(payload)


class HttpReplica(ReplicaLink):
    """HTTP link to a standby's ``POST /v1/replicate`` endpoint.

    Synchronous by design: the primary's service core runs on the
    asyncio server's single worker thread, where blocking I/O is the
    contract (the event loop never sees it).  Typed 409 rejections are
    reconstructed from the response's ``error_kind`` so the primary's
    protocol handling is transport-agnostic.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 5.0) -> None:
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self.name = f"{self.host}:{self.port}"

    def replicate(self, payload: Mapping[str, Any]) -> dict:
        import http.client

        body = json.dumps(dict(payload)).encode("utf-8")
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "POST",
                "/v1/replicate",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as error:
            raise ConnectionError(
                f"replica {self.name} unreachable: {error}"
            ) from error
        finally:
            connection.close()
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ProtocolError(
                f"replica {self.name} returned undecodable body: {error}"
            ) from error
        if response.status < 400:
            return parsed
        raise self._rejection(response.status, parsed)

    def _rejection(self, status: int, body: Mapping[str, Any]) -> Exception:
        """Rebuild the standby's typed rejection from its JSON body."""
        kind = body.get("error_kind")
        if kind == "fenced":
            return FencedEpochError(body.get("observed", 0), body.get("required", 0))
        if kind == "gap":
            return ReplicaGapError(body.get("expected", 0), body.get("got", 0))
        if kind == "diverged":
            return ReplicaDivergenceError(
                body.get("sequence", 0), body.get("reason", "")
            )
        if kind == "not_primary":
            return NotPrimaryError(body.get("role", "unknown"), body.get("reason", ""))
        if kind == "bad_frame":
            return ParameterError(
                f"replica {self.name} rejected frame: {body.get('error', status)}"
            )
        if status in (429, 503):
            # Overload / quorum trouble downstream: transient, retryable.
            return ConnectionError(
                f"replica {self.name} unavailable (HTTP {status}): "
                f"{body.get('error', '')}"
            )
        return ProtocolError(
            f"replica {self.name} rejected replication with HTTP {status}: "
            f"{body.get('error', '')}"
        )


class ReplicatedService(AggregationService):
    """An :class:`AggregationService` that ships its WAL to standbys.

    A **primary** accepts client ingest and streams every appended
    record to its :class:`ReplicaLink`\\ s (``ack_mode="quorum"`` holds
    the client ack until a majority of standbys confirmed;
    ``"async"`` ships best-effort and lets gap catch-up heal stragglers).
    A **standby** rejects client writes with a typed 409 and accepts
    frames via :meth:`apply_replication` until :meth:`promote` flips it.
    With no links configured a primary degrades to exactly the standalone
    service (quorum of zero).
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        role: str = "primary",
        replicas: Sequence[ReplicaLink] = (),
        ack_mode: str = "quorum",
    ) -> None:
        if role not in ROLES:
            raise ParameterError(f"role must be one of {ROLES}, got {role!r}")
        if ack_mode not in ACK_MODES:
            raise ParameterError(
                f"ack_mode must be one of {ACK_MODES}, got {ack_mode!r}"
            )
        super().__init__(config)
        self._role = role
        self.ack_mode = ack_mode
        self.replicas: List[ReplicaLink] = list(replicas)
        self._cursors: Dict[int, int] = {}  # link index -> next sequence to ship
        self._fenced_by: Optional[int] = None  # epoch that superseded this node

    # ------------------------------------------------------------------
    # Role / fencing
    # ------------------------------------------------------------------
    @property
    def role(self) -> str:
        """``primary`` / ``standby``, or ``fenced`` once superseded."""
        if self._fenced_by is not None:
            return "fenced"
        return self._role

    @property
    def quorum(self) -> int:
        """Standby acks needed before a quorum-mode client ack.

        ``(N + 1) // 2`` of ``N`` standbys — together with the primary's
        own WAL append that is a strict majority of the ``N + 1``-node
        cluster, so two disjoint quorums always share a node and a
        promoted epoch cannot be unknowingly forked.  Zero links means
        quorum zero: a lone primary is the standalone service.
        """
        return (len(self.replicas) + 1) // 2 if self.replicas else 0

    def _check_writable(self) -> None:
        if self._fenced_by is not None:
            raise FencedEpochError(self.wal.epoch, self._fenced_by)
        if self._role != "primary":
            raise NotPrimaryError(
                self._role, "client writes go to the primary; this node replicates"
            )

    def _fence(self, required: int) -> None:
        """Record that epoch ``required`` superseded us; stop accepting."""
        if self._fenced_by is None or required > self._fenced_by:
            self._fenced_by = int(required)
            logger.warning(
                "self-fenced: local epoch %d superseded by %d; rejecting writes",
                self.wal.epoch,
                required,
            )

    def promote(self) -> dict:
        """Make this node the primary under a freshly bumped epoch.

        The new epoch strictly exceeds both the local epoch and any
        epoch this node was fenced by, and it is fsynced into the WAL
        header *before* the role flips — a crash mid-promotion leaves
        either the old standby or a fully fenced-forward primary, never
        a primary running under a stale epoch.  Idempotent on a healthy
        primary.
        """
        self._require_started()
        fault_point(
            "service.promote", epoch=int(self.wal.epoch), role=str(self._role)
        )
        if self._role == "primary" and self._fenced_by is None:
            return {
                "role": "primary",
                "fencing_epoch": self.wal.epoch,
                "promoted": False,
            }
        new_epoch = max(self.wal.epoch, self._fenced_by or 0) + 1
        self.wal.set_epoch(new_epoch)
        self._fenced_by = None
        self._role = "primary"
        logger.warning("promoted to primary at fencing epoch %d", new_epoch)
        return {"role": "primary", "fencing_epoch": new_epoch, "promoted": True}

    # ------------------------------------------------------------------
    # Primary side: shipping
    # ------------------------------------------------------------------
    def _frame_payload(self, sequence: int) -> dict:
        frame = encode_frame(self._records[sequence])
        return {
            "epoch": int(self.wal.epoch),
            "sequence": int(sequence),
            "frame": base64.b64encode(frame).decode("ascii"),
        }

    def _after_append(self, record: Mapping[str, Any], sequence: int) -> None:
        if self.replicas:
            self._ship_all()

    def _replication_repair(self) -> None:
        if self._role == "primary" and self.replicas:
            self._ship_all()

    def _ship_all(self) -> None:
        """Ship every link to the WAL head; enforce quorum if asked.

        Each link advances independently from its own cursor, so one
        dead standby cannot stall the others.  In ``quorum`` mode a
        round that leaves fewer than :attr:`quorum` links fully caught
        up raises :class:`~repro.errors.ReplicationQuorumError` — the
        batch stays WAL-durable locally and a retried (idempotent)
        submission re-drives this exact method.
        """
        acked = 0
        for index, link in enumerate(self.replicas):
            try:
                self._ship_link(index, link)
            except FencedEpochError as error:
                # The standby runs a newer epoch: we are the zombie.
                self._fence(error.required)
                raise
            except InjectedCrashError:
                raise  # models this process dying mid-send
            except (
                InjectedFaultError,
                ReplicationError,
                ParameterError,
                ProtocolError,
                ConnectionError,
                OSError,
            ) as error:
                logger.warning("replication to %s failed: %s", link.name, error)
            else:
                acked += 1
        if self.ack_mode == "quorum" and acked < self.quorum:
            raise ReplicationQuorumError(acked, self.quorum, len(self.replicas))

    def _ship_link(self, index: int, link: ReplicaLink) -> None:
        """Advance one link's cursor to the WAL head (gap-healing loop)."""
        cursor = self._cursors.get(index, 0)
        rewinds = 0
        while cursor < len(self._records):
            payload = self._frame_payload(cursor)
            spec = fault_point(
                "service.replicate.send",
                sequence=int(cursor),
                replica=str(link.name),
            )
            if spec is not None and spec.kind in ("torn-write", "corrupt"):
                payload = dict(payload, frame=self._damage(payload["frame"], spec.kind))
            try:
                link.replicate(payload)
            except ReplicaGapError as error:
                if error.expected > len(self._records):
                    # The standby claims records past our WAL head: its
                    # history forked ahead of ours.  Counting the link
                    # as caught up would quorum-ack writes nobody
                    # shares; surface the fork instead.
                    raise ReplicaDivergenceError(
                        len(self._records),
                        f"standby {link.name} expects sequence "
                        f"{error.expected} but this primary's WAL ends "
                        f"at {len(self._records)}",
                    ) from error
                # The standby told us where it actually is; trust it —
                # backwards (it lost frames) or forwards (it already has
                # some) — but refuse to loop on a non-advancing answer.
                if error.expected == cursor or rewinds >= 2:
                    raise
                rewinds += 1
                cursor = max(0, int(error.expected))
                continue
            cursor += 1
            self._cursors[index] = cursor

    @staticmethod
    def _damage(frame_b64: str, kind: str) -> str:
        """Apply an injected in-transit tear/bit-flip to a frame."""
        raw = base64.b64decode(frame_b64)
        if kind == "torn-write":
            raw = raw[: max(1, len(raw) // 2)]
        else:
            flip = len(raw) // 2
            raw = raw[:flip] + bytes([raw[flip] ^ 0xFF]) + raw[flip + 1 :]
        return base64.b64encode(raw).decode("ascii")

    # ------------------------------------------------------------------
    # Standby side: applying
    # ------------------------------------------------------------------
    def apply_replication(self, payload: Mapping[str, Any]) -> dict:
        """Apply one shipped frame; the standby half of the protocol.

        Validation order is deliberate: fencing first (a stale sender
        must learn it is a zombie even when its frame is damaged or
        out of order), then frame integrity (crc inside the frame — a
        torn shipment is rejected *before* any state changes), then
        sequencing.  The apply path is byte-for-byte the ingest path:
        ``wal.append`` of the identical frame, the same derived fold
        seed, the same checkpoint cadence — which is the whole theorem.
        """
        self._require_started()
        try:
            epoch = int(payload["epoch"])
            sequence = int(payload["sequence"])
            frame = base64.b64decode(str(payload["frame"]), validate=True)
        except (KeyError, TypeError, ValueError, binascii.Error) as error:
            raise ParameterError(
                f"malformed replication payload: {error}"
            ) from error
        if epoch < self.wal.epoch:
            raise FencedEpochError(epoch, self.wal.epoch)
        spec = fault_point(
            "service.replicate.apply", sequence=sequence, epoch=epoch
        )
        if spec is not None and spec.kind in ("torn-write", "corrupt"):
            frame = base64.b64decode(self._damage(payload["frame"], spec.kind))
        record = decode_frame(frame)  # crc-validated; ParameterError on damage
        if epoch > self.wal.epoch:
            # A newer primary speaks: adopt its epoch (fsynced into the
            # WAL header) and, if we thought we led, stand down.
            self.wal.set_epoch(epoch)
            if self._role == "primary":
                logger.warning(
                    "demoted: epoch %d supersedes this primary", epoch
                )
                self._role = "standby"
            self._fenced_by = None
        elif self._role == "primary" and self._fenced_by is None:
            raise NotPrimaryError(
                "primary",
                f"two primaries share fencing epoch {epoch}; promote one "
                f"to fence the other",
            )
        expected = self._folded
        if sequence < expected:
            if encode_frame(self._records[sequence]) == frame:
                return {
                    "applied": False,
                    "duplicate": True,
                    "sequence": sequence,
                    "wal_sequence": self._folded,
                    "epoch": self.wal.epoch,
                }
            # Same sequence, different bytes: our un-replicated suffix
            # lost a failover race.  The sender already passed the
            # fencing check, so its history is authoritative — drop the
            # fork and fall through to apply its frame at the new head.
            logger.warning(
                "divergent record at sequence %d (epoch %d): truncating "
                "%d forked local record(s) to re-sync with the primary",
                sequence,
                self.wal.epoch,
                expected - sequence,
            )
            self._rewind_to(sequence)
            expected = self._folded
        if sequence > expected:
            raise ReplicaGapError(expected, sequence)
        applied = self.wal.append(record)
        self._folded = applied + 1
        self._count_tenant(record)
        self._records.append(dict(record))
        self._remember_ack(record, applied)
        self._retry.call(
            lambda: self._fold(record, applied),
            operation=f"service.replicate.apply[{applied}]",
        )
        if (applied + 1) % self.config.checkpoint_interval == 0:
            self.flush()
        return {
            "applied": True,
            "sequence": applied,
            "wal_sequence": self._folded,
            "epoch": self.wal.epoch,
        }

    def _rewind_to(self, sequence: int) -> None:
        """Drop every record at/after ``sequence``; rebuild by re-fold.

        The WAL is truncated first (fsynced) so a crash mid-rebuild
        recovers the same shortened history; shard accumulators, tenant
        counters, the dedup ledger and the record list are then rebuilt
        from the kept prefix — a fold is a pure function of ``(record,
        sequence)``, so the rebuilt state is byte-identical to a node
        that never held the fork.  Checkpoints are reflushed at the end
        so no on-disk cursor outlives the truncation, and a published
        snapshot that included dropped records is withdrawn.
        """
        keep = [dict(record) for record in self._records[:sequence]]
        self.wal.truncate_to(sequence)
        self._shards = [
            self._coordinator.spawn_shard()
            for _ in range(self.config.num_shards)
        ]
        self._reset_temporal()
        self.tenants = {}
        self._dedup.clear()
        self._records = []
        self._folded = 0
        for position, record in enumerate(keep):
            self._count_tenant(record)
            self._records.append(record)
            self._remember_ack(record, position)
            self._retry.call(
                lambda record=record, position=position: self._fold(
                    record, position
                ),
                operation=f"service.rewind[{position}]",
            )
        self._folded = len(keep)
        if self._snapshot is not None and self._snapshot.wal_records > sequence:
            self._snapshot = None
        self.flush()

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> dict:
        summary = super().status()
        summary["ack_mode"] = self.ack_mode
        summary["quorum"] = self.quorum
        summary["fenced_by"] = self._fenced_by
        summary["replicas"] = [
            {"name": link.name, "cursor": self._cursors.get(index, 0)}
            for index, link in enumerate(self.replicas)
        ]
        return summary
