"""Synthetic ego-network edge-endpoint workloads (Twitter / Facebook).

The paper's last two datasets are SNAP ego networks joined on node ids —
the value stream is the multiset of edge endpoints, whose frequency of a
node equals its degree.  Offline we substitute a Chung-Lu-style generator:
node ``i`` receives an expected-degree weight

.. math::  w_i \\propto (i + 1)^{-1/(\\gamma - 1)},

the standard construction whose realised degree sequence follows a power
law with exponent ``gamma`` (``gamma ≈ 2.1`` for Twitter follower graphs,
``≈ 2.5`` for Facebook friendship ego networks).  Sampling edge endpoints
i.i.d. proportionally to ``w`` reproduces the endpoint stream of such a
graph — the only aspect of the datasets the join estimators observe.

Presets match the Table II shapes: ``EgoNetworkGenerator.twitter()``
(77,072 nodes) and ``EgoNetworkGenerator.facebook()`` (4,039 nodes).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ParameterError
from ..validation import require_positive_float
from .base import DataGenerator

__all__ = ["EgoNetworkGenerator"]


class EgoNetworkGenerator(DataGenerator):
    """Edge-endpoint population of a power-law ego network."""

    name = "ego-network"

    def __init__(self, domain_size: int, gamma: float = 2.3) -> None:
        super().__init__(domain_size)
        self.gamma = require_positive_float("gamma", gamma)
        if self.gamma <= 1.0:
            raise ParameterError(f"gamma must exceed 1, got {self.gamma}")
        self._pmf: Optional[np.ndarray] = None

    def pmf(self) -> np.ndarray:
        """Chung-Lu expected-degree weights, normalised."""
        if self._pmf is None:
            ids = np.arange(1, self.domain_size + 1, dtype=np.float64)
            weights = ids ** (-1.0 / (self.gamma - 1.0))
            self._pmf = weights / weights.sum()
        return self._pmf

    # ------------------------------------------------------------------
    # Table II presets
    # ------------------------------------------------------------------
    @classmethod
    def twitter(cls) -> "EgoNetworkGenerator":
        """SNAP ego-Twitter shape: 77,072 nodes, follower-graph skew."""
        gen = cls(77_072, gamma=2.1)
        gen.name = "twitter"
        return gen

    @classmethod
    def facebook(cls) -> "EgoNetworkGenerator":
        """SNAP ego-Facebook shape: 4,039 nodes, friendship-graph skew."""
        gen = cls(4_039, gamma=2.5)
        gen.name = "facebook"
        return gen
