"""Finite-domain Zipf distributions.

The paper's primary synthetic workload: item at popularity rank ``x`` has
probability

.. math::  f(x \\mid \\alpha, N) = \\frac{1/x^{\\alpha}}{\\sum_{n=1}^{N} 1/n^{\\alpha}},

with skewness parameter ``alpha`` (Fig. 12 sweeps ``alpha`` from 1.1 to
1.9; other figures use 1.1, 1.5 or 2.0).  By default value id equals
popularity rank minus one; pass ``shuffle_seed`` to permute ids so that
popular items are scattered across the domain (hash functions make the
estimators invariant to this, which a test asserts).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rng import ensure_rng
from ..validation import require_positive_float
from .base import DataGenerator

__all__ = ["ZipfGenerator"]


class ZipfGenerator(DataGenerator):
    """Zipf(``alpha``) population over ``[0, domain_size)``."""

    name = "zipf"

    def __init__(
        self,
        domain_size: int,
        alpha: float = 1.1,
        *,
        shuffle_seed: Optional[int] = None,
    ) -> None:
        super().__init__(domain_size)
        self.alpha = require_positive_float("alpha", alpha)
        self.shuffle_seed = shuffle_seed
        self.name = f"zipf(a={self.alpha:g})"
        self._pmf: Optional[np.ndarray] = None

    def pmf(self) -> np.ndarray:
        """``p(rank) ∝ rank^-alpha``, optionally permuted over value ids."""
        if self._pmf is None:
            ranks = np.arange(1, self.domain_size + 1, dtype=np.float64)
            weights = ranks**-self.alpha
            pmf = weights / weights.sum()
            if self.shuffle_seed is not None:
                perm = ensure_rng(self.shuffle_seed).permutation(self.domain_size)
                pmf = pmf[perm]
            self._pmf = pmf
        return self._pmf
