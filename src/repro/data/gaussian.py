"""Discretised Gaussian distributions.

The paper's second synthetic workload: join values drawn from a normal
density

.. math::  f(x) = \\frac{1}{\\sigma\\sqrt{2\\pi}}
                  e^{-\\frac{(x-\\mu)^2}{2\\sigma^2}},

discretised onto the integer domain ``[0, domain_size)`` (Table II:
domain 75,949).  Compared to Zipf this is a low-skew workload — many
moderately frequent values, no extreme heavy hitters — which is exactly
the regime where frequency separation (LDPJoinSketch+) helps least.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..validation import require_positive_float
from .base import DataGenerator

__all__ = ["GaussianGenerator"]


class GaussianGenerator(DataGenerator):
    """Discretised N(``mean``, ``std``^2) population over ``[0, domain_size)``."""

    name = "gaussian"

    def __init__(
        self,
        domain_size: int,
        mean: Optional[float] = None,
        std: Optional[float] = None,
    ) -> None:
        super().__init__(domain_size)
        self.mean = float(mean) if mean is not None else self.domain_size / 2.0
        self.std = require_positive_float("std", std) if std is not None else self.domain_size / 8.0
        self._pmf: Optional[np.ndarray] = None

    def pmf(self) -> np.ndarray:
        """Normal density evaluated at the integer grid, renormalised."""
        if self._pmf is None:
            grid = np.arange(self.domain_size, dtype=np.float64)
            z = (grid - self.mean) / self.std
            weights = np.exp(-0.5 * z * z)
            total = weights.sum()
            if total <= 0:  # extremely narrow std: all mass on nearest cell
                weights = np.zeros(self.domain_size)
                weights[int(np.clip(round(self.mean), 0, self.domain_size - 1))] = 1.0
                total = 1.0
            self._pmf = weights / total
        return self._pmf
