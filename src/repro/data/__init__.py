"""Synthetic workload generators matching the paper's datasets.

The paper evaluates on Zipf and Gaussian synthetic data plus four
real-world datasets (TPC-DS store sales, MovieLens, Twitter and Facebook
ego networks).  The real datasets are downloads we do not have offline, so
each is substituted by a generator reproducing the behaviour-relevant
properties — the join-attribute *marginal distribution* (skew) and the
domain size of Table II — as documented in DESIGN.md.  All generators are
seeded and scale-invariant: ``sample(size, rng)`` draws any number of
values from the same population distribution.
"""

from .base import DataGenerator, JoinInstance, sample_from_pmf
from .zipf import ZipfGenerator
from .gaussian import GaussianGenerator
from .tpcds import TPCDSStoreSalesGenerator
from .movielens import MovieLensGenerator
from .ego import EgoNetworkGenerator
from .registry import DATASETS, DatasetSpec, make_join_instance, paper_dataset_table

__all__ = [
    "DataGenerator",
    "JoinInstance",
    "sample_from_pmf",
    "ZipfGenerator",
    "GaussianGenerator",
    "TPCDSStoreSalesGenerator",
    "MovieLensGenerator",
    "EgoNetworkGenerator",
    "DATASETS",
    "DatasetSpec",
    "make_join_instance",
    "paper_dataset_table",
]
