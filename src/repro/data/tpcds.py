"""Synthetic TPC-DS ``store_sales`` join-attribute workload.

The paper extracts the store-sales fact table of TPC-DS (Table II: domain
18,000 — the item dimension at their scale factor — and 5.76M rows) and
joins on the item key.  Offline we substitute a generator reproducing the
relevant structure of TPC-DS item sales:

* item popularity in TPC-DS is piecewise-skewed (a moderate head of
  fast-selling items over a wide body), which we model as a mixture of a
  lognormal popularity head and a uniform body;
* the mixture weights/shape below were chosen so the frequency histogram
  has the moderate skew of store-sales item keys — far flatter than
  Zipf(1.5), far from uniform.

DESIGN.md records this substitution; the estimators only see the marginal
distribution of the join key, so this preserves the experiment behaviour.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rng import ensure_rng
from ..validation import require_probability, require_positive_float
from .base import DataGenerator

__all__ = ["TPCDSStoreSalesGenerator"]


class TPCDSStoreSalesGenerator(DataGenerator):
    """Item-key population mimicking TPC-DS ``store_sales`` skew."""

    name = "tpcds"

    def __init__(
        self,
        domain_size: int = 18_000,
        *,
        head_fraction: float = 0.3,
        lognormal_sigma: float = 1.2,
        weights_seed: int = 20240511,
    ) -> None:
        super().__init__(domain_size)
        self.head_fraction = require_probability("head_fraction", head_fraction)
        self.lognormal_sigma = require_positive_float("lognormal_sigma", lognormal_sigma)
        self.weights_seed = int(weights_seed)
        self._pmf: Optional[np.ndarray] = None

    def pmf(self) -> np.ndarray:
        """Lognormal head + uniform body mixture (fixed by ``weights_seed``)."""
        if self._pmf is None:
            rng = ensure_rng(self.weights_seed)
            # Popularity head: lognormal multipliers on every item.
            head = rng.lognormal(mean=0.0, sigma=self.lognormal_sigma, size=self.domain_size)
            head /= head.sum()
            body = np.full(self.domain_size, 1.0 / self.domain_size)
            pmf = self.head_fraction * head + (1.0 - self.head_fraction) * body
            self._pmf = pmf / pmf.sum()
        return self._pmf
