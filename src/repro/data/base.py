"""Data-generation substrate: generator interface and join instances.

Every dataset in the experiments reduces to a *population distribution*
over an integer domain; a :class:`DataGenerator` exposes that distribution
(``pmf``) and draws i.i.d. value streams from it (``sample``).  A
:class:`JoinInstance` bundles the two streams of a join query together
with the exact ground truth the estimators are scored against.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import DataGenerationError
from ..join import FrequencyVector
from ..rng import RandomState, ensure_rng
from ..validation import require_positive_int

__all__ = ["sample_from_pmf", "DataGenerator", "JoinInstance"]


def sample_from_pmf(pmf: np.ndarray, size: int, rng: RandomState = None) -> np.ndarray:
    """Draw ``size`` i.i.d. values from a probability mass function.

    Inverse-CDF sampling via ``searchsorted`` — considerably faster than
    ``Generator.choice`` with an explicit ``p`` for the large domains used
    here, and exact up to float64 cumulative rounding.
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    if pmf.ndim != 1 or pmf.size == 0:
        raise DataGenerationError(f"pmf must be a non-empty 1-D array, got shape {pmf.shape}")
    if np.any(pmf < 0) or not np.isfinite(pmf).all():
        raise DataGenerationError("pmf must be finite and non-negative")
    total = pmf.sum()
    if total <= 0:
        raise DataGenerationError("pmf must have positive mass")
    size = require_positive_int("size", size, minimum=0) if size else 0
    if size == 0:
        return np.zeros(0, dtype=np.int64)
    cdf = np.cumsum(pmf / total)
    cdf[-1] = 1.0
    generator = ensure_rng(rng)
    u = generator.random(size)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


class DataGenerator(abc.ABC):
    """A seeded population distribution over ``[0, domain_size)``."""

    #: Human-readable generator name.
    name: str = "abstract"

    def __init__(self, domain_size: int) -> None:
        self.domain_size = require_positive_int("domain_size", domain_size)

    @abc.abstractmethod
    def pmf(self) -> np.ndarray:
        """The population probability mass function (length ``domain_size``)."""

    def sample(self, size: int, rng: RandomState = None) -> np.ndarray:
        """Draw ``size`` i.i.d. values from the population."""
        return sample_from_pmf(self.pmf(), size, rng)

    def make_join_instance(
        self,
        size: int,
        rng: RandomState = None,
        *,
        size_b: Optional[int] = None,
        mode: str = "independent",
    ) -> "JoinInstance":
        """Draw the two streams of a join query from this population.

        ``mode="independent"`` draws both streams i.i.d. (the paper's
        synthetic setting: the generated data *are* the join-attribute
        values of both tables); ``mode="split"`` draws one stream of
        ``size + size_b`` values and splits it, giving identical empirical
        distributions in the two tables.
        """
        generator = ensure_rng(rng)
        size_b = size if size_b is None else size_b
        if mode == "independent":
            values_a = self.sample(size, generator)
            values_b = self.sample(size_b, generator)
        elif mode == "split":
            combined = self.sample(size + size_b, generator)
            values_a, values_b = combined[:size], combined[size:]
        else:
            raise DataGenerationError(f"unknown join-pair mode {mode!r}")
        return JoinInstance(
            name=self.name,
            values_a=values_a,
            values_b=values_b,
            domain_size=self.domain_size,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(domain_size={self.domain_size})"


@dataclass
class JoinInstance:
    """A concrete two-way join workload with exact ground truth."""

    name: str
    values_a: np.ndarray
    values_b: np.ndarray
    domain_size: int
    _freq_a: Optional[FrequencyVector] = field(default=None, repr=False)
    _freq_b: Optional[FrequencyVector] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.values_a = np.ascontiguousarray(self.values_a, dtype=np.int64)
        self.values_b = np.ascontiguousarray(self.values_b, dtype=np.int64)
        require_positive_int("domain_size", self.domain_size)

    @property
    def frequency_a(self) -> FrequencyVector:
        """Exact frequency vector of stream A (cached)."""
        if self._freq_a is None:
            self._freq_a = FrequencyVector.from_values(self.values_a, self.domain_size)
        return self._freq_a

    @property
    def frequency_b(self) -> FrequencyVector:
        """Exact frequency vector of stream B (cached)."""
        if self._freq_b is None:
            self._freq_b = FrequencyVector.from_values(self.values_b, self.domain_size)
        return self._freq_b

    @property
    def true_join_size(self) -> int:
        """Exact join size (ground truth)."""
        return self.frequency_a.inner(self.frequency_b)

    @property
    def size_a(self) -> int:
        """Number of stream-A users."""
        return int(self.values_a.size)

    @property
    def size_b(self) -> int:
        """Number of stream-B users."""
        return int(self.values_b.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"JoinInstance(name={self.name!r}, sizes=({self.size_a}, {self.size_b}), "
            f"domain_size={self.domain_size})"
        )
