"""The dataset registry: one entry per Table II dataset.

Maps the paper's dataset names to generator factories with the Table II
domain sizes and stream lengths.  Experiments request scaled-down
instances via :func:`make_join_instance`: ``scale=0.005`` of the paper's
40M-row Zipf stream gives a 200k-row laptop workload with the same
population distribution — all estimators here are linear in the stream,
so error *ratios* between methods are preserved (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import DataGenerationError
from ..rng import RandomState
from ..validation import require_positive_float
from .base import DataGenerator, JoinInstance
from .ego import EgoNetworkGenerator
from .gaussian import GaussianGenerator
from .movielens import MovieLensGenerator
from .tpcds import TPCDSStoreSalesGenerator
from .zipf import ZipfGenerator

__all__ = ["DatasetSpec", "DATASETS", "make_join_instance", "paper_dataset_table"]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: generator factory plus the paper's Table II shape."""

    name: str
    factory: Callable[[], DataGenerator]
    paper_domain: str
    paper_size: int

    def generator(self) -> DataGenerator:
        """Instantiate the population generator."""
        return self.factory()


#: The paper's evaluation datasets (Table II), keyed by canonical name.
#: ``zipf`` entries expose the skew in the name, matching figure captions.
DATASETS: Dict[str, DatasetSpec] = {
    "zipf-1.1": DatasetSpec(
        "zipf-1.1", lambda: ZipfGenerator(2**18, alpha=1.1), "4,377-2,816,390", 40_000_000
    ),
    "zipf-1.3": DatasetSpec(
        "zipf-1.3", lambda: ZipfGenerator(2**18, alpha=1.3), "4,377-2,816,390", 40_000_000
    ),
    "zipf-1.5": DatasetSpec(
        "zipf-1.5", lambda: ZipfGenerator(2**18, alpha=1.5), "4,377-2,816,390", 40_000_000
    ),
    "zipf-1.7": DatasetSpec(
        "zipf-1.7", lambda: ZipfGenerator(2**18, alpha=1.7), "4,377-2,816,390", 40_000_000
    ),
    "zipf-1.9": DatasetSpec(
        "zipf-1.9", lambda: ZipfGenerator(2**18, alpha=1.9), "4,377-2,816,390", 40_000_000
    ),
    "zipf-2.0": DatasetSpec(
        "zipf-2.0", lambda: ZipfGenerator(2**18, alpha=2.0), "4,377-2,816,390", 40_000_000
    ),
    "gaussian": DatasetSpec(
        "gaussian", lambda: GaussianGenerator(75_949), "75,949", 40_000_000
    ),
    "movielens": DatasetSpec(
        "movielens", lambda: MovieLensGenerator(83_239), "83,239", 67_664_324
    ),
    "tpcds": DatasetSpec(
        "tpcds", lambda: TPCDSStoreSalesGenerator(18_000), "18,000", 5_760_808
    ),
    "twitter": DatasetSpec(
        "twitter", EgoNetworkGenerator.twitter, "77,072", 4_841_532
    ),
    "facebook": DatasetSpec(
        "facebook", EgoNetworkGenerator.facebook, "4,039", 352_936
    ),
}


def make_join_instance(
    name: str,
    *,
    scale: float = 0.005,
    size: Optional[int] = None,
    seed: RandomState = None,
    mode: str = "independent",
) -> JoinInstance:
    """Build a (scaled) join workload for a registered dataset.

    Parameters
    ----------
    name:
        Registry key (``"zipf-1.5"``, ``"movielens"``, ...).
    scale:
        Fraction of the paper's stream length to draw (ignored when
        ``size`` is given).
    size:
        Explicit per-stream length override.
    seed:
        Randomness for the draw.
    mode:
        ``"independent"`` or ``"split"`` (see
        :meth:`DataGenerator.make_join_instance`).
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise DataGenerationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    if size is None:
        scale = require_positive_float("scale", scale)
        size = max(100, int(round(spec.paper_size * scale)))
    generator = spec.generator()
    instance = generator.make_join_instance(size, seed, mode=mode)
    instance.name = spec.name
    return instance


def paper_dataset_table(names: Optional[List[str]] = None) -> List[Tuple[str, str, int]]:
    """Rows of Table II: (dataset, paper domain, paper size)."""
    keys = names if names is not None else sorted(DATASETS)
    return [(DATASETS[k].name, DATASETS[k].paper_domain, DATASETS[k].paper_size) for k in keys]
