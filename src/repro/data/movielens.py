"""Synthetic MovieLens ratings join-attribute workload.

The paper joins MovieLens ratings on the movie id (Table II: domain
83,239 movies, 67.7M rating rows).  Offline we substitute a generator
reproducing the well-documented shape of MovieLens movie popularity: a
Zipf-Mandelbrot law

.. math::  p(\\text{rank}) \\propto \\frac{1}{(\\text{rank} + q)^{s}},

whose flattened head (the ``q`` offset) matches the fact that the most
rated movies have comparable rating counts while the tail decays like a
power law.  ``s ≈ 0.9`` and ``q ≈ 30`` track published fits of the
MovieLens-25M popularity curve.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..validation import require_positive_float
from .base import DataGenerator

__all__ = ["MovieLensGenerator"]


class MovieLensGenerator(DataGenerator):
    """Movie-id population with a Zipf-Mandelbrot popularity curve."""

    name = "movielens"

    def __init__(
        self,
        domain_size: int = 83_239,
        *,
        exponent: float = 0.9,
        offset: float = 30.0,
    ) -> None:
        super().__init__(domain_size)
        self.exponent = require_positive_float("exponent", exponent)
        self.offset = require_positive_float("offset", offset, allow_zero=True)
        self._pmf: Optional[np.ndarray] = None

    def pmf(self) -> np.ndarray:
        """``p(rank) ∝ (rank + offset)^-exponent``."""
        if self._pmf is None:
            ranks = np.arange(1, self.domain_size + 1, dtype=np.float64)
            weights = (ranks + self.offset) ** -self.exponent
            self._pmf = weights / weights.sum()
        return self._pmf
