"""Bounded retry with deterministic exponential backoff.

:class:`RetryPolicy` wraps an operation in a fixed attempt budget with
exponential backoff and *seeded* jitter: the jitter stream comes from
:func:`repro.rng.ensure_rng`, never from wall clock or a global RNG, so a
retried run sleeps the same schedule every time (RPR101 compliant) and
test runs can set ``base_delay=0`` to retry instantly.

Every failed attempt is recorded as an :class:`AttemptRecord`; when the
budget runs out the policy raises
:class:`~repro.errors.RetryExhaustedError` carrying the full ledger with
the final error chained as ``__cause__`` — the caller sees *every*
failure, not just the last.

Determinism under retry is a contract shared with the call site: an
operation wrapped by :meth:`RetryPolicy.call` must be idempotent, i.e.
re-running it after a partial failure must produce the same result.
Call sites that consume live RNG streams restore the generator state via
the ``reset`` callback before each re-attempt (the distributed
collectors snapshot ``bit_generator.state`` for exactly this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple, Type

import numpy as np

from ..errors import (
    InjectedCrashError,
    InjectedFaultError,
    ParameterError,
    RetryExhaustedError,
)
from ..rng import RandomState, ensure_rng
from .faults import attempt_scope

__all__ = ["AttemptRecord", "RetryPolicy", "DEFAULT_RETRYABLE"]

#: Errors a policy retries by default: injected faults/crashes (chaos
#: testing), plus the runtime errors a dying worker surfaces as.  Typed
#: configuration errors (ParameterError and friends) are never retried —
#: re-running a misconfigured operation cannot fix it.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    InjectedFaultError,
    InjectedCrashError,
    ConnectionError,
    TimeoutError,
    OSError,
)


@dataclass(frozen=True)
class AttemptRecord:
    """One failed attempt in a retry ledger."""

    attempt: int
    operation: str
    error_type: str
    message: str
    delay: float
    elapsed: float

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "operation": self.operation,
            "error_type": self.error_type,
            "message": self.message,
            "delay": self.delay,
            "elapsed": self.elapsed,
        }


class RetryPolicy:
    """Bounded attempts, exponential backoff, deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total attempt budget (1 = no retries).
    base_delay:
        Backoff before the second attempt, seconds.  Attempt ``i``
        (0-based) waits ``base_delay * backoff**(i-1)``, capped at
        ``max_delay``.  The default is 0 — deterministic tests and the
        in-process collectors gain nothing from sleeping.
    backoff:
        Multiplier between consecutive delays.
    jitter:
        Fraction of each delay randomised away: the actual sleep is
        ``delay * (1 - jitter * u)`` with ``u ~ U[0, 1)`` drawn from the
        policy's seeded stream.  0 disables jitter.
    max_delay:
        Upper bound on any single sleep, seconds.
    deadline:
        Optional per-attempt budget, seconds.  An attempt that *fails*
        after its deadline has passed is not retried (the work already
        consumed more than its share); a slow success is returned as
        usual — the policy cannot preempt the callable.
    retryable:
        Exception types worth retrying; anything else propagates
        immediately.
    seed:
        Seed for the jitter stream (only consulted when ``jitter > 0``
        and delays are nonzero).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        base_delay: float = 0.0,
        backoff: float = 2.0,
        jitter: float = 0.5,
        max_delay: float = 30.0,
        deadline: Optional[float] = None,
        retryable: Sequence[Type[BaseException]] = DEFAULT_RETRYABLE,
        seed: RandomState = 0,
    ) -> None:
        if not isinstance(max_attempts, (int, np.integer)) or max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be a positive int, got {max_attempts!r}"
            )
        if base_delay < 0 or max_delay < 0:
            raise ParameterError("delays must be >= 0")
        if backoff < 1.0:
            raise ParameterError(f"backoff must be >= 1, got {backoff!r}")
        if not 0.0 <= jitter <= 1.0:
            raise ParameterError(f"jitter must be in [0, 1], got {jitter!r}")
        if deadline is not None and deadline <= 0:
            raise ParameterError(f"deadline must be positive, got {deadline!r}")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.backoff = float(backoff)
        self.jitter = float(jitter)
        self.max_delay = float(max_delay)
        self.deadline = None if deadline is None else float(deadline)
        self.retryable = tuple(retryable)
        self.seed = seed
        self._rng: Optional[np.random.Generator] = None

    # ------------------------------------------------------------------
    def delay_for(self, attempt: int) -> float:
        """The pre-jitter backoff before ``attempt`` (0-based; 0 → 0.0)."""
        if attempt <= 0 or self.base_delay == 0.0:
            return 0.0
        return min(self.base_delay * self.backoff ** (attempt - 1), self.max_delay)

    def _jittered(self, delay: float) -> float:
        if delay == 0.0 or self.jitter == 0.0:
            return delay
        if self._rng is None:
            self._rng = ensure_rng(self.seed)
        return delay * (1.0 - self.jitter * float(self._rng.random()))

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    # ------------------------------------------------------------------
    def call(
        self,
        fn: Callable[[], Any],
        *,
        operation: str = "operation",
        reset: Optional[Callable[[], None]] = None,
        on_retry: Optional[Callable[[AttemptRecord], None]] = None,
    ) -> Any:
        """Run ``fn`` under the policy and return its result.

        ``reset`` (if given) runs before every attempt *after the
        first* — the hook call sites use to restore RNG snapshots and
        roll back partial state so the re-attempt replays the original
        byte-for-byte.  ``on_retry`` observes each failed attempt's
        :class:`AttemptRecord` (logging, metrics).

        Each attempt body runs inside
        :func:`~repro.reliability.attempt_scope`, so armed fault specs
        see the attempt number and an absorbable schedule stops firing
        while budget remains.
        """
        ledger = []
        for attempt in range(self.max_attempts):
            if attempt > 0:
                time.sleep(self._jittered(self.delay_for(attempt)))
                if reset is not None:
                    reset()
            started = time.monotonic()
            try:
                with attempt_scope(attempt):
                    return fn()
            except BaseException as error:  # noqa: BLE001 - ledger + re-raise
                elapsed = time.monotonic() - started
                record = AttemptRecord(
                    attempt=attempt,
                    operation=operation,
                    error_type=type(error).__name__,
                    message=str(error),
                    delay=self.delay_for(attempt),
                    elapsed=elapsed,
                )
                ledger.append(record)
                if not self.is_retryable(error):
                    raise
                over_deadline = self.deadline is not None and elapsed > self.deadline
                if attempt + 1 >= self.max_attempts or over_deadline:
                    raise RetryExhaustedError(operation, ledger) from error
                if on_retry is not None:
                    on_retry(record)
        raise RetryExhaustedError(operation, ledger)  # pragma: no cover - unreachable

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "backoff": self.backoff,
            "jitter": self.jitter,
            "max_delay": self.max_delay,
            "deadline": self.deadline,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, backoff={self.backoff})"
        )
