"""Deterministic fault injection at named fault points.

Production pipelines fail in boring, reproducible ways — a worker dies,
an ingest batch raises, a checkpoint write tears, a payload arrives with
a flipped bit, a shard responds late.  This module makes every one of
those failures a *plan datum*: a :class:`FaultPlan` is a seeded,
serializable schedule of :class:`FaultSpec` entries, armed process-wide
with :func:`arm` / :func:`injected`, and consulted by lightweight
:func:`fault_point` hooks threaded through the distributed and sweep
tiers (``shard.collect``, ``checkpoint.flush``, ``merge.reduce``,
``sweep.unit``, ...).

Determinism contract:

* With no plan armed, :func:`fault_point` is one global load and a
  ``None`` comparison — cheap enough to live on ingest paths (the CI
  ``chaos`` job enforces < 2% overhead on the n=1M fused ingest).
* A spec fires as a pure function of its *context*, never of wall clock
  or scheduling.  Specs with retry-aware semantics fire while
  ``attempt < times`` (the attempt number is threaded by
  :class:`~repro.reliability.RetryPolicy` through :func:`attempt_scope`),
  so "fail the first two attempts of shard 3's collect" replays
  identically on any machine, any worker count.  Specs at points with no
  attempt concept fall back to a per-spec hit counter (deterministic in
  serial flows; reset by :func:`arm`).
* Random schedules come from :meth:`FaultPlan.random`, which draws only
  from a seeded :mod:`repro.rng` stream — the same plan payload replays
  the same faults, which is what makes ``--fault-plan plan.json`` a
  reproduction recipe for a failure.

Fault kinds:

``error``
    Raise :class:`~repro.errors.InjectedFaultError` at the point.
``crash``
    Raise :class:`~repro.errors.InjectedCrashError` — or, when the plan
    sets ``hard_crashes=True`` *and* the point is marked crashable
    (worker-task entry points), kill the process with ``os._exit`` to
    produce a genuine ``BrokenProcessPool`` upstream.
``latency``
    Sleep ``spec.delay`` seconds, then continue.
``torn-write`` / ``corrupt``
    Do not raise; the spec is *returned* to the call site, which applies
    the damage it models (truncate the bytes being written, flip a byte
    in the payload).  Only sites that can act on corruption look at the
    return value.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence, Tuple, Union

from ..errors import InjectedCrashError, InjectedFaultError, ParameterError
from ..rng import RandomState, ensure_rng

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "fault_point",
    "arm",
    "disarm",
    "injected",
    "active_plan",
    "attempt_scope",
    "current_attempt",
]

#: Everything a spec can inject.
FAULT_KINDS = ("error", "crash", "latency", "torn-write", "corrupt")

#: Kinds that do not raise: the call site applies the damage itself.
_RETURNED_KINDS = frozenset({"torn-write", "corrupt"})

#: Payload marker + version of the serialized plan format.
FAULT_PLAN_FORMAT = "repro/fault-plan"
FAULT_PLAN_VERSION = 1


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: where it fires, what it does, how often.

    Parameters
    ----------
    point:
        Fault-point name the spec listens at (e.g. ``"shard.collect"``).
    kind:
        One of :data:`FAULT_KINDS`.
    times:
        Fire on attempts ``0 .. times-1`` of the matching operation (or,
        at points without an attempt context, on the first ``times``
        hits).  A schedule is *absorbable* by a retry policy exactly when
        every spec's ``times`` is below the policy's attempt budget.
    match:
        Context fields that must equal the call site's (``shard=3``
        fires only at shard 3).  Empty matches everywhere.
    delay:
        Sleep duration for ``latency`` specs, seconds.
    """

    point: str
    kind: str = "error"
    times: int = 1
    match: Mapping[str, Any] = field(default_factory=dict)
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ParameterError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.times, int) or self.times < 1:
            raise ParameterError(f"times must be a positive int, got {self.times!r}")
        if self.delay < 0:
            raise ParameterError(f"delay must be >= 0, got {self.delay!r}")
        object.__setattr__(self, "match", dict(self.match))

    def matches(self, context: Mapping[str, Any]) -> bool:
        """Whether the call site's context satisfies the spec's match."""
        return all(context.get(key) == value for key, value in self.match.items())

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "kind": self.kind,
            "times": self.times,
            "match": dict(self.match),
            "delay": self.delay,
        }

    #: The complete field set of a serialized spec — anything else in a
    #: hand-edited plan is a typo, not a forward-compatible extension.
    _FIELDS = frozenset({"point", "kind", "times", "match", "delay"})

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        """Rebuild a spec, rejecting malformed payloads with typed errors.

        Hand-edited plan JSON is a supported workflow (``--fault-plan``),
        so every field is validated explicitly: unknown fields, unknown
        kinds, non-mapping match filters and non-numeric times/delay all
        raise :class:`~repro.errors.ParameterError` instead of leaking
        whatever ``int()``/``dict()`` happens to throw.
        """
        if not isinstance(payload, Mapping):
            raise ParameterError(
                f"fault spec must be a mapping, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - cls._FIELDS)
        if unknown:
            raise ParameterError(
                f"fault spec has unknown field(s) {unknown}; expected a subset "
                f"of {sorted(cls._FIELDS)}"
            )
        point = payload.get("point")
        if not isinstance(point, str) or not point:
            raise ParameterError(
                f"fault spec 'point' must be a non-empty string, got {point!r}"
            )
        kind = payload.get("kind", "error")
        if not isinstance(kind, str):
            raise ParameterError(
                f"fault spec 'kind' must be one of {FAULT_KINDS}, got {kind!r}"
            )
        times = payload.get("times", 1)
        if isinstance(times, bool) or not isinstance(times, int):
            raise ParameterError(
                f"fault spec 'times' must be a positive int, got {times!r}"
            )
        match = payload.get("match", {})
        if not isinstance(match, Mapping):
            raise ParameterError(
                f"fault spec 'match' must be a mapping of context fields, got "
                f"{type(match).__name__} ({match!r})"
            )
        for key in match:
            if not isinstance(key, str):
                raise ParameterError(
                    f"fault spec 'match' keys must be strings (context field "
                    f"names), got {key!r}"
                )
        delay = payload.get("delay", 0.0)
        if isinstance(delay, bool) or not isinstance(delay, (int, float)):
            raise ParameterError(
                f"fault spec 'delay' must be a number of seconds, got {delay!r}"
            )
        return cls(
            point=point,
            kind=kind,  # unknown kinds rejected by __post_init__
            times=times,
            match=dict(match),
            delay=float(delay),
        )


class FaultPlan:
    """A seeded, serializable schedule of deterministic faults.

    Plans are plain data: :meth:`to_dict` / :meth:`from_dict` round-trip
    through JSON (``save`` / ``load`` for files), so the exact failure
    scenario that broke a run travels in a bug report and replays with
    ``--fault-plan``.  ``hard_crashes=True`` upgrades ``crash`` specs at
    crashable points (pool worker entry) from a raised
    :class:`~repro.errors.InjectedCrashError` to a real ``os._exit`` —
    the only way to manufacture a genuine ``BrokenProcessPool``.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        *,
        name: str = "fault-plan",
        seed: Optional[int] = None,
        hard_crashes: bool = False,
    ) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
            for spec in specs
        )
        self.name = str(name)
        self.seed = None if seed is None else int(seed)
        self.hard_crashes = bool(hard_crashes)
        self._hits = [0] * len(self.specs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: RandomState,
        *,
        points: Sequence[str] = ("shard.collect",),
        num_faults: int = 1,
        num_shards: Optional[int] = None,
        max_times: int = 2,
        kinds: Sequence[str] = ("error", "crash"),
        name: str = "random-fault-plan",
    ) -> "FaultPlan":
        """A deterministic random schedule drawn from a seeded stream.

        The same ``seed`` (plus identical keyword arguments) always
        yields the same plan — the chaos property suite leans on this to
        generate schedules that replay bit-for-bit.  ``num_shards``
        attaches a ``shard=`` match to every spec so schedules target
        specific shards of a K-shard run.
        """
        rng = ensure_rng(seed)
        specs = []
        for _ in range(int(num_faults)):
            point = points[int(rng.integers(len(points)))]
            kind = kinds[int(rng.integers(len(kinds)))]
            times = int(rng.integers(1, max_times + 1))
            match = {}
            if num_shards is not None:
                match["shard"] = int(rng.integers(num_shards))
            specs.append(FaultSpec(point=point, kind=kind, times=times, match=match))
        plan_seed = None if not isinstance(seed, (int,)) else int(seed)
        return cls(specs, name=name, seed=plan_seed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def absorbable_by(self, max_attempts: int) -> bool:
        """Whether every raising spec dies out within ``max_attempts``.

        True means a retry policy with that attempt budget absorbs the
        whole schedule: each fault fires on attempts ``< times`` and the
        policy always has a later attempt left to succeed on.
        """
        return all(
            spec.times < max_attempts
            for spec in self.specs
            if spec.kind in ("error", "crash")
        )

    def reset(self) -> None:
        """Zero the hit counters (called by :func:`arm`)."""
        self._hits = [0] * len(self.specs)

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire(self, point: str, context: Mapping[str, Any]) -> Optional[FaultSpec]:
        """Apply the plan at one fault point.

        Raises for ``error``/``crash`` specs, sleeps for ``latency``,
        and returns the first matching ``torn-write``/``corrupt`` spec
        for the call site to apply (``None`` when nothing matches).
        """
        returned: Optional[FaultSpec] = None
        for index, spec in enumerate(self.specs):
            if spec.point != point or not spec.matches(context):
                continue
            attempt = context.get("attempt")
            if attempt is not None:
                if int(attempt) >= spec.times:
                    continue
            else:
                if self._hits[index] >= spec.times:
                    continue
                self._hits[index] += 1
            if spec.kind == "latency":
                time.sleep(spec.delay)
            elif spec.kind == "error":
                raise InjectedFaultError(point, context)
            elif spec.kind == "crash":
                if self.hard_crashes and context.get("crashable"):
                    os._exit(17)  # a real worker death, not an exception
                raise InjectedCrashError(point, context)
            elif returned is None:
                returned = spec
        return returned

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": FAULT_PLAN_FORMAT,
            "version": FAULT_PLAN_VERSION,
            "name": self.name,
            "seed": self.seed,
            "hard_crashes": self.hard_crashes,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping) or payload.get("format") != FAULT_PLAN_FORMAT:
            raise ParameterError(
                "not a fault-plan payload "
                f"(format={payload.get('format')!r})"
                if isinstance(payload, Mapping)
                else "not a fault-plan payload"
            )
        if payload.get("version") != FAULT_PLAN_VERSION:
            raise ParameterError(
                f"unsupported fault-plan version {payload.get('version')!r}"
            )
        specs = payload.get("specs", [])
        if isinstance(specs, (str, bytes)) or not isinstance(specs, Sequence):
            raise ParameterError(
                f"fault-plan 'specs' must be a list of spec mappings, got "
                f"{type(specs).__name__}"
            )
        seed = payload.get("seed")
        if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
            raise ParameterError(
                f"fault-plan 'seed' must be an int or null, got {seed!r}"
            )
        return cls(
            [FaultSpec.from_dict(entry) for entry in specs],
            name=str(payload.get("name", "fault-plan")),
            seed=seed,
            hard_crashes=bool(payload.get("hard_crashes", False)),
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Load a plan file, with every failure mode a typed error.

        Invalid JSON and malformed payloads (unknown kinds, bad match
        filters, stray fields — common outcomes of hand-editing a plan)
        raise :class:`~repro.errors.ParameterError` naming the file, so
        ``--fault-plan typo.json`` fails with a diagnosis instead of a
        traceback from whatever coercion broke first.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ParameterError(
                f"fault plan {path} is not valid JSON: {error}"
            ) from error
        try:
            return cls.from_dict(payload)
        except ParameterError as error:
            raise ParameterError(f"fault plan {path}: {error}") from error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(name={self.name!r}, specs={len(self.specs)}, "
            f"seed={self.seed}, hard_crashes={self.hard_crashes})"
        )


# ----------------------------------------------------------------------
# Process-wide arming
# ----------------------------------------------------------------------
#: The armed plan (None = every fault point is a cheap no-op).
_ACTIVE: Optional[FaultPlan] = None

#: The retry attempt the current operation is on (set by attempt_scope).
_ATTEMPT: Optional[int] = None


def fault_point(name: str, **context: Any) -> Optional[FaultSpec]:
    """Declare a named fault point; a no-op unless a plan is armed.

    Call sites sprinkle this wherever a production failure could land.
    The return value is a ``torn-write``/``corrupt`` spec for sites that
    can apply payload damage; everyone else ignores it.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    if "attempt" not in context and _ATTEMPT is not None:
        context["attempt"] = _ATTEMPT
    return plan.fire(name, context)


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide (hit counters reset)."""
    global _ACTIVE
    if not isinstance(plan, FaultPlan):
        raise ParameterError(f"arm() takes a FaultPlan, got {type(plan).__name__}")
    plan.reset()
    _ACTIVE = plan
    return plan


def disarm() -> None:
    """Disarm whatever plan is active (fault points become no-ops)."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, or ``None``."""
    return _ACTIVE


@contextmanager
def injected(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Arm ``plan`` for the scope of a with-block (``None`` = no-op)."""
    if plan is None:
        yield None
        return
    global _ACTIVE
    previous = _ACTIVE
    arm(plan)
    try:
        yield plan
    finally:
        _ACTIVE = previous


@contextmanager
def attempt_scope(attempt: int) -> Iterator[None]:
    """Mark the current retry attempt for fault points below this frame.

    :class:`~repro.reliability.RetryPolicy` wraps each attempt in this
    scope, so specs with attempt semantics (``times``) see which attempt
    they are firing on without every call site threading the number.
    """
    global _ATTEMPT
    previous = _ATTEMPT
    _ATTEMPT = int(attempt)
    try:
        yield
    finally:
        _ATTEMPT = previous


def current_attempt() -> Optional[int]:
    """The attempt number of the innermost :func:`attempt_scope`."""
    return _ATTEMPT
