"""Fault tolerance: deterministic fault injection, retry, degradation.

Three pieces, used together by the distributed and sweep tiers:

* :class:`FaultPlan` / :func:`fault_point` — seeded, serializable fault
  schedules fired at named points threaded through the pipeline
  (:mod:`repro.reliability.faults`).
* :class:`RetryPolicy` — bounded attempts with deterministic backoff
  jitter and a typed attempt ledger (:mod:`repro.reliability.retry`).
* Graceful degradation — ``merge_tree(..., degraded=True)`` and
  ``estimate_sharded(..., degraded=True)`` merge surviving shards and
  rescale by the planner's known client coverage, recording
  ``shards_lost`` / ``coverage`` in the result ledger
  (:mod:`repro.distributed`).

The headline contract, property-tested in the chaos suite: for any
fault schedule a retry budget can absorb, the final merged estimate is
byte-identical to the fault-free run.
"""

from ..errors import (
    CheckpointCorruptError,
    InjectedCrashError,
    InjectedFaultError,
    PartialIntegrityError,
    RetryExhaustedError,
    ShardLostError,
    SweepWorkerLostError,
)
from .faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    active_plan,
    arm,
    attempt_scope,
    current_attempt,
    disarm,
    fault_point,
    injected,
)
from .retry import DEFAULT_RETRYABLE, AttemptRecord, RetryPolicy

__all__ = [
    # faults
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "fault_point",
    "arm",
    "disarm",
    "injected",
    "active_plan",
    "attempt_scope",
    "current_attempt",
    # retry
    "RetryPolicy",
    "AttemptRecord",
    "DEFAULT_RETRYABLE",
    # typed errors (re-exported from repro.errors)
    "InjectedFaultError",
    "InjectedCrashError",
    "RetryExhaustedError",
    "ShardLostError",
    "SweepWorkerLostError",
    "CheckpointCorruptError",
    "PartialIntegrityError",
]
