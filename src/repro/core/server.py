"""Server side of LDPJoinSketch — Algorithm 2 (PriSK) of the paper.

The server receives ``(y, j, l)`` triples, accumulates ``k * c_eps * y``
into counter ``[j, l]`` (debiasing both the row sampling and the sign
channel) and finally multiplies the sketch by ``H_m^T`` to undo the
client-side Hadamard transform.  Because ``H_m`` is symmetric, the inverse
step is one fast Walsh--Hadamard transform per row.

:class:`LDPJoinSketch` is the resulting summary.  It supports:

* **join-size estimation** (Eq. 5): ``median_j sum_x MA[j, x] MB[j, x]``
  against a sketch built with the same hash pairs;
* **frequency estimation** (Theorem 7):
  ``f~(d) = mean_j M[j, h_j(d)] xi_j(d)``, which is unbiased;
* **uniform-mass subtraction** (:meth:`shifted`) — removing the expected
  ``|NT| / m`` contribution of non-target values, the server half of the
  LDPJoinSketch+ correction (Theorem 8 / Algorithm 5).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..accumulate import scatter_add_signed_units
from ..errors import IncompatibleSketchError, ParameterError, require_merge_compatible
from ..hashing import HashPairs
from ..serialization import decode_array, encode_array
from ..transform.hadamard import fwht_inplace
from ..validation import as_value_array
from .client import ReportBatch
from .params import SketchParams

__all__ = ["LDPJoinSketch", "build_sketch"]


class LDPJoinSketch:
    """A constructed (post-transform) LDP join sketch.

    Instances are normally produced by :func:`build_sketch`; the
    constructor accepts a pre-computed counter array for internal uses
    (shifting, testing, serialisation).
    """

    __slots__ = ("params", "pairs", "counts", "num_reports")

    def __init__(
        self,
        params: SketchParams,
        pairs: HashPairs,
        counts: Optional[np.ndarray] = None,
        num_reports: int = 0,
    ) -> None:
        if pairs.k != params.k or pairs.m != params.m:
            raise ParameterError(
                f"hash pairs shaped ({pairs.k}, {pairs.m}) do not match params "
                f"({params.k}, {params.m})"
            )
        self.params = params
        self.pairs = pairs
        if counts is None:
            counts = np.zeros((params.k, params.m), dtype=np.float64)
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != (params.k, params.m):
            raise ParameterError(
                f"counts shaped {counts.shape} do not match ({params.k}, {params.m})"
            )
        self.counts = counts
        self.num_reports = int(num_reports)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of rows."""
        return self.params.k

    @property
    def m(self) -> int:
        """Number of columns."""
        return self.params.m

    def memory_bytes(self) -> int:
        """Size of the counter array in bytes (space-cost accounting)."""
        return int(self.counts.nbytes)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def check_compatible(self, other: "LDPJoinSketch") -> None:
        """Raise unless ``other`` shares shape and hash pairs."""
        if not isinstance(other, LDPJoinSketch):
            raise IncompatibleSketchError(
                f"cannot combine LDPJoinSketch with {type(other).__name__}"
            )
        if self.params.k != other.params.k or self.params.m != other.params.m:
            raise IncompatibleSketchError(
                f"shape mismatch: ({self.k}, {self.m}) vs ({other.k}, {other.m})"
            )
        if self.pairs != other.pairs:
            raise IncompatibleSketchError(
                "sketches use different hash pairs; join estimation requires shared pairs"
            )

    def join_size(self, other: "LDPJoinSketch") -> float:
        """Eq. (5): median over rows of the row-wise inner products."""
        self.check_compatible(other)
        per_row = np.einsum("jx,jx->j", self.counts, other.counts)
        return float(np.median(per_row))

    def row_inner_products(self, other: "LDPJoinSketch") -> np.ndarray:
        """The ``k`` individual estimators whose median is Eq. (5)."""
        self.check_compatible(other)
        return np.einsum("jx,jx->j", self.counts, other.counts)

    def join_size_restricted(self, other: "LDPJoinSketch", values: Iterable[int]) -> float:
        """Join size restricted to a value subset (predicate support).

        Answers ``SELECT COUNT(*) ... WHERE A = B AND A IN (values)`` by
        summing the product of Theorem 7 frequency estimates over the
        subset.  Unlike Eq. (5) this accumulates one estimation error per
        listed value, so it suits *selective* predicates; for the full
        domain prefer :meth:`join_size`.
        """
        self.check_compatible(other)
        arr = as_value_array(values)
        return float(np.dot(self.frequencies(arr), other.frequencies(arr)))

    def second_moment(self) -> float:
        """Debiased self-join size (``F2``) estimate.

        Unlike the cross product of two sketches (whose independent noises
        cancel in expectation), the self product accumulates the noise
        energy of every report: each report adds ``m * k * c_eps^2`` to
        ``sum_x M[j, x]^2`` in expectation while its self-pair in the
        signal accounts for ``1``.  Subtracting ``n (m k c_eps^2 - 1)``
        restores an (asymptotically) unbiased ``F2`` estimate, enabling
        private norms/cosine similarity from a single sketch.
        """
        per_row = np.einsum("jx,jx->j", self.counts, self.counts)
        noise_energy = self.num_reports * (
            self.params.m * self.params.k * self.params.c_epsilon**2 - 1.0
        )
        return float(np.median(per_row) - noise_energy)

    def frequency(self, value: int, *, method: str = "mean") -> float:
        """Theorem 7 unbiased point estimate of ``f(value)``."""
        return float(self.frequencies(np.asarray([value], dtype=np.int64), method=method)[0])

    def frequencies(self, values: Iterable[int], *, method: str = "mean") -> np.ndarray:
        """Vectorised Theorem 7 estimates ``mean_j M[j, h_j(d)] xi_j(d)``.

        ``method="mean"`` is the paper's unbiased estimator.
        ``method="median"`` is the Count-Sketch read-out of the same
        sketch: slightly biased but robust to a single heavy hash
        collision, which matters when *selecting* frequent items (one
        colliding heavy value swings the mean of k rows by ``f_heavy / k``,
        far above any useful threshold, but leaves the median untouched).
        """
        if method not in ("mean", "median"):
            raise ParameterError(f"method must be 'mean' or 'median', got {method!r}")
        arr = as_value_array(values)
        if arr.size == 0:
            return np.zeros(0, dtype=np.float64)
        buckets = self.pairs.bucket_all(arr)      # (k, n)
        signs = self.pairs.sign_all(arr)          # (k, n)
        rows = np.arange(self.k, dtype=np.int64)[:, None]
        picked = self.counts[rows, buckets] * signs
        if method == "median":
            return np.median(picked, axis=0)
        return np.mean(picked, axis=0)

    def shifted(self, per_cell_mass: float) -> "LDPJoinSketch":
        """A copy with ``per_cell_mass`` subtracted from every counter.

        Implements lines 6-7 / 10-11 of Algorithm 5: the expected
        contribution of ``|NT|`` non-target FAP reports is ``|NT| / m`` per
        counter (Theorem 8), so passing ``per_cell_mass = |NT| / m``
        removes it.
        """
        return LDPJoinSketch(
            self.params,
            self.pairs,
            self.counts - float(per_cell_mass),
            self.num_reports,
        )

    # ------------------------------------------------------------------
    # Linearity
    # ------------------------------------------------------------------
    def check_mergeable(self, other: "LDPJoinSketch") -> None:
        """Raise :class:`IncompatibleSketchError` unless ``other`` can be
        merged into this sketch.

        Merging requires everything :meth:`check_compatible` checks (shape
        and shared hash pairs) *plus* identical :class:`SketchParams` —
        sketches built under different privacy budgets carry different
        debiasing scales, so their sum estimates nothing.  Shared by
        :meth:`merge` and :meth:`repro.api.JoinSession.merge`; the
        parameter comparison goes through the one
        :func:`repro.errors.require_merge_compatible` gate every merge
        path uses.
        """
        self.check_compatible(other)
        require_merge_compatible(
            "sketches",
            k=(self.params.k, other.params.k),
            m=(self.params.m, other.params.m),
            **{"privacy budget (epsilon)": (self.params.epsilon, other.params.epsilon)},
        )

    def merge(self, other: "LDPJoinSketch") -> "LDPJoinSketch":
        """Add ``other``'s counters into this sketch. Returns self."""
        self.check_mergeable(other)
        self.counts += other.counts
        self.num_reports += other.num_reports
        return self

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise the sketch (parameters, hash pairs, counters).

        The payload is plain JSON-compatible Python data, so a constructed
        sketch can be persisted or shipped between processes; the hash
        pairs travel with it, keeping the result joinable after
        :meth:`from_dict`.  Counters are packed as base64-encoded raw
        bytes (see :mod:`repro.serialization`); :meth:`from_dict` also
        accepts the older nested-list payloads.
        """
        return {
            "params": {
                "k": self.params.k,
                "m": self.params.m,
                "epsilon": self.params.epsilon,
            },
            "pairs": self.pairs.to_dict(),
            "counts": encode_array(self.counts),
            "num_reports": self.num_reports,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LDPJoinSketch":
        """Rebuild a sketch serialised by :meth:`to_dict` (either format)."""
        params = SketchParams(**payload["params"])
        pairs = HashPairs.from_dict(payload["pairs"])
        counts = decode_array(payload["counts"], np.float64)
        return cls(params, pairs, counts, int(payload["num_reports"]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LDPJoinSketch(k={self.k}, m={self.m}, epsilon={self.params.epsilon:g}, "
            f"num_reports={self.num_reports})"
        )


def build_sketch(
    reports: ReportBatch,
    pairs: HashPairs,
) -> LDPJoinSketch:
    """Algorithm 2 (PriSK): accumulate debiased reports, invert the transform.

    Parameters
    ----------
    reports:
        Batch of ``(y, j, l)`` client reports (carries the parameters).
    pairs:
        The hash pairs shared with the clients — the server needs them
        later for frequency estimation and compatibility checks; the
        construction itself only uses the indices.
    """
    params = reports.params
    raw = np.zeros((params.k, params.m), dtype=np.int64)
    scatter_add_signed_units(raw, (reports.rows, reports.cols), reports.ys)
    counts = raw.astype(np.float64) * params.scale  # scale = k * c_epsilon
    fwht_inplace(counts)  # M <- M @ H_m^T (H is symmetric)
    return LDPJoinSketch(params, pairs, counts, num_reports=len(reports))
