"""The paper's primary contribution.

Public surface:

* :class:`SketchParams` — validated ``(k, m, epsilon)`` configuration;
* :func:`encode_report` / :func:`encode_reports` — Algorithm 1, the
  LDPJoinSketch client (scalar and vectorised forms);
* :class:`ReportBatch` — the wire format (``y``, row index, column index)
  plus communication-cost accounting;
* :class:`LDPJoinSketch` and :func:`build_sketch` — Algorithm 2 (PriSK),
  the server-side construction, with Eq. (5) join estimation and
  Theorem 7 frequency estimation;
* :func:`fap_encode_reports` — Algorithm 4, Frequency-Aware Perturbation;
* :class:`LDPJoinSketchPlus` — Algorithm 3 + Algorithm 5, the two-phase
  protocol;
* :class:`LDPCompassProtocol` — the Section VI multiway extension;
* :func:`run_ldp_join_sketch` / :func:`run_ldp_join_sketch_plus` —
  deprecated one-call shims over the unified API in :mod:`repro.api`
  (``JoinEstimate`` / ``PlusEstimate`` are aliases of
  :class:`~repro.api.EstimateResult`).
"""

from .params import SketchParams
from .client import (
    DEFAULT_CHUNK_SIZE,
    ReportBatch,
    encode_report,
    encode_reports,
    encode_reports_grouped_into,
    encode_reports_into,
    encode_reports_trials_into,
)
from .server import LDPJoinSketch, build_sketch
from .aggregator import LDPJoinSketchAggregator
from .estimator import estimate_join_size, find_frequent_items
from .fap import fap_encode_report, fap_encode_reports
from .plus import LDPJoinSketchPlus, PlusEstimate
from .multiway import (
    LDPCompassProtocol,
    LDPMiddleSketch,
    MiddleReportBatch,
    finalize_middle_counts,
)
from .protocol import JoinEstimate, run_ldp_join_sketch, run_ldp_join_sketch_plus

__all__ = [
    "SketchParams",
    "ReportBatch",
    "encode_report",
    "encode_reports",
    "encode_reports_into",
    "encode_reports_trials_into",
    "encode_reports_grouped_into",
    "DEFAULT_CHUNK_SIZE",
    "LDPJoinSketch",
    "build_sketch",
    "LDPJoinSketchAggregator",
    "estimate_join_size",
    "find_frequent_items",
    "fap_encode_report",
    "fap_encode_reports",
    "LDPJoinSketchPlus",
    "PlusEstimate",
    "LDPCompassProtocol",
    "LDPMiddleSketch",
    "MiddleReportBatch",
    "finalize_middle_counts",
    "JoinEstimate",
    "run_ldp_join_sketch",
    "run_ldp_join_sketch_plus",
]
