"""Incremental server-side aggregation.

:func:`~repro.core.server.build_sketch` is batch-oriented: all reports in,
one sketch out.  A deployed collector instead receives reports in waves
(user cohorts, retry queues, day boundaries) and answers queries between
waves.  :class:`LDPJoinSketchAggregator` supports that pattern:

* ``ingest`` folds any number of :class:`ReportBatch` objects into the raw
  (pre-transform, integer) accumulator — O(batch) each via one bincount
  pass, no transform cost, and exact (the debiasing scale is applied only
  when a sketch is materialised);
* ``sketch`` materialises the constructed sketch on demand, caching the
  Hadamard inversion until new reports arrive;
* ``join_size`` / ``frequencies`` answer queries against the current
  state.

The raw accumulator is the sum of debiased reports, so ingestion is
trivially parallelisable and mergeable (``merge`` adds two aggregators) —
the property production collectors rely on for sharding.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..accumulate import scatter_add_signed_units
from ..errors import (
    IncompatibleSketchError,
    ParameterError,
    ProtocolError,
    require_merge_compatible,
)
from ..hashing import HashPairs
from ..transform.hadamard import fwht
from .client import ReportBatch
from .params import SketchParams
from .server import LDPJoinSketch

__all__ = ["LDPJoinSketchAggregator"]


class LDPJoinSketchAggregator:
    """Streaming collector for LDPJoinSketch reports."""

    def __init__(self, params: SketchParams, pairs: HashPairs) -> None:
        if pairs.k != params.k or pairs.m != params.m:
            raise ParameterError(
                f"hash pairs shaped ({pairs.k}, {pairs.m}) do not match params "
                f"({params.k}, {params.m})"
            )
        self.params = params
        self.pairs = pairs
        self._raw = np.zeros((params.k, params.m), dtype=np.int64)
        self.num_reports = 0
        self._cached: Optional[LDPJoinSketch] = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, reports: ReportBatch) -> "LDPJoinSketchAggregator":
        """Fold one batch of client reports into the accumulator."""
        if reports.params != self.params:
            raise IncompatibleSketchError(
                "reports were generated under different protocol parameters"
            )
        scatter_add_signed_units(self._raw, (reports.rows, reports.cols), reports.ys)
        self.num_reports += len(reports)
        self._cached = None
        return self

    def ingest_many(self, batches: Iterable[ReportBatch]) -> "LDPJoinSketchAggregator":
        """Fold several batches (e.g. one per shard or cohort)."""
        for batch in batches:
            self.ingest(batch)
        return self

    def merge(self, other: "LDPJoinSketchAggregator") -> "LDPJoinSketchAggregator":
        """Combine with another shard's accumulator (pre-transform sum)."""
        if not isinstance(other, LDPJoinSketchAggregator):
            raise IncompatibleSketchError(
                f"cannot merge with {type(other).__name__}"
            )
        require_merge_compatible(
            "aggregators",
            k=(self.params.k, other.params.k),
            m=(self.params.m, other.params.m),
            **{
                "privacy budget (epsilon)": (self.params.epsilon, other.params.epsilon),
                "hash pairs": (self.pairs, other.pairs),
            },
        )
        self._raw += other._raw
        self.num_reports += other.num_reports
        self._cached = None
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sketch(self) -> LDPJoinSketch:
        """The constructed sketch for the reports ingested so far."""
        if self.num_reports == 0:
            raise ProtocolError("no reports ingested yet")
        if self._cached is None:
            self._cached = LDPJoinSketch(
                self.params,
                self.pairs,
                fwht(self._raw.astype(np.float64) * self.params.scale),
                self.num_reports,
            )
        return self._cached

    def join_size(self, other: "LDPJoinSketchAggregator") -> float:
        """Eq. (5) against another aggregator's current state."""
        return self.sketch().join_size(other.sketch())

    def frequencies(self, values: Iterable[int]) -> np.ndarray:
        """Theorem 7 estimates against the current state."""
        return self.sketch().frequencies(values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LDPJoinSketchAggregator(k={self.params.k}, m={self.params.m}, "
            f"num_reports={self.num_reports})"
        )
