"""Client side of LDPJoinSketch — Algorithm 1 of the paper.

Given a private join value ``d``, the client

1. samples a row ``j ~ U[k]`` and a column ``l ~ U[m]``;
2. encodes ``d`` as the one-hot signed vector ``v`` with
   ``v[h_j(d)] = xi_j(d)``;
3. Hadamard-transforms: ``w = v @ H_m`` — because ``v`` has a single
   non-zero of magnitude 1, ``w[l] = xi_j(d) * H_m[h_j(d), l]`` in O(1);
4. perturbs the sampled coordinate with the binary sign channel:
   ``y = b * w[l]`` with ``Pr[b = -1] = 1/(e^eps + 1)``;
5. transmits ``(y, j, l)``.

:func:`encode_report` is the literal scalar transcription (kept for
readability and used by the privacy audits); :func:`encode_reports` is the
vectorised batch used for million-user simulations — tests pin the two to
identical outputs under identical randomness.  :func:`encode_reports_into`
is the fused encode→accumulate fast path: it perturbs and folds reports
chunk by chunk directly into a ``(k, m)`` integer accumulator, never
materialising the O(n) report arrays — tests pin it bit-for-bit against
``encode_reports`` + scatter-add under identical RNG draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from ..accumulate import scatter_add_signed_units
from ..errors import DomainError, ParameterError
from ..hashing import HashPairs
from ..hashing.kwise import MERSENNE_PRIME_31
from ..rng import RandomState, ensure_rng
from ..transform.hadamard import hadamard_entry, sample_hadamard_parities
from ..validation import as_value_array
from .params import SketchParams

__all__ = ["ReportBatch", "encode_report", "encode_reports", "encode_reports_into", "DEFAULT_CHUNK_SIZE"]

#: Default client chunk of the fused encode→accumulate path.  Large enough
#: that per-chunk NumPy dispatch overhead is negligible, small enough that
#: the transient per-chunk arrays (~100 bytes per client across the
#: pipeline) plus the ``(k, m)`` accumulator stay L2-resident — a 1M-client
#: sweep measured 8192 ~20% faster than 64k chunks and ~40% faster than
#: 512k chunks.
DEFAULT_CHUNK_SIZE = 8_192


@dataclass(frozen=True)
class ReportBatch:
    """The wire format of a batch of client reports.

    Attributes
    ----------
    ys:
        Perturbed one-bit payloads in ``{-1, +1}`` (stored as ``int8``).
    rows:
        Sampled row indices ``j`` in ``[0, k)`` (stored as ``int32``).
    cols:
        Sampled column indices ``l`` in ``[0, m)`` (stored as ``int32``).
    params:
        Protocol parameters the reports were generated under.

    The storage dtypes are deliberately narrow — a report is one sign bit
    plus two small indices, so ``int8``/``int32`` shrink an in-memory
    million-report batch from 24 MB to 9 MB without changing
    :attr:`total_bits` (the *protocol* communication cost, which depends
    only on ``params.report_bits``).
    """

    ys: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    params: SketchParams

    def __post_init__(self) -> None:
        ys = np.asarray(self.ys, dtype=np.int64)
        rows = np.asarray(self.rows, dtype=np.int64)
        cols = np.asarray(self.cols, dtype=np.int64)
        if not (ys.shape == rows.shape == cols.shape) or ys.ndim != 1:
            raise ParameterError("ys, rows and cols must be equal-length 1-D arrays")
        if ys.size:
            if not np.all(np.abs(ys) == 1):
                raise ParameterError("ys must contain only -1/+1")
            if rows.min() < 0 or rows.max() >= self.params.k:
                raise ParameterError(f"rows must lie in [0, {self.params.k})")
            if cols.min() < 0 or cols.max() >= self.params.m:
                raise ParameterError(f"cols must lie in [0, {self.params.m})")
        # Validated values all fit the narrow wire dtypes.
        object.__setattr__(self, "ys", ys.astype(np.int8))
        object.__setattr__(self, "rows", rows.astype(np.int32))
        object.__setattr__(self, "cols", cols.astype(np.int32))

    def __len__(self) -> int:
        return int(self.ys.size)

    @property
    def total_bits(self) -> int:
        """Total communication cost of the batch in bits."""
        return len(self) * self.params.report_bits

    def concat(self, other: "ReportBatch") -> "ReportBatch":
        """Concatenate two batches generated under the same parameters."""
        if self.params != other.params:
            raise ParameterError("cannot concatenate reports with different parameters")
        return ReportBatch(
            np.concatenate([self.ys, other.ys]),
            np.concatenate([self.rows, other.rows]),
            np.concatenate([self.cols, other.cols]),
            self.params,
        )


def encode_report(
    value: int,
    params: SketchParams,
    pairs: HashPairs,
    rng: RandomState = None,
) -> Tuple[int, int, int]:
    """Algorithm 1 for a single client; returns ``(y, j, l)``.

    Literal transcription of the pseudo-code (including materialising the
    one-hot vector and the full transform); useful for audits and as the
    reference the vectorised path is tested against.
    """
    _check_pairs(params, pairs)
    generator = ensure_rng(rng)
    j = int(generator.integers(0, params.k))
    l = int(generator.integers(0, params.m))
    v = np.zeros(params.m, dtype=np.float64)
    bucket = int(pairs.bucket(j, np.asarray([value]))[0])
    sign = int(pairs.sign(j, np.asarray([value]))[0])
    v[bucket] = sign
    # w = v @ H_m; only entry l is needed and v is one-hot:
    w_l = v[bucket] * hadamard_entry(bucket, l, params.m)
    b = -1 if generator.random() < params.flip_probability else 1
    y = int(b * w_l)
    return y, j, l


def encode_reports(
    values: Iterable[int],
    params: SketchParams,
    pairs: HashPairs,
    rng: RandomState = None,
) -> ReportBatch:
    """Vectorised Algorithm 1 over a batch of clients.

    Each element of ``values`` is one independent client; all sampling
    (rows, columns, perturbation signs) is drawn from ``rng``.
    """
    _check_pairs(params, pairs)
    arr = as_value_array(values)
    generator = ensure_rng(rng)
    ys, rows, cols = _encode_chunk(arr, params, pairs, generator)
    return ReportBatch(ys, rows, cols, params)


def encode_reports_into(
    values: Iterable[int],
    params: SketchParams,
    pairs: HashPairs,
    out: np.ndarray,
    rng: RandomState = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> int:
    """Fused Algorithm 1 + accumulation: encode clients straight into ``out``.

    Simulates the clients in chunks of ``chunk_size`` and folds each
    chunk's ``(y, j, l)`` reports into the ``(k, m)`` *pre-transform
    integer* accumulator ``out`` (``out[j, l] += y``) without ever holding
    the O(n) report arrays — peak transient memory is O(chunk_size)
    regardless of the population size.

    The RNG draw order within each chunk matches :func:`encode_reports`
    exactly, so for any chunking the result is bit-for-bit identical to
    encoding the same chunks with :func:`encode_reports` (sharing the
    generator) and scatter-adding each batch; with ``chunk_size >= n`` it
    is bit-for-bit the single-batch path.

    Parameters
    ----------
    values:
        One private join value per client.
    params, pairs:
        Protocol parameters and published hash pairs (as in
        :func:`encode_reports`).
    out:
        Integer accumulator of shape ``(k, m)``; modified in place.
    rng:
        Randomness source for all sampling.
    chunk_size:
        Number of clients encoded per pass.

    Returns
    -------
    int
        Number of reports folded into ``out``.
    """
    _check_pairs(params, pairs)
    if not isinstance(out, np.ndarray) or not np.issubdtype(out.dtype, np.integer):
        raise ParameterError("out must be an integer ndarray accumulator")
    if out.shape != (params.k, params.m):
        raise ParameterError(
            f"out shaped {out.shape} does not match ({params.k}, {params.m})"
        )
    if not isinstance(chunk_size, (int, np.integer)) or chunk_size <= 0:
        raise ParameterError(f"chunk_size must be a positive int, got {chunk_size!r}")
    arr = as_value_array(values)
    # Validate the whole batch up front: a mid-stream failure must not
    # leave ``out`` holding the earlier chunks' reports (the caller's
    # accumulator would be silently corrupted but its bookkeeping not).
    if arr.size and (arr.min() < 0 or arr.max() >= MERSENNE_PRIME_31):
        raise DomainError("hash inputs must lie in [0, 2**31 - 1)")
    generator = ensure_rng(rng)
    n = arr.size
    for start in range(0, n, int(chunk_size)):
        chunk = arr[start : start + int(chunk_size)]
        ys, rows, cols = _encode_chunk(chunk, params, pairs, generator, domain_checked=True)
        scatter_add_signed_units(out, (rows, cols), ys)
    return int(n)


def _encode_chunk(
    arr: np.ndarray,
    params: SketchParams,
    pairs: HashPairs,
    generator: np.random.Generator,
    *,
    domain_checked: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One vectorised Algorithm 1 pass; the draw order is the wire contract.

    Draws ``rows``, then ``cols``, then the flip uniforms — both
    :func:`encode_reports` and every chunk of :func:`encode_reports_into`
    go through here, which is what keeps the two paths bit-for-bit
    equivalent under a shared generator.
    """
    n = arr.size
    rows = generator.integers(0, params.k, size=n)
    cols = generator.integers(0, params.m, size=n)
    buckets, sign_parity = pairs.bucket_and_sign_parity_rows(
        rows, arr, domain_checked=domain_checked
    )
    hadamard_parity = sample_hadamard_parities(buckets, cols, params.m)
    flips = generator.random(n) < params.flip_probability
    # y = xi * H[h, l] * b is a product of three signs; XOR-ing their
    # parity bits computes it in integer passes without ±1 multiplies.
    ys = 1 - 2 * (sign_parity ^ hadamard_parity ^ flips)
    return ys, rows, cols


def _check_pairs(params: SketchParams, pairs: HashPairs) -> None:
    if pairs.k != params.k or pairs.m != params.m:
        raise ParameterError(
            f"hash pairs shaped ({pairs.k}, {pairs.m}) do not match params "
            f"({params.k}, {params.m})"
        )
