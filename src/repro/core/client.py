"""Client side of LDPJoinSketch — Algorithm 1 of the paper.

Given a private join value ``d``, the client

1. samples a row ``j ~ U[k]`` and a column ``l ~ U[m]``;
2. encodes ``d`` as the one-hot signed vector ``v`` with
   ``v[h_j(d)] = xi_j(d)``;
3. Hadamard-transforms: ``w = v @ H_m`` — because ``v`` has a single
   non-zero of magnitude 1, ``w[l] = xi_j(d) * H_m[h_j(d), l]`` in O(1);
4. perturbs the sampled coordinate with the binary sign channel:
   ``y = b * w[l]`` with ``Pr[b = -1] = 1/(e^eps + 1)``;
5. transmits ``(y, j, l)``.

:func:`encode_report` is the literal scalar transcription (kept for
readability and used by the privacy audits); :func:`encode_reports` is the
vectorised batch used for million-user simulations — tests pin the two to
identical outputs under identical randomness.  :func:`encode_reports_into`
is the fused encode→accumulate fast path: it perturbs and folds reports
chunk by chunk directly into a ``(k, m)`` integer accumulator, never
materialising the O(n) report arrays — tests pin it bit-for-bit against
``encode_reports`` + scatter-add under identical RNG draws.

Two *trial-axis* kernels extend the fused path for repeated-trial sweeps:

* :func:`encode_reports_trials_into` simulates ``T`` independent trials in
  one pass over the value array — per chunk, every trial's hashes are
  evaluated in a single gathered Horner pass and all ``T`` accumulators
  are filled by one scatter.  Each trial draws from its own generator in
  exactly the :func:`encode_reports_into` order, so the ``(T, k, m)``
  result is bit-for-bit ``T`` serial runs under the same seeds.
* :func:`encode_reports_grouped_into` is the opt-in *trial-group* mode:
  one sampled/hashed pass is shared by a whole (trial × epsilon) grid
  cell block — only the flip channel is drawn per trial and thresholded
  per epsilon (common random numbers).  Each cell's marginal distribution
  is exactly a single run's; only cross-cell correlations change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple, Union

import numpy as np

from ..accumulate import scatter_add_signed_units
from ..backend import resolve_backend, use_backend
from ..errors import DomainError, ParameterError
from ..hashing import HashPairs, stack_pair_coefficients
from ..hashing.kwise import MERSENNE_PRIME_31
from ..rng import RandomState, ensure_rng
from ..transform.hadamard import hadamard_entry, sample_hadamard_parities
from ..validation import as_value_array
from .params import SketchParams

__all__ = [
    "ReportBatch",
    "encode_report",
    "encode_reports",
    "encode_reports_into",
    "encode_reports_trials_into",
    "encode_reports_grouped_into",
    "DEFAULT_CHUNK_SIZE",
]

#: Default client chunk of the fused encode→accumulate path.  Large enough
#: that per-chunk NumPy dispatch overhead is negligible, small enough that
#: the transient per-chunk arrays (~100 bytes per client across the
#: pipeline) plus the ``(k, m)`` accumulator stay L2-resident — a 1M-client
#: sweep measured 8192 ~20% faster than 64k chunks and ~40% faster than
#: 512k chunks.
DEFAULT_CHUNK_SIZE = 8_192


@dataclass(frozen=True)
class ReportBatch:
    """The wire format of a batch of client reports.

    Attributes
    ----------
    ys:
        Perturbed one-bit payloads in ``{-1, +1}`` (stored as ``int8``).
    rows:
        Sampled row indices ``j`` in ``[0, k)`` (stored as ``int32``).
    cols:
        Sampled column indices ``l`` in ``[0, m)`` (stored as ``int32``).
    params:
        Protocol parameters the reports were generated under.

    The storage dtypes are deliberately narrow — a report is one sign bit
    plus two small indices, so ``int8``/``int32`` shrink an in-memory
    million-report batch from 24 MB to 9 MB without changing
    :attr:`total_bits` (the *protocol* communication cost, which depends
    only on ``params.report_bits``).
    """

    ys: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    params: SketchParams

    def __post_init__(self) -> None:
        ys = np.asarray(self.ys, dtype=np.int64)
        rows = np.asarray(self.rows, dtype=np.int64)
        cols = np.asarray(self.cols, dtype=np.int64)
        if not (ys.shape == rows.shape == cols.shape) or ys.ndim != 1:
            raise ParameterError("ys, rows and cols must be equal-length 1-D arrays")
        if ys.size:
            if not np.all(np.abs(ys) == 1):
                raise ParameterError("ys must contain only -1/+1")
            if rows.min() < 0 or rows.max() >= self.params.k:
                raise ParameterError(f"rows must lie in [0, {self.params.k})")
            if cols.min() < 0 or cols.max() >= self.params.m:
                raise ParameterError(f"cols must lie in [0, {self.params.m})")
        # Validated values all fit the narrow wire dtypes.
        object.__setattr__(self, "ys", ys.astype(np.int8))
        object.__setattr__(self, "rows", rows.astype(np.int32))
        object.__setattr__(self, "cols", cols.astype(np.int32))

    def __len__(self) -> int:
        return int(self.ys.size)

    @property
    def total_bits(self) -> int:
        """Total communication cost of the batch in bits."""
        return len(self) * self.params.report_bits

    def concat(self, other: "ReportBatch") -> "ReportBatch":
        """Concatenate two batches generated under the same parameters."""
        if self.params != other.params:
            raise ParameterError("cannot concatenate reports with different parameters")
        return ReportBatch(
            np.concatenate([self.ys, other.ys]),
            np.concatenate([self.rows, other.rows]),
            np.concatenate([self.cols, other.cols]),
            self.params,
        )


def encode_report(
    value: int,
    params: SketchParams,
    pairs: HashPairs,
    rng: RandomState = None,
) -> Tuple[int, int, int]:
    """Algorithm 1 for a single client; returns ``(y, j, l)``.

    Literal transcription of the pseudo-code (including materialising the
    one-hot vector and the full transform); useful for audits and as the
    reference the vectorised path is tested against.
    """
    _check_pairs(params, pairs)
    generator = ensure_rng(rng)
    j = int(generator.integers(0, params.k))
    l = int(generator.integers(0, params.m))
    v = np.zeros(params.m, dtype=np.float64)
    bucket = int(pairs.bucket(j, np.asarray([value]))[0])
    sign = int(pairs.sign(j, np.asarray([value]))[0])
    v[bucket] = sign
    # w = v @ H_m; only entry l is needed and v is one-hot:
    w_l = v[bucket] * hadamard_entry(bucket, l, params.m)
    b = -1 if generator.random() < params.flip_probability else 1
    y = int(b * w_l)
    return y, j, l


def encode_reports(
    values: Iterable[int],
    params: SketchParams,
    pairs: HashPairs,
    rng: RandomState = None,
) -> ReportBatch:
    """Vectorised Algorithm 1 over a batch of clients.

    Each element of ``values`` is one independent client; all sampling
    (rows, columns, perturbation signs) is drawn from ``rng``.
    """
    _check_pairs(params, pairs)
    arr = as_value_array(values)
    generator = ensure_rng(rng)
    ys, rows, cols = _encode_chunk(arr, params, pairs, generator)
    return ReportBatch(ys, rows, cols, params)


def encode_reports_into(
    values: Iterable[int],
    params: SketchParams,
    pairs: HashPairs,
    out: np.ndarray,
    rng: RandomState = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    backend=None,
) -> int:
    """Fused Algorithm 1 + accumulation: encode clients straight into ``out``.

    Simulates the clients in chunks of ``chunk_size`` and folds each
    chunk's ``(y, j, l)`` reports into the ``(k, m)`` *pre-transform
    integer* accumulator ``out`` (``out[j, l] += y``) without ever holding
    the O(n) report arrays — peak transient memory is O(chunk_size)
    regardless of the population size.

    The RNG draw order within each chunk matches :func:`encode_reports`
    exactly, so for any chunking the result is bit-for-bit identical to
    encoding the same chunks with :func:`encode_reports` (sharing the
    generator) and scatter-adding each batch; with ``chunk_size >= n`` it
    is bit-for-bit the single-batch path.

    Parameters
    ----------
    values:
        One private join value per client.
    params, pairs:
        Protocol parameters and published hash pairs (as in
        :func:`encode_reports`).
    out:
        Integer accumulator of shape ``(k, m)``; modified in place.
    rng:
        Randomness source for all sampling.
    chunk_size:
        Number of clients encoded per pass.
    backend:
        Compute backend override (name, instance or ``None`` for the
        process-wide default); hashing, perturbation and accumulation of
        every chunk run on its fused kernel.

    Returns
    -------
    int
        Number of reports folded into ``out``.
    """
    _check_pairs(params, pairs)
    if not isinstance(out, np.ndarray) or not np.issubdtype(out.dtype, np.integer):
        raise ParameterError("out must be an integer ndarray accumulator")
    if out.shape != (params.k, params.m):
        raise ParameterError(
            f"out shaped {out.shape} does not match ({params.k}, {params.m})"
        )
    if not isinstance(chunk_size, (int, np.integer)) or chunk_size <= 0:
        raise ParameterError(f"chunk_size must be a positive int, got {chunk_size!r}")
    arr = as_value_array(values)
    # Validate the whole batch up front: a mid-stream failure must not
    # leave ``out`` holding the earlier chunks' reports (the caller's
    # accumulator would be silently corrupted but its bookkeeping not).
    if arr.size and (arr.min() < 0 or arr.max() >= MERSENNE_PRIME_31):
        raise DomainError("hash inputs must lie in [0, 2**31 - 1)")
    generator = ensure_rng(rng)
    n = arr.size
    fused = _fused_kernel_inputs(pairs, backend, out.flags.c_contiguous)
    # The context pin covers the fallback path too: without it an
    # explicit ``backend=`` would be honoured by the fused kernel but
    # silently ignored by the generic encode + scatter dispatches below.
    with use_backend(backend):
        for start in range(0, n, int(chunk_size)):
            chunk = arr[start : start + int(chunk_size)]
            if fused is None:
                ys, rows, cols = _encode_chunk(
                    chunk, params, pairs, generator, domain_checked=True
                )
                scatter_add_signed_units(out, (rows, cols), ys)
                continue
            compute, bucket_coeffs, sign_coeffs = fused
            c = chunk.size
            # Draw order is the wire contract (rows, cols, flip uniforms)
            # — the hash evaluation between the draws consumes no
            # randomness, so hoisting the flip draw keeps the stream
            # identical to :func:`encode_reports`.
            rows = generator.integers(0, params.k, size=c)
            cols = generator.integers(0, params.m, size=c)
            flips = generator.random(c) < params.flip_probability
            compute.fused_encode_accumulate(
                bucket_coeffs, sign_coeffs, chunk.astype(np.uint64), rows, cols,
                flips, params.m, out,
            )
    return int(n)


def _fused_kernel_inputs(pairs: HashPairs, backend, contiguous: bool):
    """Resolve the backend + stacked coefficients of a fused encode call.

    Returns ``None`` when the fused kernel cannot run — heterogeneous
    hash degrees (hand-built pairs) or a non-contiguous accumulator —
    in which case callers fall back to the generic encode + scatter
    path (identical output, it merely re-derives the hashes per array
    instead of per element).
    """
    if not contiguous:
        return None
    bucket_coeffs = pairs._bucket_coeffs
    sign_coeffs = pairs._sign_coeffs
    if bucket_coeffs is None or sign_coeffs is None:
        return None
    return resolve_backend(backend), bucket_coeffs, sign_coeffs


def encode_reports_trials_into(
    values: Iterable[int],
    params: SketchParams,
    pairs: Union[HashPairs, Sequence[HashPairs]],
    out: np.ndarray,
    rngs: Sequence[RandomState],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    backend=None,
) -> int:
    """Fused Algorithm 1 for ``T`` independent trials in one value pass.

    Simulates the same client population ``T`` times — once per trial —
    folding trial ``t``'s reports into ``out[t]``.  Every chunk of the
    value array is loaded, range-checked and converted exactly once; the
    ``T`` trials' bucket/sign hashes are evaluated in a single gathered
    Horner pass over ``T * chunk`` elements (one coefficient matrix
    stacked per trial group, built once per call), and all ``T``
    accumulators are filled by one scatter.

    Each trial draws ``rows``, ``cols`` and flip uniforms from its *own*
    generator in exactly the order :func:`encode_reports_into` uses, so
    ``out[t]`` is bit-for-bit the accumulator of
    ``encode_reports_into(values, params, pairs[t], out_t, rngs[t],
    chunk_size)`` — the trial axis changes wall-clock, never bits.

    Parameters
    ----------
    values:
        One private join value per client (shared by every trial).
    params:
        Protocol parameters, shared by every trial.
    pairs:
        Either one :class:`HashPairs` shared by all trials or a sequence
        of ``T`` per-trial pairs (the independent-trials setting of the
        experiment harness).
    out:
        Integer accumulator of shape ``(T, k, m)``; modified in place.
    rngs:
        ``T`` per-trial randomness sources (seed or generator each).
    chunk_size:
        Number of clients encoded per pass (per trial).

    Returns
    -------
    int
        Number of clients encoded (per trial).
    """
    pairs_list = [pairs] if isinstance(pairs, HashPairs) else list(pairs)
    generators = [ensure_rng(r) for r in rngs]
    trials = len(generators)
    if trials == 0:
        raise ParameterError("need at least one trial generator")
    if len(pairs_list) == 1:
        pairs_list = pairs_list * trials
    if len(pairs_list) != trials:
        raise ParameterError(
            f"got {len(pairs_list)} hash pairs for {trials} trials; pass one "
            f"shared HashPairs or exactly one per trial"
        )
    for p in pairs_list:
        _check_pairs(params, p)
    if not isinstance(out, np.ndarray) or not np.issubdtype(out.dtype, np.integer):
        raise ParameterError("out must be an integer ndarray accumulator")
    if out.shape != (trials, params.k, params.m):
        raise ParameterError(
            f"out shaped {out.shape} does not match ({trials}, {params.k}, {params.m})"
        )
    if not isinstance(chunk_size, (int, np.integer)) or chunk_size <= 0:
        raise ParameterError(f"chunk_size must be a positive int, got {chunk_size!r}")
    arr = as_value_array(values)
    if arr.size and (arr.min() < 0 or arr.max() >= MERSENNE_PRIME_31):
        raise DomainError("hash inputs must lie in [0, 2**31 - 1)")
    stacked = stack_pair_coefficients(pairs_list)
    if stacked is None or not out.flags.c_contiguous:
        # Heterogeneous hash degrees (hand-built pairs): fall back to the
        # serial kernel per trial — each generator still sees its own
        # draws in the contract order, so the result is unchanged.
        for t in range(trials):
            encode_reports_into(
                arr, params, pairs_list[t], out[t], generators[t],
                chunk_size=chunk_size, backend=backend,
            )
        return int(arr.size)
    bucket_coeffs, sign_coeffs = stacked
    compute = resolve_backend(backend)
    n = arr.size
    for start in range(0, n, int(chunk_size)):
        chunk = arr[start : start + int(chunk_size)]
        c = chunk.size
        rows = np.empty((trials, c), dtype=np.int64)
        cols = np.empty((trials, c), dtype=np.int64)
        for t, generator in enumerate(generators):
            rows[t] = generator.integers(0, params.k, size=c)
            cols[t] = generator.integers(0, params.m, size=c)
        flips = np.empty((trials, c), dtype=bool)
        for t, generator in enumerate(generators):
            flips[t] = generator.random(c) < params.flip_probability
        # All T trials' hashes ride one gathered kernel call (trial t's
        # polynomials sit at stacked columns t*k + j); each trial's
        # reports land in its own (k, m) accumulator.
        compute.fused_encode_accumulate_trials(
            bucket_coeffs, sign_coeffs, chunk.astype(np.uint64), rows, cols,
            flips, params.m, out,
        )
    return int(n)


def encode_reports_grouped_into(
    values: Iterable[int],
    pairs: HashPairs,
    epsilons: Sequence[float],
    out: np.ndarray,
    sample_rng: RandomState,
    trial_rngs: Sequence[RandomState],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    backend=None,
) -> int:
    """Trial-group kernel: hash/sample once, perturb per (trial, epsilon).

    The opt-in fast mode of the sweep engine.  One pass draws the
    ``(j, l)`` samples and evaluates the bucket/sign/Hadamard parities of
    every client (from ``sample_rng``); each of the ``T`` trials then
    draws one uniform per client (from its own generator) and every
    epsilon thresholds those *same* uniforms at its flip probability —
    common random numbers across the epsilon axis.  ``out[t, e]``
    accumulates the grid cell of trial ``t`` under ``epsilons[e]``.

    Marginally each ``out[t, e]`` is distributed exactly like a single
    :func:`encode_reports_into` run (the shared draws are marginalised by
    drawing them); what changes is only the *cross-cell* correlation —
    trials of one group share sampling noise, epsilons of one trial share
    perturbation uniforms.  Means stay unbiased per cell; cross-trial
    averages no longer shrink the shared sampling noise, which is the
    price of hashing once.  The default sweep mode therefore remains the
    independent-trials path.

    Parameters
    ----------
    values:
        One private join value per client (shared by the whole group).
    pairs:
        The group's published hash pairs (shape ``(k, m)``).
    epsilons:
        ``E`` privacy budgets, one accumulator column each.
    out:
        C-contiguous integer accumulator of shape ``(T, E, k, m)``.
    sample_rng:
        Randomness of the shared row/column sampling.
    trial_rngs:
        ``T`` per-trial randomness sources for the flip uniforms.
    chunk_size:
        Number of clients encoded per pass.

    Returns
    -------
    int
        Number of clients encoded (per grid cell).
    """
    from ..privacy.response import flip_probability

    sampler = ensure_rng(sample_rng)
    generators = [ensure_rng(r) for r in trial_rngs]
    trials = len(generators)
    if trials == 0:
        raise ParameterError("need at least one trial generator")
    probs = np.asarray([flip_probability(e) for e in epsilons], dtype=np.float64)
    if probs.size == 0:
        raise ParameterError("need at least one epsilon")
    k, m = pairs.k, pairs.m
    if not isinstance(out, np.ndarray) or not np.issubdtype(out.dtype, np.integer):
        raise ParameterError("out must be an integer ndarray accumulator")
    if out.shape != (trials, probs.size, k, m):
        raise ParameterError(
            f"out shaped {out.shape} does not match "
            f"({trials}, {probs.size}, {k}, {m})"
        )
    if not out.flags.c_contiguous:
        raise ParameterError("out must be C-contiguous (one flat scatter per chunk)")
    if not isinstance(chunk_size, (int, np.integer)) or chunk_size <= 0:
        raise ParameterError(f"chunk_size must be a positive int, got {chunk_size!r}")
    arr = as_value_array(values)
    if arr.size and (arr.min() < 0 or arr.max() >= MERSENNE_PRIME_31):
        raise DomainError("hash inputs must lie in [0, 2**31 - 1)")
    num_eps = int(probs.size)
    # Factorisation that makes extra grid cells nearly free: with
    # ``s`` the unperturbed report sign and ``f = [u < p_eps]`` the flip
    # indicator, cell ``(t, e)`` accumulates ``sum s * (1 - 2 f)``
    # = ``S - 2 * F[t, e]`` where ``S = sum s`` is *shared by every cell*
    # and ``F[t, e] = sum_{u_t < p_e} s``.  Because the flip thresholds
    # are nested, an element with uniform ``u`` contributes to exactly
    # the epsilons whose ``p > u`` — so per trial one ``searchsorted``
    # bins each client into its threshold band and only the ~``p_max``
    # fraction that flips anywhere is scattered at all.  Integer sums
    # throughout: bit-identical to materialising every ``(t, e)`` report.
    order = np.argsort(probs, kind="stable")
    p_sorted = probs[order]
    shared = np.zeros(k * m, dtype=np.int64)
    bands = np.zeros((trials, num_eps, k * m), dtype=np.int64)
    compute = resolve_backend(backend)
    use_kernel = pairs._bucket_coeffs is not None and pairs._sign_coeffs is not None
    n = arr.size
    # The context pin covers the hand-built-pairs fallback and the
    # scatter dispatches, which would otherwise follow the process-wide
    # default rather than an explicit ``backend=``.
    with use_backend(backend):
        for start in range(0, n, int(chunk_size)):
            chunk = arr[start : start + int(chunk_size)]
            c = chunk.size
            rows = sampler.integers(0, k, size=c)
            cols = sampler.integers(0, m, size=c)
            if use_kernel:
                cell, base_signs = compute.fused_encode_shared_pass(
                    pairs._bucket_coeffs, pairs._sign_coeffs,
                    chunk.astype(np.uint64), rows, cols, m,
                )
            else:
                buckets, sign_parity = pairs.bucket_and_sign_parity_rows(
                    rows, chunk, domain_checked=True
                )
                base_signs = 1 - 2 * (
                    sign_parity ^ sample_hadamard_parities(buckets, cols, m)
                )
                cell = rows * m + cols
            scatter_add_signed_units(shared, (cell,), base_signs)
            for t, generator in enumerate(generators):
                band = np.searchsorted(p_sorted, generator.random(c), side="right")
                flipped = band < num_eps
                if np.any(flipped):
                    idx = band[flipped] * (k * m) + cell[flipped]
                    scatter_add_signed_units(
                        bands[t].reshape(-1), (idx,), base_signs[flipped]
                    )
    # F accumulates over ascending thresholds (band j flips every epsilon
    # with sorted position >= j); undo the sort when writing out.
    flipped_sums = np.cumsum(bands, axis=1)
    out_flat = out.reshape(trials, num_eps, k * m)
    for e_sorted, e_orig in enumerate(order):
        out_flat[:, e_orig, :] += shared[None, :] - 2 * flipped_sums[:, e_sorted, :]
    return int(n)


def _encode_chunk(
    arr: np.ndarray,
    params: SketchParams,
    pairs: HashPairs,
    generator: np.random.Generator,
    *,
    domain_checked: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One vectorised Algorithm 1 pass; the draw order is the wire contract.

    Draws ``rows``, then ``cols``, then the flip uniforms — both
    :func:`encode_reports` and every chunk of :func:`encode_reports_into`
    go through here, which is what keeps the two paths bit-for-bit
    equivalent under a shared generator.
    """
    n = arr.size
    rows = generator.integers(0, params.k, size=n)
    cols = generator.integers(0, params.m, size=n)
    buckets, sign_parity = pairs.bucket_and_sign_parity_rows(
        rows, arr, domain_checked=domain_checked
    )
    hadamard_parity = sample_hadamard_parities(buckets, cols, params.m)
    flips = generator.random(n) < params.flip_probability
    # y = xi * H[h, l] * b is a product of three signs; XOR-ing their
    # parity bits computes it in integer passes without ±1 multiplies.
    ys = 1 - 2 * (sign_parity ^ hadamard_parity ^ flips)
    return ys, rows, cols


def _check_pairs(params: SketchParams, pairs: HashPairs) -> None:
    if pairs.k != params.k or pairs.m != params.m:
        raise ParameterError(
            f"hash pairs shaped ({pairs.k}, {pairs.m}) do not match params "
            f"({params.k}, {params.m})"
        )
