"""Client side of LDPJoinSketch — Algorithm 1 of the paper.

Given a private join value ``d``, the client

1. samples a row ``j ~ U[k]`` and a column ``l ~ U[m]``;
2. encodes ``d`` as the one-hot signed vector ``v`` with
   ``v[h_j(d)] = xi_j(d)``;
3. Hadamard-transforms: ``w = v @ H_m`` — because ``v`` has a single
   non-zero of magnitude 1, ``w[l] = xi_j(d) * H_m[h_j(d), l]`` in O(1);
4. perturbs the sampled coordinate with the binary sign channel:
   ``y = b * w[l]`` with ``Pr[b = -1] = 1/(e^eps + 1)``;
5. transmits ``(y, j, l)``.

:func:`encode_report` is the literal scalar transcription (kept for
readability and used by the privacy audits); :func:`encode_reports` is the
vectorised batch used for million-user simulations — tests pin the two to
identical outputs under identical randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from ..errors import ParameterError
from ..hashing import HashPairs
from ..rng import RandomState, ensure_rng
from ..transform.hadamard import hadamard_entry, sample_hadamard_entries
from ..validation import as_value_array
from .params import SketchParams

__all__ = ["ReportBatch", "encode_report", "encode_reports"]


@dataclass(frozen=True)
class ReportBatch:
    """The wire format of a batch of client reports.

    Attributes
    ----------
    ys:
        Perturbed one-bit payloads in ``{-1, +1}``.
    rows:
        Sampled row indices ``j`` in ``[0, k)``.
    cols:
        Sampled column indices ``l`` in ``[0, m)``.
    params:
        Protocol parameters the reports were generated under.
    """

    ys: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    params: SketchParams

    def __post_init__(self) -> None:
        ys = np.asarray(self.ys, dtype=np.int64)
        rows = np.asarray(self.rows, dtype=np.int64)
        cols = np.asarray(self.cols, dtype=np.int64)
        if not (ys.shape == rows.shape == cols.shape) or ys.ndim != 1:
            raise ParameterError("ys, rows and cols must be equal-length 1-D arrays")
        if ys.size:
            if not np.all(np.abs(ys) == 1):
                raise ParameterError("ys must contain only -1/+1")
            if rows.min() < 0 or rows.max() >= self.params.k:
                raise ParameterError(f"rows must lie in [0, {self.params.k})")
            if cols.min() < 0 or cols.max() >= self.params.m:
                raise ParameterError(f"cols must lie in [0, {self.params.m})")
        object.__setattr__(self, "ys", ys)
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)

    def __len__(self) -> int:
        return int(self.ys.size)

    @property
    def total_bits(self) -> int:
        """Total communication cost of the batch in bits."""
        return len(self) * self.params.report_bits

    def concat(self, other: "ReportBatch") -> "ReportBatch":
        """Concatenate two batches generated under the same parameters."""
        if self.params != other.params:
            raise ParameterError("cannot concatenate reports with different parameters")
        return ReportBatch(
            np.concatenate([self.ys, other.ys]),
            np.concatenate([self.rows, other.rows]),
            np.concatenate([self.cols, other.cols]),
            self.params,
        )


def encode_report(
    value: int,
    params: SketchParams,
    pairs: HashPairs,
    rng: RandomState = None,
) -> Tuple[int, int, int]:
    """Algorithm 1 for a single client; returns ``(y, j, l)``.

    Literal transcription of the pseudo-code (including materialising the
    one-hot vector and the full transform); useful for audits and as the
    reference the vectorised path is tested against.
    """
    _check_pairs(params, pairs)
    generator = ensure_rng(rng)
    j = int(generator.integers(0, params.k))
    l = int(generator.integers(0, params.m))
    v = np.zeros(params.m, dtype=np.float64)
    bucket = int(pairs.bucket(j, np.asarray([value]))[0])
    sign = int(pairs.sign(j, np.asarray([value]))[0])
    v[bucket] = sign
    # w = v @ H_m; only entry l is needed and v is one-hot:
    w_l = v[bucket] * hadamard_entry(bucket, l, params.m)
    b = -1 if generator.random() < params.flip_probability else 1
    y = int(b * w_l)
    return y, j, l


def encode_reports(
    values: Iterable[int],
    params: SketchParams,
    pairs: HashPairs,
    rng: RandomState = None,
) -> ReportBatch:
    """Vectorised Algorithm 1 over a batch of clients.

    Each element of ``values`` is one independent client; all sampling
    (rows, columns, perturbation signs) is drawn from ``rng``.
    """
    _check_pairs(params, pairs)
    arr = as_value_array(values)
    generator = ensure_rng(rng)
    n = arr.size
    rows = generator.integers(0, params.k, size=n)
    cols = generator.integers(0, params.m, size=n)
    buckets = pairs.bucket_rows(rows, arr)
    signs = pairs.sign_rows(rows, arr)
    w = signs * sample_hadamard_entries(buckets, cols, params.m)
    flips = generator.random(n) < params.flip_probability
    ys = np.where(flips, -w, w).astype(np.int64)
    return ReportBatch(ys, rows, cols, params)


def _check_pairs(params: SketchParams, pairs: HashPairs) -> None:
    if pairs.k != params.k or pairs.m != params.m:
        raise ParameterError(
            f"hash pairs shaped ({pairs.k}, {pairs.m}) do not match params "
            f"({params.k}, {params.m})"
        )
