"""LDPJoinSketch+ — the two-phase protocol (Algorithms 3 and 5).

Phase 1 (*find frequent join values*): a sampled fraction ``r`` of each
attribute's users runs the plain LDPJoinSketch client; the server builds
sketches ``MA`` and ``MB``, scans the domain with Theorem 7 frequency
estimates and forms the frequent-item set
``FI = FI_A ∪ FI_B`` with ``FI_X = {d : f~(d) > theta |S_X|}``.

Phase 2 (*join size estimation*): the remaining users of each attribute
are split into two equal groups.  Group 1 builds a sketch targeting
low-frequency values (``mode="L"``), group 2 one targeting high-frequency
values (``mode="H"``), both through Frequency-Aware Perturbation
(Algorithm 4).  Because the groups are disjoint, each enjoys the full
privacy budget (parallel composition).  The server removes the uniform
``|NT| / m`` contribution of non-target reports from each sketch
(Theorem 8), estimates the two partial join sizes, and rescales them to
population level:

.. math::

    \\widehat{|A \\bowtie B|} =
        \\frac{|A||B|}{|A_1||B_1|}\\,LEst +
        \\frac{|A||B|}{|A_2||B_2|}\\,HEst .

Correction-scaling note (documented deviation, see DESIGN.md): Algorithm 5
computes the frequent mass at *population* scale, but the sketches being
corrected only saw one *group* of users.  By default we subtract the
group-scaled mass ``HighFreq_A * |A_1| / |A|``; set
``paper_faithful_correction=True`` for the verbatim formula.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..api.result import EstimateResult
from ..errors import ParameterError, ProtocolError
from ..hashing import HashPairs
from ..rng import RandomState, ensure_rng, spawn
from ..validation import (
    as_value_array,
    require_positive_int,
    require_probability,
)
from .client import encode_reports
from .estimator import find_frequent_items
from .fap import MODE_HIGH, MODE_LOW, fap_encode_reports
from .params import SketchParams
from .server import LDPJoinSketch, build_sketch

__all__ = ["LDPJoinSketchPlus", "PlusEstimate"]

#: Deprecated alias — one LDPJoinSketch+ run now returns the unified
#: :class:`~repro.api.EstimateResult`; the protocol artefacts
#: (``low_estimate``, ``high_estimate``, ``frequent_items``,
#: ``high_freq_mass_a/b``, ``phase1_bits``, ``phase2_bits``,
#: ``fi_broadcast_bits``) travel in ``extras`` and stay reachable as
#: attributes.
PlusEstimate = EstimateResult


class LDPJoinSketchPlus:
    """Two-phase LDP join-size estimator (Algorithm 3).

    Parameters
    ----------
    params:
        Sketch shape and privacy budget used in *both* phases.
    sample_rate:
        Phase-1 sampling rate ``r`` (fraction of each attribute's users).
    threshold:
        Frequent-item threshold ``theta`` relative to the attribute size.
    phase1_params:
        Optional distinct shape for the phase-1 sketches (defaults to
        ``params``); Fig. 6 uses equal sizes in both phases.
    paper_faithful_correction:
        Subtract the verbatim population-scale non-target mass instead of
        the group-scaled one (see module docstring).
    fi_method:
        Read-out used to *select* frequent items in phase 1:
        ``"median"`` (default, collision-robust) or ``"mean"`` (paper
        verbatim).  Mass estimation always uses the unbiased mean
        estimator of Theorem 7.
    """

    def __init__(
        self,
        params: SketchParams,
        sample_rate: float = 0.1,
        threshold: float = 0.01,
        *,
        phase1_params: Optional[SketchParams] = None,
        paper_faithful_correction: bool = False,
        fi_method: str = "median",
    ) -> None:
        self.params = params
        self.sample_rate = require_probability("sample_rate", sample_rate, allow_one=False)
        self.threshold = require_probability("threshold", threshold)
        self.phase1_params = phase1_params if phase1_params is not None else params
        if self.phase1_params.epsilon != params.epsilon:
            raise ParameterError("both phases must run under the same privacy budget")
        self.paper_faithful_correction = bool(paper_faithful_correction)
        if fi_method not in ("median", "mean"):
            raise ParameterError(f"fi_method must be 'median' or 'mean', got {fi_method!r}")
        self.fi_method = fi_method

    # ------------------------------------------------------------------
    # Protocol driver
    # ------------------------------------------------------------------
    def estimate(
        self,
        values_a: np.ndarray,
        values_b: np.ndarray,
        domain_size: int,
        rng: RandomState = None,
    ) -> EstimateResult:
        """Run both phases end to end and return the join-size estimate.

        The returned :class:`~repro.api.EstimateResult` carries the
        uplink accounting of both phases and, in ``extras``, the
        intermediate artefacts of Algorithm 5 (partial estimates,
        frequent-item set, mass estimates, per-phase bit counts).
        """
        domain_size = require_positive_int("domain_size", domain_size)
        arr_a = as_value_array(values_a, "values_a")
        arr_b = as_value_array(values_b, "values_b")
        generator = ensure_rng(rng)

        sample_a, group_a1, group_a2 = self._split_users(arr_a, generator, "A")
        sample_b, group_b1, group_b2 = self._split_users(arr_b, generator, "B")

        # ---------------- Phase 1: find frequent join values ----------
        pairs1 = HashPairs(self.phase1_params.k, self.phase1_params.m, spawn(generator))
        reports_sa = encode_reports(sample_a, self.phase1_params, pairs1, generator)
        reports_sb = encode_reports(sample_b, self.phase1_params, pairs1, generator)
        sketch_sa = build_sketch(reports_sa, pairs1)
        sketch_sb = build_sketch(reports_sb, pairs1)

        fi_a = find_frequent_items(sketch_sa, domain_size, self.threshold, method=self.fi_method)
        fi_b = find_frequent_items(sketch_sb, domain_size, self.threshold, method=self.fi_method)
        frequent_items = np.union1d(fi_a, fi_b)

        # Population-scale frequent mass (Algorithm 5 lines 1-4), clipped
        # to the physically possible range.
        high_mass_a = self._population_mass(sketch_sa, frequent_items, arr_a.size, sample_a.size)
        high_mass_b = self._population_mass(sketch_sb, frequent_items, arr_b.size, sample_b.size)

        # ---------------- Phase 2: four FAP sketches -------------------
        pairs2 = HashPairs(self.params.k, self.params.m, spawn(generator))
        sketch_la = self._fap_sketch(group_a1, MODE_LOW, pairs2, frequent_items, generator)
        sketch_lb = self._fap_sketch(group_b1, MODE_LOW, pairs2, frequent_items, generator)
        sketch_ha = self._fap_sketch(group_a2, MODE_HIGH, pairs2, frequent_items, generator)
        sketch_hb = self._fap_sketch(group_b2, MODE_HIGH, pairs2, frequent_items, generator)

        # ---------------- JoinEst (Algorithm 5) ------------------------
        low_est = self._join_est(
            sketch_la,
            sketch_lb,
            nt_mass_a=self._group_mass(high_mass_a, group_a1.size, arr_a.size),
            nt_mass_b=self._group_mass(high_mass_b, group_b1.size, arr_b.size),
        )
        high_est = self._join_est(
            sketch_ha,
            sketch_hb,
            nt_mass_a=self._group_mass(arr_a.size - high_mass_a, group_a2.size, arr_a.size),
            nt_mass_b=self._group_mass(arr_b.size - high_mass_b, group_b2.size, arr_b.size),
        )

        scale_low = (arr_a.size * arr_b.size) / (group_a1.size * group_b1.size)
        scale_high = (arr_a.size * arr_b.size) / (group_a2.size * group_b2.size)
        low_scaled = scale_low * low_est
        high_scaled = scale_high * high_est

        fi_bits = int(frequent_items.size) * max(1, int(np.ceil(np.log2(max(domain_size, 2)))))
        phase1_bits = reports_sa.total_bits + reports_sb.total_bits
        phase2_bits = self.params.report_bits * (
            group_a1.size + group_a2.size + group_b1.size + group_b2.size
        )
        phase1 = self.phase1_params
        return EstimateResult(
            estimate=low_scaled + high_scaled,
            uplink_bits=phase1_bits + phase2_bits,
            sketch_bytes=2 * phase1.k * phase1.m * 8 + 4 * self.params.k * self.params.m * 8,
            extras={
                "low_estimate": low_scaled,
                "high_estimate": high_scaled,
                "frequent_items": frequent_items,
                "high_freq_mass_a": high_mass_a,
                "high_freq_mass_b": high_mass_b,
                "phase1_bits": phase1_bits,
                "phase2_bits": phase2_bits,
                "fi_broadcast_bits": fi_bits,
            },
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _split_users(
        self,
        values: np.ndarray,
        rng: np.random.Generator,
        label: str,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample phase-1 users and split the remainder into two groups."""
        n = values.size
        if n < 4:
            raise ProtocolError(
                f"attribute {label} has {n} users; LDPJoinSketch+ needs at least 4"
            )
        permuted = values[rng.permutation(n)]
        sample_size = max(1, int(round(self.sample_rate * n)))
        if sample_size > n - 2:
            raise ProtocolError(
                f"sample_rate={self.sample_rate} leaves fewer than two phase-2 "
                f"users for attribute {label} (n={n})"
            )
        sample = permuted[:sample_size]
        rest = permuted[sample_size:]
        half = rest.size // 2
        return sample, rest[:half], rest[half:]

    def _population_mass(
        self,
        sketch: LDPJoinSketch,
        frequent_items: np.ndarray,
        population: int,
        sample_size: int,
    ) -> float:
        """``sum_{d in FI} f~(d) * |X| / |S_X|``, clipped to ``[0, |X|]``."""
        if frequent_items.size == 0:
            return 0.0
        sample_mass = float(np.sum(sketch.frequencies(frequent_items)))
        sample_mass = min(max(sample_mass, 0.0), float(sample_size))
        return sample_mass * population / sample_size

    def _group_mass(self, population_mass: float, group_size: int, population: int) -> float:
        """Non-target mass attributable to one phase-2 group."""
        population_mass = min(max(population_mass, 0.0), float(population))
        if self.paper_faithful_correction:
            return population_mass
        return population_mass * group_size / population

    def _fap_sketch(
        self,
        group: np.ndarray,
        mode: str,
        pairs: HashPairs,
        frequent_items: np.ndarray,
        rng: np.random.Generator,
    ) -> LDPJoinSketch:
        """``Func sk`` of Algorithm 3: FAP-perturb a group, build its sketch."""
        reports = fap_encode_reports(group, mode, self.params, pairs, frequent_items, rng)
        return build_sketch(reports, pairs)

    def _join_est(
        self,
        sketch_a: LDPJoinSketch,
        sketch_b: LDPJoinSketch,
        nt_mass_a: float,
        nt_mass_b: float,
    ) -> float:
        """Algorithm 5: subtract non-target mass, then Eq. (5)."""
        m = self.params.m
        corrected_a = sketch_a.shifted(nt_mass_a / m)
        corrected_b = sketch_b.shifted(nt_mass_b / m)
        return corrected_a.join_size(corrected_b)
