"""Frequency-Aware Perturbation (FAP) — Algorithm 4 of the paper.

FAP is the client-side mechanism of LDPJoinSketch+ phase 2.  Given the
frequent-item set ``FI`` (public, computed in phase 1) and a ``mode``:

* ``mode="H"`` — the sketch being built targets **high-frequency** values:
  values in ``FI`` are *targets*, values outside are *non-targets*;
* ``mode="L"`` — the sketch targets **low-frequency** values: values
  outside ``FI`` are targets, values inside are non-targets.

A **target** value is encoded exactly as Algorithm 1 (LDPJoinSketch
client).  A **non-target** value is encoded *independently of its true
value*: the one-hot position is a fresh uniform ``r ~ U[m]`` with weight
``+1`` (no sign hash), i.e. ``y = b * H_m[r, l]``.  Both cases then pass
through the identical binary sign channel, so the server cannot tell from
a single report whether the client's value was frequent (Theorem 6) —
yet the aggregate contribution of non-targets is a uniform ``|NT| / m``
per counter (Theorem 8), which Algorithm 5 subtracts.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..errors import ParameterError
from ..hashing import HashPairs
from ..rng import RandomState, ensure_rng
from ..transform.hadamard import hadamard_entry, sample_hadamard_entries
from ..validation import as_value_array, require_choice
from .client import ReportBatch, encode_report
from .params import SketchParams

__all__ = ["fap_encode_report", "fap_encode_reports", "MODE_HIGH", "MODE_LOW"]

#: Sketch targets high-frequency values (non-targets are the infrequent ones).
MODE_HIGH = "H"
#: Sketch targets low-frequency values (non-targets are the frequent ones).
MODE_LOW = "L"


def _as_fi_set(frequent_items: Iterable[int]) -> np.ndarray:
    fi = np.unique(as_value_array(frequent_items, "frequent_items"))
    return fi


def _non_target_mask(values: np.ndarray, mode: str, fi: np.ndarray) -> np.ndarray:
    """Line 1 of Algorithm 4: non-target iff ``(mode == H) == (d not in FI)``."""
    in_fi = np.isin(values, fi)
    if mode == MODE_HIGH:
        return ~in_fi
    return in_fi


def fap_encode_report(
    value: int,
    mode: str,
    params: SketchParams,
    pairs: HashPairs,
    frequent_items: Iterable[int],
    rng: RandomState = None,
) -> Tuple[int, int, int]:
    """Algorithm 4 for a single client; returns ``(y, j, l)``.

    Scalar reference implementation mirroring the pseudo-code line by
    line; the batched :func:`fap_encode_reports` is the production path.
    """
    mode = str(require_choice("mode", mode, (MODE_HIGH, MODE_LOW)))
    fi = _as_fi_set(frequent_items)
    generator = ensure_rng(rng)
    non_target = bool(_non_target_mask(np.asarray([value], dtype=np.int64), mode, fi)[0])
    if non_target:
        j = int(generator.integers(0, params.k))
        l = int(generator.integers(0, params.m))
        r = int(generator.integers(0, params.m))
        # v[r] = 1; w = v @ H_m; sample w[l] = H_m[r, l].
        w_l = hadamard_entry(r, l, params.m)
        b = -1 if generator.random() < params.flip_probability else 1
        return int(b * w_l), j, l
    return encode_report(value, params, pairs, generator)


def fap_encode_reports(
    values: Iterable[int],
    mode: str,
    params: SketchParams,
    pairs: HashPairs,
    frequent_items: Iterable[int],
    rng: RandomState = None,
) -> ReportBatch:
    """Vectorised Algorithm 4 over a batch of clients.

    Target values follow the Algorithm 1 encoding, non-target values the
    random-position encoding; the sampled ``(j, l)`` indices and the sign
    channel are identical in both branches, so the output batch is
    indistinguishable report-by-report.
    """
    mode = str(require_choice("mode", mode, (MODE_HIGH, MODE_LOW)))
    if pairs.k != params.k or pairs.m != params.m:
        raise ParameterError(
            f"hash pairs shaped ({pairs.k}, {pairs.m}) do not match params "
            f"({params.k}, {params.m})"
        )
    arr = as_value_array(values)
    fi = _as_fi_set(frequent_items)
    generator = ensure_rng(rng)
    n = arr.size

    rows = generator.integers(0, params.k, size=n)
    cols = generator.integers(0, params.m, size=n)
    non_target = _non_target_mask(arr, mode, fi)

    # Effective one-hot position and weight per report: targets use
    # (h_j(d), xi_j(d)); non-targets use (r, +1) with fresh uniform r.
    positions = np.empty(n, dtype=np.int64)
    weights = np.ones(n, dtype=np.int64)
    if np.any(~non_target):
        target_idx = np.flatnonzero(~non_target)
        positions[target_idx] = pairs.bucket_rows(rows[target_idx], arr[target_idx])
        weights[target_idx] = pairs.sign_rows(rows[target_idx], arr[target_idx])
    if np.any(non_target):
        nt_idx = np.flatnonzero(non_target)
        positions[nt_idx] = generator.integers(0, params.m, size=nt_idx.size)

    w = weights * sample_hadamard_entries(positions, cols, params.m)
    flips = generator.random(n) < params.flip_probability
    ys = np.where(flips, -w, w).astype(np.int64)
    return ReportBatch(ys, rows, cols, params)
