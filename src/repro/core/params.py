"""Validated protocol parameters.

``(k, m, epsilon)`` appear together everywhere in the protocol — ``k`` rows
by ``m`` columns of sketch, privacy budget ``epsilon`` — so they travel as
one frozen dataclass.  ``m`` must be a power of two because the client
applies a Hadamard transform of order ``m`` (Algorithm 1, line 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..privacy.response import c_epsilon, flip_probability
from ..validation import require_positive_float, require_positive_int, require_power_of_two

__all__ = ["SketchParams"]


@dataclass(frozen=True)
class SketchParams:
    """Shape and privacy budget of an LDPJoinSketch.

    Attributes
    ----------
    k:
        Number of sketch rows (independent estimators; the paper uses
        ``k = 4 log(1/delta)`` for failure probability ``delta``).
    m:
        Number of sketch columns; must be a power of two (Hadamard order).
    epsilon:
        The local privacy budget of each client report.
    """

    k: int
    m: int
    epsilon: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "k", require_positive_int("k", self.k))
        object.__setattr__(self, "m", require_power_of_two("m", self.m))
        object.__setattr__(self, "epsilon", require_positive_float("epsilon", self.epsilon))

    # ------------------------------------------------------------------
    # Derived constants
    # ------------------------------------------------------------------
    @property
    def c_epsilon(self) -> float:
        """Debiasing constant ``(e^eps + 1) / (e^eps - 1)`` (Algorithm 2)."""
        return c_epsilon(self.epsilon)

    @property
    def flip_probability(self) -> float:
        """Client-side sign-flip probability ``1 / (e^eps + 1)``."""
        return flip_probability(self.epsilon)

    @property
    def scale(self) -> float:
        """Full debiasing scale ``k * c_epsilon`` applied per report."""
        return self.k * self.c_epsilon

    @property
    def report_bits(self) -> int:
        """Bits a client transmits: sign ``y`` + row index + column index."""
        return 1 + max(1, math.ceil(math.log2(self.k))) + max(1, math.ceil(math.log2(self.m)))

    @classmethod
    def for_failure_probability(cls, delta: float, m: int, epsilon: float) -> "SketchParams":
        """Choose ``k = ceil(4 * log(1/delta))`` per Theorem 5."""
        delta = require_positive_float("delta", delta)
        if delta >= 1:
            raise ValueError(f"delta must be < 1, got {delta}")
        k = max(1, math.ceil(4 * math.log(1.0 / delta)))
        return cls(k=k, m=m, epsilon=epsilon)

    def with_epsilon(self, epsilon: float) -> "SketchParams":
        """Copy with a different privacy budget (same shape)."""
        return SketchParams(self.k, self.m, epsilon)
