"""One-call protocol drivers.

The classes in this package expose every phase of the protocols for tests
and power users; most callers just want "two private value streams in, a
join-size estimate out".  These drivers simulate the full client/server
round trip (all clients encode under one RNG, the server aggregates) and
return the estimate together with the accounting the experiments need:
offline/online wall time, uplink bits, and sketch memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..hashing import HashPairs
from ..privacy.budget import BudgetLedger, PrivacySpec
from ..rng import RandomState, ensure_rng, spawn
from ..validation import require_positive_int
from .client import encode_reports
from .params import SketchParams
from .plus import LDPJoinSketchPlus
from .server import build_sketch

__all__ = ["JoinEstimate", "run_ldp_join_sketch", "run_ldp_join_sketch_plus"]


@dataclass(frozen=True)
class JoinEstimate:
    """A join-size estimate with cost accounting."""

    estimate: float
    """Estimated join size."""

    offline_seconds: float
    """Time to perturb all reports and construct the sketches."""

    online_seconds: float
    """Time to answer the join query from the constructed sketches."""

    uplink_bits: int
    """Total client-to-server communication."""

    sketch_bytes: int
    """Server-side memory held by the constructed sketches."""

    ledger: BudgetLedger
    """Per-user-group privacy charges of the run."""


def run_ldp_join_sketch(
    values_a: Iterable[int],
    values_b: Iterable[int],
    params: SketchParams,
    seed: RandomState = None,
) -> JoinEstimate:
    """Run the single-phase LDPJoinSketch protocol end to end.

    Simulates every client of both attributes (Algorithm 1), builds the
    two sketches (Algorithm 2) and evaluates Eq. (5).
    """
    rng = ensure_rng(seed)
    ledger = BudgetLedger()

    start = time.perf_counter()
    pairs = HashPairs(params.k, params.m, spawn(rng))
    reports_a = encode_reports(values_a, params, pairs, rng)
    reports_b = encode_reports(values_b, params, pairs, rng)
    ledger.charge("A", params.epsilon, "LDPJoinSketch")
    ledger.charge("B", params.epsilon, "LDPJoinSketch")
    sketch_a = build_sketch(reports_a, pairs)
    sketch_b = build_sketch(reports_b, pairs)
    offline = time.perf_counter() - start

    start = time.perf_counter()
    estimate = sketch_a.join_size(sketch_b)
    online = time.perf_counter() - start

    ledger.assert_within(PrivacySpec(params.epsilon))
    return JoinEstimate(
        estimate=estimate,
        offline_seconds=offline,
        online_seconds=online,
        uplink_bits=reports_a.total_bits + reports_b.total_bits,
        sketch_bytes=sketch_a.memory_bytes() + sketch_b.memory_bytes(),
        ledger=ledger,
    )


def run_ldp_join_sketch_plus(
    values_a: Iterable[int],
    values_b: Iterable[int],
    domain_size: int,
    params: SketchParams,
    *,
    sample_rate: float = 0.1,
    threshold: float = 0.01,
    phase1_params: Optional[SketchParams] = None,
    paper_faithful_correction: bool = False,
    seed: RandomState = None,
) -> JoinEstimate:
    """Run the two-phase LDPJoinSketch+ protocol end to end."""
    domain_size = require_positive_int("domain_size", domain_size)
    rng = ensure_rng(seed)
    ledger = BudgetLedger()
    protocol = LDPJoinSketchPlus(
        params,
        sample_rate=sample_rate,
        threshold=threshold,
        phase1_params=phase1_params,
        paper_faithful_correction=paper_faithful_correction,
    )

    arr_a = np.asarray(values_a, dtype=np.int64)
    arr_b = np.asarray(values_b, dtype=np.int64)

    start = time.perf_counter()
    result = protocol.estimate(arr_a, arr_b, domain_size, rng)
    offline = time.perf_counter() - start

    # Each user belongs to exactly one of the six disjoint groups (sampled,
    # group 1, group 2 - per attribute) and is perturbed once.
    for group in ("A-sample", "A1", "A2", "B-sample", "B1", "B2"):
        ledger.charge(group, params.epsilon, "LDPJoinSketch+/FAP")
    ledger.assert_within(PrivacySpec(params.epsilon))

    phase1 = phase1_params if phase1_params is not None else params
    sketch_bytes = 2 * phase1.k * phase1.m * 8 + 4 * params.k * params.m * 8
    return JoinEstimate(
        estimate=result.estimate,
        offline_seconds=offline,
        online_seconds=0.0,
        uplink_bits=result.phase1_bits + result.phase2_bits,
        sketch_bytes=sketch_bytes,
        ledger=ledger,
    )
